"""Unit and property tests for the cycle-accurate simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hdl import Circuit, cat, const, mux, select, sext, zext
from repro.sim import Simulator, Trace, TracingSimulator


def build_counter():
    c = Circuit("counter")
    en = c.input("en", 1)
    cnt = c.reg("cnt", 8, init=0)
    c.next(cnt, mux(en, cnt + 1, cnt))
    c.output("value", cnt)
    return c.finalize()


def test_counter_counts():
    sim = Simulator(build_counter())
    for expected in range(5):
        out = sim.step({"en": 1})
        assert out["value"] == expected
    out = sim.step({"en": 0})
    assert out["value"] == 5
    assert sim.peek("cnt") == 5
    assert sim.cycle == 6


def test_counter_wraps():
    sim = Simulator(build_counter(), init_overrides={"cnt": 255})
    sim.step({"en": 1})
    assert sim.peek("cnt") == 0


def test_missing_input_rejected():
    sim = Simulator(build_counter())
    with pytest.raises(SimulationError):
        sim.step({})


def test_unknown_input_rejected():
    sim = Simulator(build_counter())
    with pytest.raises(SimulationError):
        sim.step({"en": 1, "bogus": 0})


def test_unknown_override_rejected():
    with pytest.raises(SimulationError):
        Simulator(build_counter(), init_overrides={"nope": 1})


def test_symbolic_init_defaults_to_zero():
    c = Circuit("t")
    r = c.reg("r", 8, init=None)
    c.finalize()
    sim = Simulator(c)
    assert sim.peek(r) == 0
    sim2 = Simulator(c, init_overrides={"r": 42})
    assert sim2.peek(r) == 42


def test_poke_and_snapshot():
    sim = Simulator(build_counter())
    sim.poke("cnt", 99)
    assert sim.snapshot()["cnt"] == 99
    with pytest.raises(SimulationError):
        sim.poke("missing", 0)


def test_eval_with_explicit_inputs():
    c = Circuit("t")
    a = c.input("a", 8)
    r = c.reg("r", 8, init=7)
    c.next(r, r)
    c.finalize()
    sim = Simulator(c)
    assert sim.eval(r + a, inputs={"a": 3}) == 10


def test_eval_missing_input():
    c = Circuit("t")
    a = c.input("a", 8)
    c.finalize()
    sim = Simulator(c)
    with pytest.raises(SimulationError):
        sim.eval(a + 1)


def test_peek_output_and_unknown():
    sim = Simulator(build_counter())
    sim.step({"en": 1})
    assert sim.peek("value") == 0  # sampled before the clock edge
    with pytest.raises(SimulationError):
        sim.peek("bogus")


def test_run_until():
    sim = Simulator(build_counter())
    executed = sim.run(100, {"en": 1}, until=lambda s: s.peek("cnt") == 10)
    assert executed == 10
    assert sim.peek("cnt") == 10


def test_registers_commit_simultaneously():
    """Swap two registers every cycle — classic simultaneity check."""
    c = Circuit("swap")
    a = c.reg("a", 4, init=1)
    b = c.reg("b", 4, init=2)
    c.next(a, b)
    c.next(b, a)
    c.finalize()
    sim = Simulator(c)
    sim.step()
    assert (sim.peek("a"), sim.peek("b")) == (2, 1)
    sim.step()
    assert (sim.peek("a"), sim.peek("b")) == (1, 2)


OPS = {
    "add": lambda x, y, w: (x + y) & ((1 << w) - 1),
    "sub": lambda x, y, w: (x - y) & ((1 << w) - 1),
    "and": lambda x, y, w: x & y,
    "or": lambda x, y, w: x | y,
    "xor": lambda x, y, w: x ^ y,
    "eq": lambda x, y, w: int(x == y),
    "ult": lambda x, y, w: int(x < y),
    "ule": lambda x, y, w: int(x <= y),
    "ne": lambda x, y, w: int(x != y),
}


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(sorted(OPS)),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)
def test_operator_semantics_match_python(op, x, y):
    c = Circuit("ops")
    a = c.input("a", 8)
    b = c.input("b", 8)
    builders = {
        "add": lambda: a + b,
        "sub": lambda: a - b,
        "and": lambda: a & b,
        "or": lambda: a | b,
        "xor": lambda: a ^ b,
        "eq": lambda: a.eq(b),
        "ult": lambda: a.ult(b),
        "ule": lambda: a.ule(b),
        "ne": lambda: a.ne(b),
    }
    c.output("o", builders[op]())
    c.finalize()
    sim = Simulator(c)
    out = sim.step({"a": x, "b": y})
    assert out["o"] == OPS[op](x, y, 8)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=255))
def test_slice_cat_roundtrip(x):
    c = Circuit("t")
    a = c.input("a", 8)
    c.output("lo", a[0:4])
    c.output("hi", a[4:8])
    c.output("cat", cat(a[0:4], a[4:8]))
    c.output("bit7", a[7])
    c.finalize()
    sim = Simulator(c)
    out = sim.step({"a": x})
    assert out["lo"] == x & 0xF
    assert out["hi"] == x >> 4
    assert out["cat"] == x
    assert out["bit7"] == x >> 7


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=15))
def test_extension_semantics(x):
    c = Circuit("t")
    a = c.input("a", 4)
    c.output("z", zext(a, 8))
    c.output("s", sext(a, 8))
    c.finalize()
    sim = Simulator(c)
    out = sim.step({"a": x})
    assert out["z"] == x
    expected_sext = x | 0xF0 if x & 8 else x
    assert out["s"] == expected_sext


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=7))
def test_shift_semantics(x, amount):
    c = Circuit("t")
    a = c.input("a", 8)
    c.output("l", a << amount)
    c.output("r", a >> amount)
    c.finalize()
    sim = Simulator(c)
    out = sim.step({"a": x})
    assert out["l"] == (x << amount) & 0xFF
    assert out["r"] == x >> amount


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=3), st.lists(
    st.integers(min_value=0, max_value=255), min_size=4, max_size=4))
def test_select_semantics(idx, choices):
    c = Circuit("t")
    i = c.input("i", 2)
    c.output("o", select(i, [const(v, 8) for v in choices]))
    c.finalize()
    sim = Simulator(c)
    assert sim.step({"i": idx})["o"] == choices[idx]


def test_reduction_semantics():
    c = Circuit("t")
    a = c.input("a", 4)
    c.output("any", a.any())
    c.output("all", a.all())
    c.finalize()
    sim = Simulator(c)
    assert sim.step({"a": 0}) == {"any": 0, "all": 0}
    assert sim.step({"a": 5}) == {"any": 1, "all": 0}
    assert sim.step({"a": 15}) == {"any": 1, "all": 1}


def test_memory_array_simulation():
    from repro.hdl import MemoryArray

    c = Circuit("m")
    addr = c.input("addr", 2)
    data = c.input("data", 8)
    we = c.input("we", 1)
    mem = MemoryArray(c, "mem", depth=4, width=8, init=[10, 20, 30, 40])
    c.output("rdata", mem.read(addr))
    mem.write(addr, data, we)
    c.finalize()
    sim = Simulator(c)
    out = sim.step({"addr": 2, "data": 0, "we": 0})
    assert out["rdata"] == 30
    sim.step({"addr": 2, "data": 99, "we": 1})
    out = sim.step({"addr": 2, "data": 0, "we": 0})
    assert out["rdata"] == 99
    # Other words untouched.
    assert sim.step({"addr": 1, "data": 0, "we": 0})["rdata"] == 20


def test_trace_records_and_renders():
    sim = Simulator(build_counter())
    tsim = TracingSimulator(sim, ["cnt"])
    tsim.run(3, {"en": 1})
    assert tsim.trace.column("cnt") == [0, 1, 2, 3]
    text = tsim.trace.render()
    assert "cnt" in text
    assert len(tsim.trace) == 4


def test_trace_empty_render():
    tr = Trace(["x"])
    assert tr.render() == "(empty trace)"


def test_trace_decimal_base():
    tr = Trace(["x"])
    tr.record({"x": 11})
    assert "11" in tr.render(base="dec")
