"""Differential fuzzing of cone-of-influence obligation slicing.

Sliced and unsliced exports of the same query must be equisatisfiable,
and a sliced model must expand (via the remap table) to a model of the
*full* recorded formula — exercised on seeded random miter contexts and
on the four SoC design variants end to end.  A second family of tests
pins down the history-independence guarantee: the fingerprint of a
sliced frame obligation must not move when unrelated frames, registers
or commitments grow the shared context, which is what makes the proof
cache hit across window lengths, worker counts and runs.

``REPRO_FUZZ_SCALE`` multiplies the iteration counts (CI can turn the
screws); the ``slow`` marker gates an extra high-volume pass.
"""

import os
import random

import pytest

from repro.core import UpecChecker, UpecMethodology, UpecModel, UpecScenario
from repro.engine import ProofEngine, ResultCache, solve_obligation
from repro.formal.bmc import SatContext
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

FUZZ_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))

VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")
SCENARIO = UpecScenario(secret_in_cache=True)


def _soc(name):
    return build_soc(getattr(SocConfig, name)(**FORMAL_CONFIG_KWARGS))


# ----------------------------------------------------------------------
# Random miter contexts
# ----------------------------------------------------------------------
def random_expr(rng, aig, leaves, depth):
    """A random AIG literal over ``leaves`` (inputs and subexpressions)."""
    if depth <= 0 or rng.random() < 0.25:
        lit = rng.choice(leaves)
        return lit ^ 1 if rng.random() < 0.5 else lit
    op = rng.randrange(5)
    a = random_expr(rng, aig, leaves, depth - 1)
    b = random_expr(rng, aig, leaves, depth - 1)
    if op == 0:
        return aig.and_(a, b)
    if op == 1:
        return aig.or_(a, b)
    if op == 2:
        return aig.xor_(a, b)
    if op == 3:
        return aig.not_(aig.and_(a, b))
    return aig.mux_(random_expr(rng, aig, leaves, depth - 1), a, b)


def random_miter_context(rng, simplify):
    """A context with asserted units (some frame-tagged), *unrelated
    mapped-but-unasserted cones* (the history a slice must drop) and a
    miter-style query target: two random cones over shared inputs,
    assumed to differ."""
    ctx = SatContext(simplify=simplify)
    aig = ctx.aig
    inputs = aig.new_inputs(rng.randint(3, 8))
    for _ in range(rng.randint(0, 3)):
        frame = rng.choice([None, 0, 1, 2, 3])
        ctx.assert_lit(random_expr(rng, aig, inputs, 2), frame=frame)
    for _ in range(rng.randint(0, 3)):
        # Other queries' cones: emitted into the shared CNF but never
        # asserted — exactly what makes unsliced obligations bloat.
        ctx.mapper.assumption(random_expr(rng, aig, inputs, 3))
    left = random_expr(rng, aig, inputs, rng.randint(2, 4))
    right = random_expr(rng, aig, inputs, rng.randint(2, 4))
    target = aig.xor_(left, right)
    if rng.random() < 0.5:
        ctx.mapper.assumption(random_expr(rng, aig, inputs, 3))
    return ctx, target


def assert_model_covers_log(obligation, verdict, ctx, unit_cutoff=None):
    """The completed worker model must satisfy every recorded clause of
    the *full* context formula — except units the frame cutoff
    deliberately dropped — and every assumption of the query."""
    model = ctx.complete_model(obligation, verdict.model_list())
    log = ctx.solver
    dropped = set()
    if unit_cutoff is not None:
        dropped = {ci for ci in log.roots
                   if log.tags[ci] is not None
                   and log.tags[ci] > unit_cutoff}

    def holds(lit):
        var = abs(lit)
        value = model[var] if var < len(model) else False
        return value if lit > 0 else not value

    for ci, clause in enumerate(log.clauses):
        if ci in dropped:
            continue
        assert any(holds(lit) for lit in clause), \
            f"completed model violates recorded clause {clause}"
    for lit in obligation.meta.get("dimacs_assumptions", ()):
        assert holds(lit)


def run_random_miters(seed, count, simplify):
    rng = random.Random(seed)
    proper_slices = 0
    for _ in range(count):
        ctx, target = random_miter_context(rng, simplify)
        if target in (0, 1):
            continue  # structurally constant miter: nothing to solve
        full = ctx.export_obligation("full", assumptions=[target],
                                     slice=False)
        sliced = ctx.export_obligation("sliced", assumptions=[target],
                                       slice=True)
        sliced.meta["dimacs_assumptions"] = list(full.assumptions)
        size_f, size_s = full.size(), sliced.size()
        assert size_s["clauses"] <= size_f["clauses"]
        assert size_s["nvars"] <= size_f["nvars"]
        if sliced.remap is not None:
            proper_slices += 1
        vf = solve_obligation(full)
        vs = solve_obligation(sliced)
        assert vf.status == vs.status, \
            "slicing changed the verdict of a random miter"
        if vs.sat:
            assert_model_covers_log(sliced, vs, ctx)
        # Determinism: re-exporting the same query is bit-identical.
        again = ctx.export_obligation("sliced", assumptions=[target],
                                      slice=True)
        assert again.fingerprint() == sliced.fingerprint()
    # The harness must actually exercise the remap/completion machinery,
    # not just identity slices.
    assert proper_slices > count // 4


@pytest.mark.parametrize("simplify", [False, True])
def test_random_miters_sliced_matches_unsliced(simplify):
    run_random_miters(seed=1701, count=60 * FUZZ_SCALE, simplify=simplify)


def test_random_frame_cutoff_matches_rebuilt_reference():
    """A frame-``t`` slice keeps exactly the units of frames ``<= t``
    (plus untagged ones): its verdict must match an unsliced export from
    a reference context that only ever asserted those units."""
    rng = random.Random(2702)
    for _ in range(40 * FUZZ_SCALE):
        nin = rng.randint(3, 7)
        n_units = rng.randint(1, 4)
        plan = []
        for _ in range(n_units):
            plan.append((rng.choice([None, 0, 1, 2, 3]),
                         rng.randint(0, 10**9)))
        cutoff = rng.randint(0, 3)
        target_seed = rng.randint(0, 10**9)

        def build(frames_kept):
            ctx = SatContext(simplify=True)
            inputs = ctx.aig.new_inputs(nin)
            for frame, seed in plan:
                if frames_kept is not None and frame is not None \
                        and frame > frames_kept:
                    continue
                ctx.assert_lit(
                    random_expr(random.Random(seed), ctx.aig, inputs, 2),
                    frame=frame,
                )
            target = random_expr(random.Random(target_seed), ctx.aig,
                                 inputs, 3)
            return ctx, target

        ctx_all, target = build(None)
        if target in (0, 1):
            continue
        sliced = ctx_all.export_obligation(
            "cut", assumptions=[target], slice=True, frame=cutoff)
        ctx_ref, target_ref = build(cutoff)
        reference = ctx_ref.export_obligation(
            "ref", assumptions=[target_ref], slice=False)
        verdict = solve_obligation(sliced)
        assert verdict.status == solve_obligation(reference).status, \
            "frame cutoff changed the verdict vs. a rebuilt reference"
        if verdict.sat:
            # The completed model is a real execution: it satisfies every
            # recorded clause except the deliberately dropped later-frame
            # units.
            assert_model_covers_log(sliced, verdict, ctx_all,
                                    unit_cutoff=cutoff)


# ----------------------------------------------------------------------
# End-to-end: the four design variants, sliced vs. unsliced
# ----------------------------------------------------------------------
def _alert_sig(alert):
    return None if alert is None else \
        (alert.frame, alert.kind, alert.diff_reg_names())


def _methodology_sig(result):
    return (
        result.verdict,
        result.k,
        result.iterations,
        list(result.removed_regs),
        [_alert_sig(alert) for alert in result.p_alerts],
        _alert_sig(result.l_alert),
    )


def test_methodology_slice_differential_all_variants():
    """Acceptance: sliced and unsliced runs must agree on verdicts,
    alert classification (frame, kind, differing registers) and the
    removed-register sets on every design variant."""
    for name in VARIANTS:
        soc = _soc(name)
        sliced = UpecMethodology(soc, SCENARIO, jobs=1, slice=True) \
            .run(k=2)
        unsliced = UpecMethodology(soc, SCENARIO, jobs=1, slice=False) \
            .run(k=2)
        assert _methodology_sig(sliced) == _methodology_sig(unsliced), name
        # Slicing was actually exercised, and it never grew an export.
        stats = sliced.stats
        assert stats.get("obligations_sliced", 0) > 0, name
        assert stats["slice_clauses_out"] <= stats["slice_clauses_in"], name


def test_closure_slice_differential():
    """Per-register closure obligations: the holds/fails pattern is
    formula-determined and must survive slicing."""
    from repro.core import InductiveDiffProof
    from repro.core.closure import CondEq

    soc = _soc("secure")
    invariant = [
        CondEq(soc.resp_buf, cond=None),
        CondEq(soc.secret_cache_data_reg, cond=None),
    ]
    results = {}
    for mode in (True, False):
        engine = ProofEngine(jobs=1)
        try:
            results[mode] = InductiveDiffProof(
                soc, SCENARIO, invariant, engine=engine, slice=mode,
            ).check_step(conflict_limit=200_000)
        finally:
            engine.close()
    assert [(ob.name, ob.holds) for ob in results[True].obligations] == \
        [(ob.name, ob.holds) for ob in results[False].obligations]
    assert results[True].holds == results[False].holds


def test_bmc_slice_differential():
    from repro.formal import BmcEngine
    from repro.hdl import Circuit

    for mode in (True, False):
        c = Circuit("counter")
        cnt = c.reg("cnt", 8, init=0)
        c.next(cnt, cnt + 1)
        c.finalize()
        engine = ProofEngine(jobs=1)
        try:
            result = BmcEngine(c, init="reset", engine=engine,
                               slice=mode).check_always(cnt.ne(5), k=8)
        finally:
            engine.close()
        assert not result.holds and result.depth == 5
        assert result.witness.value("cnt", 5) == 5


# ----------------------------------------------------------------------
# Cache stability: history-independent fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_invariant_under_context_growth():
    """The same frame-k commitment query fingerprints identically before
    and after unrelated growth of the shared SatContext (longer windows,
    other frames' obligations, other commitments)."""
    soc = _soc("secure")
    model = UpecModel(soc, SCENARIO)
    regs = model.default_commitment()
    first = model.frame_obligation(regs, 1)
    assert first is not None
    baseline = first.fingerprint()

    # Unrelated growth: deeper frames are unrolled, their window
    # assumptions asserted, their commitment diff cones emitted and
    # frozen, and a different commitment is exported.
    model.frame_obligation(regs, 2)
    model.frame_obligation(regs[: len(regs) // 2], 2)

    again = model.frame_obligation(regs, 1)
    assert again.fingerprint() == baseline
    assert again.nvars == first.nvars
    assert again.clauses == first.clauses


def test_fingerprint_identical_across_fresh_contexts():
    """Two independent models of the same design/scenario produce
    bit-identical obligations for the same (commitment, frame) query —
    the property that makes the proof cache hit across runs."""
    soc = _soc("secure")
    sigs = []
    for _ in range(2):
        model = UpecModel(soc, SCENARIO)
        regs = model.default_commitment()
        sigs.append([model.frame_obligation(regs, t).fingerprint()
                     for t in (1, 2)])
    assert sigs[0] == sigs[1]


def test_warm_cache_hits_at_longer_window(tmp_path):
    """A warm cache from a k=2 run serves the shared prefix frames of a
    k=3 run: iteration-1 obligations do not depend on the window
    length."""
    soc = _soc("secure")
    first = UpecMethodology(soc, SCENARIO, jobs=1,
                            cache_dir=str(tmp_path)).run(k=2)
    longer = UpecMethodology(soc, SCENARIO, jobs=1,
                             cache_dir=str(tmp_path)).run(k=3)
    assert first.stats["engine_cache_hits"] == 0
    assert longer.stats["engine_cache_hits"] > 0
    assert longer.stats["engine_cache_hits"] >= \
        first.stats["engine_cache_misses"] - 1  # frame 3 & beyond are new
    assert longer.verdict == first.verdict


def test_warm_cache_shared_between_jobs_settings(tmp_path):
    """jobs=1 (lazy export) and jobs=2 (eager export) produce the same
    obligation stream: a cache warmed by one is fully hit by the other,
    including the refinement iterations after a P-alert."""
    soc = _soc("orc")
    seq = UpecMethodology(soc, SCENARIO, jobs=1,
                          cache_dir=str(tmp_path)).run(k=2)
    engine = ProofEngine(jobs=2, cache_dir=str(tmp_path))
    try:
        par = UpecMethodology(soc, SCENARIO, engine=engine).run(k=2)
    finally:
        engine.close()
    assert par.stats["engine_cache_hits"] > 0
    assert par.stats["engine_cache_misses"] == 0
    assert _methodology_sig(par) == _methodology_sig(seq)
    # Bit-identical obligations mean bit-identical adopted models, so
    # even the witness values agree between the two schedules.
    assert [a.to_dict() for a in par.p_alerts] == \
        [a.to_dict() for a in seq.p_alerts]


def test_checker_stops_unrolling_after_alert_at_jobs1(tmp_path):
    """The lazy jobs=1 path must not unroll or export frames past the
    first alert (the cost the eager pre-slicing path always paid)."""
    soc = _soc("orc")
    model = UpecModel(soc, SCENARIO)
    engine = ProofEngine(jobs=1)
    try:
        result = UpecChecker(model, engine=engine, slice=True).check(k=6)
    finally:
        engine.close()
    assert result.status == "alert"
    alert_frame = result.alert.frame
    assert alert_frame < 6
    exported = model.stats().get("obligations_exported", 0)
    assert exported <= alert_frame  # frames past the alert never exported


@pytest.mark.slow
def test_slice_fuzz_slow_high_volume():
    """Deep pass for CI's full runs (scaled further by REPRO_FUZZ_SCALE)."""
    run_random_miters(seed=9101, count=300 * FUZZ_SCALE, simplify=True)
    run_random_miters(seed=9102, count=150 * FUZZ_SCALE, simplify=False)
