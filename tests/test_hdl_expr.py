"""Unit tests for the word-level expression IR."""

import pytest

from repro.errors import HdlError, WidthError
from repro.hdl import (
    Circuit,
    and_all,
    cat,
    const,
    implies,
    mask,
    mux,
    or_all,
    repl,
    resize,
    select,
    sext,
    truncate,
    zext,
)
from repro.hdl.expr import Expr, Input, Reg


def test_const_basic():
    c = const(5, 4)
    assert c.is_const
    assert c.value == 5
    assert c.width == 4


def test_const_negative_wraps():
    c = const(-1, 4)
    assert c.value == 0xF


def test_const_too_wide_rejected():
    with pytest.raises(WidthError):
        const(16, 4)


def test_const_non_int_rejected():
    with pytest.raises(HdlError):
        const("x", 4)


def test_zero_width_rejected():
    with pytest.raises(WidthError):
        const(0, 0)


def test_mask():
    assert mask(1) == 1
    assert mask(8) == 255


def test_binary_ops_build():
    a = Input("a", 8)
    b = Input("b", 8)
    for expr, op in [
        (a + b, "add"),
        (a - b, "sub"),
        (a & b, "and"),
        (a | b, "or"),
        (a ^ b, "xor"),
    ]:
        assert expr.op == op
        assert expr.width == 8
        assert expr.args == (a, b)


def test_int_coercion_in_binary_ops():
    a = Input("a", 8)
    expr = a + 1
    assert expr.args[1].is_const
    assert expr.args[1].width == 8
    rexpr = 1 + a
    assert rexpr.op == "add"


def test_width_mismatch_rejected():
    a = Input("a", 8)
    b = Input("b", 4)
    with pytest.raises(WidthError):
        _ = a + b


def test_compare_ops_are_one_bit():
    a = Input("a", 8)
    b = Input("b", 8)
    for expr in [a.eq(b), a.ne(b), a.ult(b), a.ule(b), a.ugt(b), a.uge(b)]:
        assert expr.width == 1


def test_python_eq_is_identity():
    a = Input("a", 8)
    b = Input("b", 8)
    assert a != b
    assert a == a
    # Usable as dict keys.
    d = {a: 1, b: 2}
    assert d[a] == 1


def test_invert():
    a = Input("a", 8)
    assert (~a).op == "not"
    assert (~a).width == 8


def test_shifts():
    a = Input("a", 8)
    assert (a << 2).op == "shl"
    assert (a >> 3).op == "lshr"
    with pytest.raises(HdlError):
        _ = a << -1


def test_bit_select():
    a = Input("a", 8)
    bit = a[3]
    assert bit.width == 1
    assert bit.params == (3, 4)
    assert a[-1].params == (7, 8)
    with pytest.raises(WidthError):
        _ = a[8]


def test_slice_select():
    a = Input("a", 8)
    s = a[2:6]
    assert s.width == 4
    assert s.params == (2, 6)
    assert a[:4].width == 4
    assert a[4:].width == 4
    with pytest.raises(HdlError):
        _ = a[0:8:2]
    with pytest.raises(WidthError):
        _ = a[5:3]


def test_cat_widths():
    a = Input("a", 3)
    b = Input("b", 5)
    c = cat(a, b)
    assert c.width == 8
    assert cat(a) is a
    with pytest.raises(HdlError):
        cat()


def test_repl():
    a = Input("a", 1)
    assert repl(a, 4).width == 4
    with pytest.raises(WidthError):
        repl(Input("b", 2), 2)
    with pytest.raises(HdlError):
        repl(a, 0)


def test_extensions():
    a = Input("a", 4)
    assert zext(a, 8).width == 8
    assert zext(a, 4) is a
    assert sext(a, 8).width == 8
    assert truncate(a, 2).width == 2
    assert resize(a, 8).width == 8
    assert resize(a, 2).width == 2
    assert resize(a, 4) is a
    with pytest.raises(WidthError):
        zext(a, 2)
    with pytest.raises(WidthError):
        truncate(a, 8)


def test_mux():
    s = Input("s", 1)
    a = Input("a", 8)
    b = Input("b", 8)
    m = mux(s, a, b)
    assert m.width == 8
    m2 = mux(s, a, 0)
    assert m2.args[2].is_const
    with pytest.raises(WidthError):
        mux(a, a, b)  # select must be 1 bit
    with pytest.raises(HdlError):
        mux(s, 1, 2)  # width not inferable


def test_and_or_all():
    bits = [Input(f"b{i}", 1) for i in range(3)]
    assert and_all(bits).width == 1
    assert or_all(bits).width == 1
    assert and_all([]).is_const and and_all([]).value == 1
    assert or_all([]).is_const and or_all([]).value == 0
    with pytest.raises(WidthError):
        and_all([Input("w", 2)])


def test_implies():
    a = Input("a", 1)
    b = Input("b", 1)
    assert implies(a, b).width == 1
    with pytest.raises(WidthError):
        implies(Input("w", 2), b)


def test_select_builds_mux_tree():
    idx = Input("i", 2)
    choices = [const(v, 8) for v in (10, 20, 30, 40)]
    out = select(idx, choices)
    assert out.width == 8


def test_select_width_inference_failure():
    idx = Input("i", 2)
    with pytest.raises(HdlError):
        select(idx, [1, 2, 3])


def test_select_mixed_int_choices():
    idx = Input("i", 1)
    out = select(idx, [Input("a", 4), 7])
    assert out.width == 4


def test_reduction_ops():
    a = Input("a", 8)
    assert a.any().width == 1
    assert a.all().width == 1
    assert a.bool().op == "redor"


def test_reg_attrs():
    r = Reg("r", 8, init=3, arch=True, tags=("memory",))
    assert r.init == 3
    assert r.arch
    assert "memory" in r.tags
    assert r.next is None


def test_reg_bad_init():
    with pytest.raises(WidthError):
        Reg("r", 4, init=16)
    with pytest.raises(HdlError):
        Reg("r", 4, init="x")


def test_expr_value_only_for_const():
    a = Input("a", 4)
    with pytest.raises(HdlError):
        _ = a.value


def test_repr_does_not_crash():
    a = Input("a", 4)
    assert "a" in repr(a + 1)
