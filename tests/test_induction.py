"""Tests for generic k-induction."""

import pytest

from repro.errors import FormalError
from repro.formal import prove_by_induction
from repro.hdl import Circuit, const, mux


def test_inductive_invariant_proved_k1():
    """A register that can only shrink stays below its bound."""
    c = Circuit("t")
    r = c.reg("r", 8, init=5)
    c.next(r, mux(r.eq(0), r, r - 1))
    c.finalize()
    result = prove_by_induction(c, r.ule(5), k=1)
    # r <= 5 is NOT 1-inductive (symbolic r=200 steps to 199, both >5;
    # prop at frame 0 fails... r<=5 at frame 0 assumed; then r-1 <= 5 ok).
    assert result.proved
    assert "proved" in result.describe()


def test_base_case_failure():
    c = Circuit("t")
    r = c.reg("r", 8, init=9)
    c.next(r, r)
    c.finalize()
    result = prove_by_induction(c, r.ule(5), k=2)
    assert not result.proved
    assert result.failed_case == "base"
    assert result.base is not None and not result.base.holds


def test_step_case_failure_with_witness():
    """A true-but-not-inductive property fails the step with a witness.

    The counter wraps modulo 4 (bits [1:0] only); 'r != 3' holds from
    reset=0? No: 0,1,2,3 — it is simply false; use a property that holds
    for k cycles but is not inductive: parity tricks.  Simplest: r != 200
    holds from reset for a slow counter but the symbolic step from r=199
    violates it.
    """
    c = Circuit("t")
    r = c.reg("r", 8, init=0)
    c.next(r, mux(r.eq(100), r, r + 1))   # saturates at 100
    c.finalize()
    # r != 90 is false eventually (reachable) -> base fails at k>=90 is
    # impractical; instead prove r <= 100, which IS inductive:
    good = prove_by_induction(c, r.ule(100), k=1)
    assert good.proved
    # r <= 99 holds for small k from reset but is not inductive (r=99
    # steps to 100): the step case must fail with a witness at r=99.
    bad = prove_by_induction(c, r.ule(99), k=1)
    assert not bad.proved
    assert bad.failed_case == "step"
    assert bad.step_witness is not None
    assert bad.step_witness.frames[0]["r"] == 99


def test_larger_k_strengthens():
    """A property that needs history: a two-register swap where the bad
    state's only predecessor is itself bad — k=1 admits the spurious
    predecessor, k=2 rules it out."""
    c = Circuit("t")
    a = c.reg("a", 1, init=0)
    b = c.reg("b", 1, init=0)
    c.next(a, b)
    c.next(b, a)
    c.finalize()
    prop = ~(a & ~b)   # state (1,0) never occurs from reset (0,0)
    weak = prove_by_induction(c, prop, k=1)
    assert not weak.proved and weak.failed_case == "step"
    strong = prove_by_induction(c, prop, k=2)
    assert strong.proved


def test_assumptions_constrain_the_step():
    c = Circuit("t")
    x = c.input("x", 8)
    r = c.reg("r", 8, init=0)
    c.next(r, x)
    c.finalize()
    # Without assumptions r can become anything.
    free = prove_by_induction(c, r.ule(10), k=1)
    assert not free.proved
    bounded = prove_by_induction(c, r.ule(10), k=1, assumptions=[x.ule(10)])
    assert bounded.proved


def test_property_width_check():
    c = Circuit("t")
    r = c.reg("r", 8, init=0)
    c.finalize()
    with pytest.raises(FormalError):
        prove_by_induction(c, r + 1, k=1)


def test_monitor_invariants_are_inductive_on_the_soc():
    """The cache monitor (Constraint 2) is a real invariant: provable by
    1-induction on the SoC itself — justifying its use as a proof
    assumption."""
    from repro.core import cache_protocol_ok
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    soc = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))
    result = prove_by_induction(soc.circuit, cache_protocol_ok(soc), k=1)
    assert result.proved, result.describe()
