"""Unit tests for the AIG and its CNF mapping."""

import itertools

import pytest

from repro.errors import FormalError
from repro.formal.aig import FALSE, TRUE, Aig, CnfMapper
from repro.formal.solver import CdclSolver


def test_constants():
    aig = Aig()
    assert aig.const(False) == FALSE
    assert aig.const(True) == TRUE


def test_and_simplifications():
    aig = Aig()
    a = aig.new_input()
    assert aig.and_(a, FALSE) == FALSE
    assert aig.and_(FALSE, a) == FALSE
    assert aig.and_(a, TRUE) == a
    assert aig.and_(TRUE, a) == a
    assert aig.and_(a, a) == a
    assert aig.and_(a, a ^ 1) == FALSE


def test_structural_hashing():
    aig = Aig()
    a, b = aig.new_inputs(2)
    n1 = aig.and_(a, b)
    n2 = aig.and_(b, a)
    assert n1 == n2
    size_before = len(aig)
    aig.and_(a, b)
    assert len(aig) == size_before


def test_mux_simplifications():
    aig = Aig()
    a, b, s = aig.new_inputs(3)
    assert aig.mux_(TRUE, a, b) == a
    assert aig.mux_(FALSE, a, b) == b
    assert aig.mux_(s, a, a) == a


def test_evaluate_gates_exhaustively():
    aig = Aig()
    a, b = aig.new_inputs(2)
    nodes = {
        "and": aig.and_(a, b),
        "or": aig.or_(a, b),
        "xor": aig.xor_(a, b),
        "xnor": aig.xnor_(a, b),
        "implies": aig.implies_(a, b),
        "not": aig.not_(a),
    }
    python_ops = {
        "and": lambda x, y: x and y,
        "or": lambda x, y: x or y,
        "xor": lambda x, y: x != y,
        "xnor": lambda x, y: x == y,
        "implies": lambda x, y: (not x) or y,
        "not": lambda x, y: not x,
    }
    for x, y in itertools.product([False, True], repeat=2):
        values = aig.evaluate(list(nodes.values()), {a: x, b: y})
        for (name, _), got in zip(nodes.items(), values):
            assert got == python_ops[name](x, y), name


def test_evaluate_mux_exhaustively():
    aig = Aig()
    s, a, b = aig.new_inputs(3)
    m = aig.mux_(s, a, b)
    for sv, av, bv in itertools.product([False, True], repeat=3):
        (got,) = aig.evaluate([m], {s: sv, a: av, b: bv})
        assert got == (av if sv else bv)


def test_evaluate_requires_positive_input_lits():
    aig = Aig()
    a = aig.new_input()
    with pytest.raises(FormalError):
        aig.evaluate([a], {a ^ 1: True})


def test_evaluate_missing_input_rejected():
    aig = Aig()
    a, b = aig.new_inputs(2)
    n = aig.and_(a, b)
    with pytest.raises(FormalError):
        aig.evaluate([a], {b: True})
    # But the AND node itself evaluates if all leaves are known.
    assert aig.evaluate([n], {a: True, b: True}) == [True]


def test_and_or_all():
    aig = Aig()
    bits = aig.new_inputs(3)
    conj = aig.and_all(bits)
    disj = aig.or_all(bits)
    assert aig.and_all([]) == TRUE
    assert aig.or_all([]) == FALSE
    values = aig.evaluate([conj, disj], {bits[0]: True, bits[1]: True, bits[2]: False})
    assert values == [False, True]


def test_cone_topological():
    aig = Aig()
    a, b, c = aig.new_inputs(3)
    ab = aig.and_(a, b)
    abc = aig.and_(ab, c)
    cone = aig.cone([abc])
    assert cone.index(ab >> 1) < cone.index(abc >> 1)
    # Inputs are not in the cone list.
    assert (a >> 1) not in cone


def test_cnf_mapper_equivalence():
    """SAT on the Tseitin encoding agrees with direct evaluation."""
    aig = Aig()
    a, b, c = aig.new_inputs(3)
    formula = aig.or_(aig.and_(a, b), aig.xor_(b, c))
    mapper = CnfMapper(aig)
    target = mapper.assumption(formula)
    assert mapper.solver.solve(assumptions=[target]) is True
    model = {
        lit: mapper.model_lit(lit) for lit in (a, b, c)
    }
    (value,) = aig.evaluate([formula], model)
    assert value is True
    # Force the formula false and check again.
    assert mapper.solver.solve(assumptions=[-target]) is True
    model = {lit: mapper.model_lit(lit) for lit in (a, b, c)}
    (value,) = aig.evaluate([formula], model)
    assert value is False


def test_cnf_mapper_constants():
    aig = Aig()
    mapper = CnfMapper(aig)
    assert mapper.solver.solve(assumptions=[mapper.assumption(TRUE)]) is True
    assert mapper.solver.solve(assumptions=[mapper.assumption(FALSE)]) is False
    assert mapper.model_lit(TRUE) is True
    assert mapper.model_lit(FALSE) is False


def test_cnf_mapper_unsat_on_contradiction():
    aig = Aig()
    a = aig.new_input()
    mapper = CnfMapper(aig)
    mapper.assert_true(a)
    mapper.assert_true(a ^ 1)
    assert mapper.solver.solve() is False


def test_cnf_mapper_incremental_sharing():
    """Emitting the same cone twice adds no new clauses."""
    aig = Aig()
    a, b = aig.new_inputs(2)
    n = aig.and_(a, b)
    mapper = CnfMapper(aig)
    mapper.assumption(n)
    emitted = mapper.clauses_emitted
    mapper.assumption(n)
    assert mapper.clauses_emitted == emitted


def test_model_lit_for_unconstrained_node():
    aig = Aig()
    a = aig.new_input()
    b = aig.new_input()
    mapper = CnfMapper(aig)
    mapper.assert_true(a)
    assert mapper.solver.solve() is True
    # b never reached the solver; defaults to False.
    assert mapper.model_lit(b) is False
    assert mapper.model_lit(b ^ 1) is True


def test_num_ands():
    aig = Aig()
    a, b = aig.new_inputs(2)
    base = aig.num_ands()
    aig.and_(a, b)
    assert aig.num_ands() == base + 1
