"""RTL pipeline tests: directed cases plus randomized RTL-vs-ISS lockstep.

The ISS is the architectural specification; every program must leave both
models in identical architectural state (registers, PC neighbourhood, trap
CSRs, protection CSRs and the coherent memory image).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc import Iss, SocConfig, SocSim, build_soc
from repro.soc import isa
from repro.soc.programs import build_image

CFG = SocConfig.secure()
SOC = build_soc(CFG)
SOC_BYPASS = build_soc(SocConfig.orc())
SOC_MELTDOWN = build_soc(SocConfig.meltdown())
SOC_PMPBUG = build_soc(SocConfig.pmp_bug())

ALL_SOCS = [SOC, SOC_BYPASS, SOC_MELTDOWN, SOC_PMPBUG]


def run_both(code, soc=SOC, memory=None, max_cycles=3000):
    """Run a program (list of Instructions ending in a halt loop) on the
    RTL and the ISS; returns (SocSim, Iss)."""
    words = [i.encode() for i in code]
    halt_pc = next(
        i for i, instr in enumerate(code)
        if instr.opcode == isa.OP_JAL and instr.rd == 0 and instr.simm == 0
    )
    sim = SocSim(soc, words, memory=memory)
    sim.run_until_halt(halt_pc, max_cycles=max_cycles)
    iss = Iss(soc.config, words, memory=memory)
    iss.run(max_cycles, stop_pc=halt_pc)
    return sim, iss


def assert_arch_equal(sim, iss, check_memory=True):
    rtl = sim.arch_state()
    spec = iss.arch_state().as_dict()
    for i in range(1, isa.NUM_REGS):
        assert rtl[f"x{i}"] == spec[f"x{i}"], f"x{i}: rtl={rtl[f'x{i}']} iss={spec[f'x{i}']}"
    for name in ("mode", "mepc", "mcause",
                 "pmpaddr0", "pmpcfg0", "pmpaddr1", "pmpcfg1"):
        assert rtl[name] == spec[name], name
    if check_memory:
        for addr in range(sim.soc.config.dmem_words):
            assert sim.mem_read(addr) == iss.load(addr), f"mem[{addr}]"


def test_alu_program_all_functs():
    code = [
        isa.li(1, 0x5A), isa.li(2, 0x0F),
        isa.add(3, 1, 2), isa.sub(4, 1, 2), isa.and_(5, 1, 2),
        isa.or_(6, 1, 2), isa.xor(7, 1, 2),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert_arch_equal(sim, iss)


def test_sltu_and_addi_negative():
    code = [
        isa.li(1, 3), isa.addi(2, 1, -5), isa.sltu(3, 1, 2),
        isa.sltu(4, 2, 1), isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert_arch_equal(sim, iss)


def test_forwarding_chain():
    """Back-to-back dependent ALU ops exercise both forwarding paths."""
    code = [
        isa.li(1, 1),
        isa.add(2, 1, 1),    # needs x1 from M
        isa.add(3, 2, 1),    # needs x2 from M, x1 from WB
        isa.add(4, 3, 2),
        isa.add(5, 4, 3),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert_arch_equal(sim, iss)


@pytest.mark.parametrize("soc", ALL_SOCS, ids=lambda s: s.config.name)
def test_load_use_dependency_all_variants(soc):
    """Load-use hazards (interlock vs bypass) must be architecturally
    invisible in every design variant."""
    code = [
        isa.li(1, 0x77), isa.li(2, 5),
        isa.sb(1, 0, 2),
        isa.lb(3, 0, 2),     # load
        isa.add(4, 3, 3),    # immediate use
        isa.lb(5, 0, 2),     # second dependent load pair
        isa.lb(6, 0, 5),     # address depends on a load (0x77 wraps)
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code, soc=soc)
    assert_arch_equal(sim, iss)


def test_store_load_many_addresses():
    code = [isa.li(1, 11), isa.li(2, 0)]
    for addr in (0, 1, 7, 9, 15):
        code += [isa.li(2, addr), isa.sb(1, 0, 2), isa.addi(1, 1, 1)]
    code += [isa.li(3, 9), isa.lb(4, 0, 3), isa.jal(0, 0)]
    sim, iss = run_both(code)
    assert_arch_equal(sim, iss)


def test_cache_eviction_writeback():
    """Two addresses mapping to one line force eviction + write-back."""
    lines = CFG.cache_lines
    a, b = 1, 1 + lines  # same index, different tags
    code = [
        isa.li(1, 0xAA), isa.li(2, a), isa.sb(1, 0, 2),
        isa.li(3, 0xBB), isa.li(4, b), isa.sb(3, 0, 4),   # evicts dirty a
        isa.lb(5, 0, 2),  # reload a (from memory after write-back)
        isa.lb(6, 0, 4),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(5) == 0xAA
    assert sim.reg(6) == 0xBB
    assert_arch_equal(sim, iss)


def test_branch_taken_and_not_taken():
    code = [
        isa.li(1, 1), isa.li(2, 1),
        isa.beq(1, 2, 2),    # taken: skip poison
        isa.li(3, 99),       # squashed
        isa.bne(1, 2, 2),    # not taken
        isa.li(4, 42),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(3) == 0
    assert sim.reg(4) == 42
    assert_arch_equal(sim, iss)


def test_branch_shadow_not_executed():
    """Both squash slots after a taken branch must not commit."""
    code = [
        isa.li(1, 1),
        isa.bne(1, 0, 3),
        isa.li(2, 1),        # squashed slot 1
        isa.li(3, 1),        # squashed slot 2
        isa.li(4, 1),        # branch target
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(2) == 0 and sim.reg(3) == 0 and sim.reg(4) == 1
    assert_arch_equal(sim, iss)


def test_loop_countdown():
    code = [
        isa.li(1, 5), isa.li(2, 0), isa.li(3, 1),
        isa.add(2, 2, 1),
        isa.sub(1, 1, 3),
        isa.bne(1, 0, -2),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(2) == 15
    assert_arch_equal(sim, iss)


def test_jal_link_and_jump():
    code = [
        isa.jal(7, 2),
        isa.li(1, 99),       # skipped
        isa.li(2, 1),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(7) == 1
    assert sim.reg(1) == 0
    assert_arch_equal(sim, iss)


@pytest.mark.parametrize("soc", ALL_SOCS, ids=lambda s: s.config.name)
def test_trap_roundtrip_all_variants(soc):
    """PMP fault -> handler -> resume, identical on RTL and ISS."""
    from repro.soc.programs import build_image

    user = [
        isa.li(1, soc.config.secret_addr),
        isa.lb(2, 0, 1),     # illegal: traps, handler skips
        isa.li(3, 0x21),     # resumed here
        isa.jal(0, 0),
    ]
    secret_value = 0xEE
    memory = [0] * soc.config.dmem_words
    memory[soc.secret_eff_addr] = secret_value
    image = build_image(soc.config, user)
    sim = SocSim(soc, image.words, memory=memory)
    sim.run_until_halt(image.halt_pc, max_cycles=3000)
    iss = Iss(soc.config, image.words, memory=memory)
    iss.run(3000, stop_pc=image.halt_pc)
    assert sim.reg(2) != secret_value   # the secret never reached x2
    assert sim.reg(3) == 0x21
    assert sim.arch_state()["mode"] == isa.MODE_USER
    assert_arch_equal_no_x6(sim, iss)


def assert_arch_equal_no_x6(sim, iss):
    """Arch comparison ignoring the handler scratch register timing."""
    rtl = sim.arch_state()
    spec = iss.arch_state().as_dict()
    for i in range(1, isa.NUM_REGS):
        assert rtl[f"x{i}"] == spec[f"x{i}"], f"x{i}"
    for name in ("mode", "mepc", "mcause"):
        assert rtl[name] == spec[name], name


def test_ecall_roundtrip():
    from repro.soc.programs import build_image

    user = [
        isa.li(1, 7),
        isa.ecall(),
        isa.li(2, 9),
        isa.jal(0, 0),
    ]
    image = build_image(CFG, user)
    sim = SocSim(SOC, image.words)
    sim.run_until_halt(image.halt_pc)
    iss = Iss(CFG, image.words)
    iss.run(3000, stop_pc=image.halt_pc)
    assert sim.reg(2) == 9
    assert sim.arch_state()["mcause"] == isa.CAUSE_ECALL
    assert_arch_equal_no_x6(sim, iss)


def test_csr_write_read_hazard():
    """CSRW followed closely by CSRR must observe the new value."""
    code = [
        isa.li(1, 0x17),
        isa.csrw(isa.CSR_MEPC, 1),
        isa.csrr(2, isa.CSR_MEPC),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(2) == 0x17
    assert_arch_equal(sim, iss)


def test_pmp_lock_rtl_matches_compliant_iss():
    code = [
        isa.li(1, isa.PMP_A | isa.PMP_L),
        isa.csrw(isa.CSR_PMPCFG1, 1),
        isa.li(2, 20),
        isa.csrw(isa.CSR_PMPADDR0, 2),   # must be ignored (TOR lock)
        isa.csrr(3, isa.CSR_PMPADDR0),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(3) == 0
    assert_arch_equal(sim, iss)


def test_pmp_lock_bug_diverges_from_spec():
    """The PMP_BUG RTL accepts the locked write — an ISA incompliance
    (Sec. VII-C) demonstrated against the compliant ISS."""
    code = [
        isa.li(1, isa.PMP_A | isa.PMP_L),
        isa.csrw(isa.CSR_PMPCFG1, 1),
        isa.li(2, 20),
        isa.csrw(isa.CSR_PMPADDR0, 2),
        isa.csrr(3, isa.CSR_PMPADDR0),
        isa.jal(0, 0),
    ]
    words = [i.encode() for i in code]
    sim = SocSim(SOC_PMPBUG, words)
    sim.run_until_halt(5)
    compliant = Iss(CFG, words)
    compliant.run(100, stop_pc=5)
    assert sim.reg(3) == 20            # buggy RTL moved the boundary
    assert compliant.regs[3] == 0      # the spec forbids it
    # The buggy RTL matches an ISS configured with the same bug.
    buggy_spec = Iss(SocConfig.pmp_bug(), words)
    buggy_spec.run(100, stop_pc=5)
    assert sim.reg(3) == buggy_spec.regs[3]


def test_memory_wrap_consistency():
    """High address bits are ignored consistently (no PMP alias bypass)."""
    alias = CFG.dmem_words + 3
    code = [
        isa.li(1, 0x3C), isa.li(2, alias), isa.sb(1, 0, 2),
        isa.li(3, 3), isa.lb(4, 0, 3),
        isa.jal(0, 0),
    ]
    sim, iss = run_both(code)
    assert sim.reg(4) == 0x3C
    assert_arch_equal(sim, iss)


# ----------------------------------------------------------------------
# Randomized lockstep
# ----------------------------------------------------------------------
@st.composite
def random_program(draw):
    """Random terminating user+kernel program (forward branches only)."""
    length = draw(st.integers(min_value=4, max_value=24))
    code = []
    for _ in range(length):
        kind = draw(st.sampled_from(
            ["li", "addi", "alu", "lb", "sb", "branch", "csr", "ecall"]))
        rd = draw(st.integers(min_value=0, max_value=7))
        rs1 = draw(st.integers(min_value=0, max_value=7))
        rs2 = draw(st.integers(min_value=0, max_value=7))
        if kind == "li":
            code.append(isa.li(rd, draw(st.integers(0, 255))))
        elif kind == "addi":
            code.append(isa.addi(rd, rs1, draw(st.integers(-32, 31))))
        elif kind == "alu":
            funct = draw(st.sampled_from(
                [isa.F_ADD, isa.F_SUB, isa.F_AND, isa.F_OR, isa.F_XOR,
                 isa.F_SLTU]))
            code.append(isa.Instruction(isa.OP_ALU, rd=rd, rs1=rs1,
                                        rs2=rs2, funct=funct))
        elif kind == "lb":
            code.append(isa.lb(rd, draw(st.integers(-4, 4)), rs1))
        elif kind == "sb":
            code.append(isa.sb(rd, draw(st.integers(-4, 4)), rs1))
        elif kind == "branch":
            offset = draw(st.integers(min_value=1, max_value=3))
            ctor = draw(st.sampled_from([isa.beq, isa.bne]))
            code.append(ctor(rs1, rs2, offset))
        elif kind == "csr":
            csr = draw(st.sampled_from(
                [isa.CSR_MEPC, isa.CSR_MCAUSE, isa.CSR_PMPADDR0]))
            if draw(st.booleans()):
                code.append(isa.csrr(rd, csr))
            else:
                code.append(isa.csrw(csr, rs1))
        else:
            code.append(isa.ecall())
    code.append(isa.jal(0, 0))
    memory = draw(st.lists(
        st.integers(0, 255), min_size=CFG.dmem_words, max_size=CFG.dmem_words
    ))
    return code, memory


@settings(max_examples=40, deadline=None)
@given(random_program())
def test_random_programs_match_iss(case):
    """Randomized architectural lockstep: RTL == ISS after completion.

    Branch offsets are forward-only, so every program terminates; ECALL
    jumps to the (random) word at the trap vector, which still terminates
    because execution only moves forward until the final halt or an
    instruction-memory wrap bound, capped by max_cycles.
    """
    code, memory = case
    words = [i.encode() for i in code]
    halt_pc = len(words) - 1
    sim = SocSim(SOC, words, memory=memory)
    iss = Iss(CFG, words, memory=memory)
    try:
        sim.run_until_halt(halt_pc, max_cycles=2500)
    except Exception:
        return  # non-halting path (e.g. ecall trap loop): skip
    iss.run(2500, stop_pc=halt_pc)
    if iss.pc != halt_pc:
        return
    assert_arch_equal(sim, iss)


@settings(max_examples=15, deadline=None)
@given(random_program())
def test_random_programs_match_iss_bypass_variant(case):
    """The Orc/Meltdown microarchitectural changes keep architectural
    behaviour intact (the paper: 'functional correctness was not
    affected')."""
    code, memory = case
    words = [i.encode() for i in code]
    halt_pc = len(words) - 1
    sim = SocSim(SOC_BYPASS, words, memory=memory)
    iss = Iss(SOC_BYPASS.config, words, memory=memory)
    try:
        sim.run_until_halt(halt_pc, max_cycles=2500)
    except Exception:
        return
    iss.run(2500, stop_pc=halt_pc)
    if iss.pc != halt_pc:
        return
    assert_arch_equal(sim, iss)
