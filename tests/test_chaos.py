"""Chaos-harness tests: seeded fault injection against the distributed
proof service.

The tentpole here is the *soak differential*: the four-variant UPEC
methodology runs with every byte of broker traffic routed through a
:class:`repro.dist.chaos.ChaosProxy` injecting a seed-determined
schedule of stalls, duplicated frames, payload bit-flips, truncations
and connection resets — plus a worker SIGKILL and one cold broker
restart — and the alert signatures must come out bit-identical to the
sequential ``jobs=1`` oracle.  Chaos may change wall-clock, never
verdicts.

Everything is reproducible from one ``ChaosPlan(seed=...)``: rerunning
a failing seed replays the same fault schedule (the per-connection RNG
streams are keyed by seed, connection index and direction — never by
``hash()`` or wall-clock).
"""

import json
import multiprocessing
import os
import socket
import time

import pytest

from repro.core import UpecMethodology, UpecScenario
from repro.dist import Broker, RemotePool, obligation_to_wire
from repro.dist.chaos import ChaosPlan, ChaosProxy
from repro.dist.protocol import Connection, ProtocolError, frame_message
from repro.engine import ProofEngine
from repro.engine.obligation import ProofObligation, solve_obligation
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

# Chaos workers use the spawn context: forked children inherit the
# broker's *listening* socket fd, which keeps the port bound after
# ``broker.stop()`` and breaks the soak's same-port cold restart with
# EADDRINUSE.  Spawned (fork+exec) children start with a clean fd table,
# like real worker processes.
_MP = multiprocessing.get_context("spawn")

VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")
SCENARIO = UpecScenario(secret_in_cache=True)

#: The one seed the soak runs under in CI; any seed must pass — when a
#: rotated nightly seed fails, pin it here while fixing the bug.
SOAK_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20190325"))


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _chaos_worker_main(address, solve_delay=0.0):
    """Subprocess body for workers that must survive an aggressive chaos
    schedule: a generous reconnect budget (every reset burns one), and an
    optional slow-down so kills reliably land mid-obligation."""
    import repro.dist.worker as worker_mod

    if solve_delay:
        pure = solve_obligation

        def delayed(obligation, simp_cache=None, **kwargs):
            time.sleep(solve_delay)
            return pure(obligation, simp_cache=simp_cache, **kwargs)

        worker_mod.solve_obligation = delayed
    worker_mod.run_worker(address, poll_interval=0.01, max_retries=100,
                          retry_delay=0.1, stable_after=0.2)


def _spawn_chaos_worker(address, solve_delay=0.0):
    process = _MP.Process(target=_chaos_worker_main, args=(address,),
                          kwargs={"solve_delay": solve_delay}, daemon=True)
    process.start()
    return process


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _methodology_signature(result):
    return (
        result.verdict,
        result.k,
        result.iterations,
        list(result.removed_regs),
        [alert.to_dict() for alert in result.p_alerts],
        result.l_alert.to_dict() if result.l_alert is not None else None,
    )


def _run_methodology(variant, engine, k=2):
    soc = build_soc(getattr(SocConfig, variant)(**FORMAL_CONFIG_KWARGS))
    return UpecMethodology(soc, SCENARIO, engine=engine).run(k=k)


def _toy_obligations(count=4):
    obligations = []
    for i in range(count):
        obligations.append(ProofObligation(
            name=f"toy{i}",
            nvars=4 + i,
            clauses=[[1, 2], [-1, 3], [-2, -3], [4 + i]],
            assumptions=[1] if i % 2 else [-1],
        ))
    return obligations


# ----------------------------------------------------------------------
# ChaosPlan: reproducibility
# ----------------------------------------------------------------------
def test_plan_same_seed_same_schedule():
    """The whole point: one seed fully determines the fault schedule —
    per-frame faults on every connection stream AND the process-level
    fault steps."""
    kwargs = dict(reset_rate=0.1, stall_rate=0.2, truncate_rate=0.1,
                  duplicate_rate=0.2, bitflip_rate=0.2)
    a, b = ChaosPlan(seed=99, **kwargs), ChaosPlan(seed=99, **kwargs)
    for conn_index in range(3):
        for direction in ("up", "down"):
            sa = a.connection_stream(conn_index, direction)
            sb = b.connection_stream(conn_index, direction)
            assert [sa.next_fault(64) for _ in range(50)] == \
                [sb.next_fault(64) for _ in range(50)]
    assert a.process_faults("kill", 3, 20) == b.process_faults("kill", 3, 20)
    # Different seeds, different schedules (overwhelmingly likely with
    # 300 draws; a collision would mean the seed is ignored).
    c = ChaosPlan(seed=100, **kwargs)
    diverged = False
    for i in range(3):
        sa = a.connection_stream(i, "up")
        sc = c.connection_stream(i, "up")
        if [sa.next_fault(64) for _ in range(50)] != \
                [sc.next_fault(64) for _ in range(50)]:
            diverged = True
    assert diverged


def test_plan_streams_are_independent_per_connection():
    """Faults on connection 0 must not shift connection 1's schedule —
    otherwise unrelated traffic would make runs non-reproducible."""
    plan = ChaosPlan(seed=5, bitflip_rate=0.3)
    baseline = ChaosPlan(seed=5, bitflip_rate=0.3).connection_stream(1, "up")
    s1_alone = [baseline.next_fault(64) for _ in range(20)]
    # Draw heavily from stream 0 first; stream 1 must be unaffected.
    s0 = plan.connection_stream(0, "up")
    for _ in range(500):
        s0.next_fault(64)
    s1 = plan.connection_stream(1, "up")
    assert [s1.next_fault(64) for _ in range(20)] == s1_alone


def test_plan_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
    monkeypatch.setenv("REPRO_CHAOS_BITFLIP", "0.25")
    monkeypatch.setenv("REPRO_CHAOS_STALL", "0.5")
    monkeypatch.setenv("REPRO_CHAOS_STALL_S", "0.01")
    plan = ChaosPlan.from_env()
    assert plan.seed == 42
    assert plan.bitflip_rate == 0.25
    assert plan.stall_rate == 0.5
    assert plan.stall_max_s == 0.01
    assert plan.reset_rate == 0.0
    # An explicit seed argument beats the environment.
    assert ChaosPlan.from_env(seed=7).seed == 7
    # Garbage values fall back instead of crashing the proxy.
    monkeypatch.setenv("REPRO_CHAOS_BITFLIP", "lots")
    assert ChaosPlan.from_env().bitflip_rate == 0.0


# ----------------------------------------------------------------------
# Frame integrity (the hardening the bitflip fault exercises)
# ----------------------------------------------------------------------
def test_corrupt_frame_rejected_by_checksum():
    """A payload bit-flip must surface as a ProtocolError before the
    frame is ever deserialized — not as a JSON error, and never as a
    silently different message."""
    a, b = socket.socketpair()
    try:
        frame = bytearray(frame_message({"type": "pull", "gossip": True}))
        frame[-3] ^= 0x10
        a.sendall(bytes(frame))
        with pytest.raises(ProtocolError, match="checksum"):
            Connection(b).recv()
    finally:
        a.close()
        b.close()


def test_intact_frames_roundtrip_through_checksum():
    a, b = socket.socketpair()
    try:
        message = {"type": "result", "seq": 3, "verdict": {"status": "sat"}}
        a.sendall(frame_message(message))
        assert Connection(b).recv() == message
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# Proxy behaviour
# ----------------------------------------------------------------------
def test_zero_rate_proxy_is_transparent():
    """With all rates at zero the proxy is a pure frame relay: a batch
    solved through it matches a direct solve bit for bit."""
    broker = Broker(port=0, heartbeat_timeout=10.0).start()
    proxy = ChaosProxy(("127.0.0.1", 0), ("127.0.0.1", broker.port),
                       plan=ChaosPlan(seed=1)).start()
    worker = _spawn_chaos_worker(proxy.address)
    client = None
    try:
        obligations = _toy_obligations(4)
        client = RemotePool(proxy.address)
        results = client.solve_ordered(obligations)
        expected = [solve_obligation(ob) for ob in obligations]
        assert [v.status for v in results] == \
            [v.status for v in expected]
        assert [v.fingerprint for v in results] == \
            [v.fingerprint for v in expected]
        stats = proxy.stats()
        assert stats["frames"] > 0
        assert all(count == 0 for count in stats["faults"].values())
    finally:
        if client is not None:
            client.close()
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)
        proxy.stop()
        broker.stop()


def test_solves_survive_aggressive_frame_faults():
    """Bit-flips, duplicates, stalls and resets on every link: the CRC
    layer turns corruption into recycled connections, the broker
    requeues, the client resubmits — verdicts still exact."""
    broker = Broker(port=0, heartbeat_timeout=10.0).start()
    plan = ChaosPlan(seed=SOAK_SEED, bitflip_rate=0.06,
                     duplicate_rate=0.08, stall_rate=0.05,
                     stall_max_s=0.02, reset_rate=0.02)
    proxy = ChaosProxy(("127.0.0.1", 0), ("127.0.0.1", broker.port),
                       plan=plan).start()
    worker = _spawn_chaos_worker(proxy.address)
    client = None
    try:
        obligations = _toy_obligations(8)
        client = RemotePool(proxy.address)
        results = client.solve_ordered(obligations)
        expected = [solve_obligation(ob) for ob in obligations]
        assert [v.status for v in results] == \
            [v.status for v in expected]
    finally:
        if client is not None:
            client.close()
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)
        proxy.stop()
        broker.stop()


# ----------------------------------------------------------------------
# The soak differential (tentpole acceptance)
# ----------------------------------------------------------------------
def test_chaos_soak_methodology_matches_sequential(tmp_path):
    """Four-variant methodology through the chaos proxy — frame faults
    on every connection, a worker SIGKILL, and one cold broker restart,
    all scheduled by a single seed — must produce alert signatures
    bit-identical to the sequential oracle."""
    plan = ChaosPlan(seed=SOAK_SEED, bitflip_rate=0.01,
                     duplicate_rate=0.02, stall_rate=0.03,
                     stall_max_s=0.02, truncate_rate=0.005,
                     reset_rate=0.005)
    # The process-fault schedule comes from the same seed: which variant
    # index gets the worker kill, and which gets the broker restart.
    kill_step = plan.process_faults("worker-kill", 1, len(VARIANTS))[0]
    restart_step = plan.process_faults("broker-restart", 1,
                                       len(VARIANTS))[0]
    broker = Broker(port=0, heartbeat_timeout=3.0,
                    cache_dir=str(tmp_path / "broker")).start()
    broker_port = broker.port
    proxy = ChaosProxy(("127.0.0.1", 0), ("127.0.0.1", broker_port),
                       plan=plan).start()
    workers = [_spawn_chaos_worker(proxy.address, solve_delay=0.01)
               for _ in range(2)]
    try:
        for step, variant in enumerate(VARIANTS):
            if step == kill_step:
                workers[0].kill()
                workers[0].join(timeout=5)
                workers[0] = _spawn_chaos_worker(proxy.address,
                                                 solve_delay=0.01)
            if step == restart_step:
                # Cold restart on the same port: clients and workers
                # redial through the proxy; the durable journals adopt
                # whatever was in flight.
                broker.stop()
                broker = Broker(port=broker_port, heartbeat_timeout=3.0,
                                cache_dir=str(tmp_path / "broker")).start()
            sequential = _run_methodology(variant,
                                          engine=ProofEngine(jobs=1))
            engine = None
            try:
                from repro.dist.remote import RemoteEngine

                engine = RemoteEngine(proxy.address)
                chaotic = _run_methodology(variant, engine=engine)
            finally:
                if engine is not None:
                    engine.close()
            assert _methodology_signature(sequential) == \
                _methodology_signature(chaotic), \
                (variant, plan.seed)
        # The soak must actually have exercised the fault injector.
        stats = proxy.stats()
        assert stats["frames"] > 100
        assert sum(stats["faults"].values()) > 0, \
            "chaos plan injected nothing — rates too low for this seed"
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)
        proxy.stop()
        broker.stop()


# ----------------------------------------------------------------------
# Poison quarantine across a durable restart (acceptance)
# ----------------------------------------------------------------------
def test_poison_quarantine_survives_durable_restart(tmp_path):
    """An obligation that killed max_attempts distinct workers is
    quarantined; a restarted durable broker rehydrates the quarantine
    and answers resubmissions instantly — no worker needs to die for it
    again."""
    store = str(tmp_path / "store")
    broker = Broker(port=0, heartbeat_timeout=10.0, max_attempts=2,
                    cache_dir=store).start()
    procs = []
    client = None
    try:
        client = RemotePool(broker.address)
        obligations = _toy_obligations(1)
        outcome = {}

        import threading

        def run():
            outcome["results"] = client.solve_ordered(obligations)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(2):
            victim = _spawn_chaos_worker(broker.address, solve_delay=60.0)
            procs.append(victim)
            assert _wait_for(lambda: any(
                w["inflight"] for w in broker.snapshot()["workers"]
            ), timeout=60)
            victim.kill()
            victim.join(timeout=5)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome["results"][0].status == "poisoned"
        client.close()
        client = None
        assert os.path.exists(os.path.join(store, "_poison.json"))
        broker.stop()
        # Restart from the same durable store: quarantine rehydrated,
        # resubmission answered with no workers attached at all.
        broker = Broker(port=0, heartbeat_timeout=10.0,
                        cache_dir=store).start()
        assert broker.snapshot()["poisoned"] == 1
        client = RemotePool(broker.address)
        revived = client.solve_ordered(obligations)
        assert revived[0].status == "poisoned"
        assert revived[0].failures
    finally:
        if client is not None:
            client.close()
        for process in procs:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        broker.stop()
