"""Tests for reporting helpers, the cache monitor and DIMACS I/O."""

import io

import pytest

from repro.core import UpecModel, UpecScenario, cache_protocol_ok
from repro.core.report import format_kv_block, format_table, paper_vs_measured
from repro.errors import FormalError
from repro.formal import read_dimacs, write_dimacs
from repro.sim import Simulator
from repro.soc import SocConfig, build_soc
from repro.soc import isa
from repro.soc.config import FORMAL_CONFIG_KWARGS
from repro.soc.simulator import SocSim

SOC = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table():
    text = format_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "333" in lines[2] or "333" in lines[3]


def test_format_kv_block():
    text = format_kv_block("Title", {"key": 1, "longer_key": "v"})
    assert "Title" in text
    assert "longer_key" in text


def test_paper_vs_measured():
    text = paper_vs_measured(
        "T", [{"metric": "m", "paper": "1", "measured": "2"}]
    )
    assert "metric" in text and "T" in text


# ----------------------------------------------------------------------
# Cache protocol monitor (Constraint 2)
# ----------------------------------------------------------------------
def test_monitor_holds_in_simulation():
    """Every reachable state satisfies the monitor (it only excludes
    unreachable controller states)."""
    program = [i.encode() for i in [
        isa.li(1, 9), isa.li(2, 3), isa.sb(1, 0, 2), isa.lb(3, 0, 2),
        isa.lb(4, 0, 1), isa.jal(0, 0),
    ]]
    sim = SocSim(SOC, program)
    ok_expr = cache_protocol_ok(SOC)
    for _ in range(60):
        assert sim.sim.eval(ok_expr) == 1
        sim.step()


def test_monitor_rejects_unreachable_counter_state():
    sim = SocSim(SOC, [isa.jal(0, 0).encode()])
    ok_expr = cache_protocol_ok(SOC)
    # Largest representable counter value exceeds the architected maximum.
    ctr_width = SOC.cache.wpend_ctr.width
    unreachable = (1 << ctr_width) - 1
    assert unreachable > SOC.config.write_pending_cycles - 1
    sim.sim.poke("dc_wpend_ctr", unreachable)
    sim.sim.poke("dc_wpend_v", 1)
    assert sim.sim.eval(ok_expr) == 0


def test_monitor_rejects_idle_countdown():
    sim = SocSim(SOC, [isa.jal(0, 0).encode()])
    ok_expr = cache_protocol_ok(SOC)
    sim.sim.poke("dc_refilling", 0)
    sim.sim.poke("dc_rf_ctr", 1)
    assert sim.sim.eval(ok_expr) == 0


def test_constraint_expressions_hold_in_simulation():
    """Constraints 1 and 3 hold along a legal user-mode run."""
    from repro.soc.programs import build_image

    soc_big = build_soc(SocConfig.secure())  # default imem fits the image
    user = [isa.li(3, 2), isa.lb(4, 0, 3), isa.jal(0, 0)]
    # prime_secret=False: the boot-time machine-mode priming load is
    # exactly the kind of kernel access Constraint 3 excludes.
    image = build_image(soc_big.config, user, prime_secret=False)
    sim = SocSim(soc_big, image.words)
    c1 = soc_big.no_ongoing_protected_access()
    c3 = soc_big.secure_system_software()
    protected = soc_big.secret_data_protected()
    saw_protected = False
    for _ in range(80):
        assert sim.sim.eval(c1) == 1
        assert sim.sim.eval(c3) == 1
        if sim.sim.eval(protected):
            saw_protected = True
        sim.step()
    assert saw_protected  # boot establishes the protection invariant


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def test_dimacs_roundtrip():
    clauses = [[1, -2], [2, 3, -1], [-3]]
    buf = io.StringIO()
    write_dimacs(buf, 3, clauses)
    buf.seek(0)
    nvars, parsed = read_dimacs(buf)
    assert nvars == 3
    assert parsed == clauses


def test_dimacs_parse_errors():
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p qbf 1 1\n1 0\n"))
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p cnf 1 1\n2 0\n"))
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p cnf 1 1\n1\n"))
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p cnf 2 5\n1 0\n"))


def test_dimacs_comments_ignored():
    nvars, clauses = read_dimacs(
        io.StringIO("c comment\np cnf 2 1\nc another\n1 -2 0\n")
    )
    assert nvars == 2
    assert clauses == [[1, -2]]
