"""Distributed proof-service tests: protocol, fault injection, and the
distributed-equals-sequential acceptance differentials.

Workers run as forked subprocesses (so they can be SIGKILLed
mid-obligation); the broker runs in-process on an ephemeral port.  The
oracle throughout is the sequential ``jobs=1`` engine path: a
distributed run must produce bit-identical verdict/alert signatures, no
matter how many workers serve it or how many of them die mid-run.
"""

import json
import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro.core import UpecMethodology, UpecScenario
from repro.dist import (
    Broker,
    Connection,
    PROTO_VERSION,
    RemoteEngine,
    RemotePool,
    obligation_from_wire,
    obligation_to_wire,
    parse_address,
)
from repro.dist.protocol import dial
from repro.engine import ProofEngine
from repro.engine.obligation import ProofObligation, solve_obligation
from repro.errors import DistError
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

_MP = multiprocessing.get_context("fork")

VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")
SCENARIO = UpecScenario(secret_in_cache=True)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _worker_main(address, cache_dir=None, solve_delay=0.0):
    """Subprocess body: optionally slow every solve down so a test can
    reliably catch (and kill) a worker mid-obligation."""
    import repro.dist.worker as worker_mod

    if solve_delay:
        pure = solve_obligation

        def delayed(obligation, simp_cache=None):
            time.sleep(solve_delay)
            return pure(obligation, simp_cache=simp_cache)

        worker_mod.solve_obligation = delayed
    worker_mod.run_worker(address, cache_dir=cache_dir,
                          poll_interval=0.01, max_retries=3)


def _spawn_worker(address, cache_dir=None, solve_delay=0.0):
    process = _MP.Process(
        target=_worker_main,
        args=(address,),
        kwargs={"cache_dir": cache_dir, "solve_delay": solve_delay},
        daemon=True,
    )
    process.start()
    return process


@pytest.fixture
def broker():
    instance = Broker(port=0, heartbeat_timeout=10.0).start()
    procs = []
    instance.spawn = lambda **kw: procs.append(
        _spawn_worker(instance.address, **kw)) or procs[-1]
    try:
        yield instance
    finally:
        for process in procs:
            if process.is_alive():
                process.terminate()
        for process in procs:
            process.join(timeout=5)
        instance.stop()


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _toy_obligations(count=4):
    """Small satisfiable/unsatisfiable queries with distinct contents."""
    obligations = []
    for i in range(count):
        # (x1|x2) & (~x1|x3) & (~x2|~x3) with alternating assumptions;
        # the extra unit clause makes every obligation's content unique.
        obligations.append(ProofObligation(
            name=f"toy{i}",
            nvars=4 + i,
            clauses=[[1, 2], [-1, 3], [-2, -3], [4 + i]],
            assumptions=[1] if i % 2 else [-1],
        ))
    return obligations


def _methodology_signature(result):
    return (
        result.verdict,
        result.k,
        result.iterations,
        list(result.removed_regs),
        [alert.to_dict() for alert in result.p_alerts],
        result.l_alert.to_dict() if result.l_alert is not None else None,
    )


def _run_methodology(variant, engine, k=2, split=None):
    soc = build_soc(getattr(SocConfig, variant)(**FORMAL_CONFIG_KWARGS))
    return UpecMethodology(soc, SCENARIO, engine=engine,
                           split=split).run(k=k)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
def test_obligation_wire_roundtrip_preserves_fingerprint():
    obligation = ProofObligation(
        name="wire", nvars=5, clauses=[[1, -2], [3, 4, 5]],
        assumptions=[2], frozen=[1, 3], simplify=True,
        conflict_limit=123, meta={"kind": "test", "frame": 2},
        remap=[0, 7, 8, 9, 10, 11], orig_nvars=11,
    )
    wire = json.loads(json.dumps(obligation_to_wire(obligation)))
    back = obligation_from_wire(wire)
    assert back.fingerprint() == obligation.fingerprint()
    assert back.meta == obligation.meta
    assert back.conflict_limit == 123
    # Slice bookkeeping stays client-side.
    assert back.remap is None and back.orig_nvars == 0


def test_parse_address():
    assert parse_address("10.0.0.1:7769") == ("10.0.0.1", 7769)
    for bad in ("nohost", "host:port", ":123", "x:", "h:0", "h:99999",
                "h:-1"):
        with pytest.raises(DistError):
            parse_address(bad)


def test_handshake_rejects_version_mismatch(broker):
    sock = socket.create_connection(("127.0.0.1", broker.port), timeout=5)
    conn = Connection(sock)
    conn.send({"type": "hello", "proto": PROTO_VERSION + 999,
               "role": "worker", "codecs": ["json"]})
    reply = conn.recv()
    assert reply["type"] == "error"
    assert "version mismatch" in reply["reason"]
    # The broker hangs up and never registers the peer.
    assert conn.recv() is None
    assert broker.snapshot()["workers"] == []
    conn.close()


def test_handshake_rejects_unknown_role(broker):
    sock = socket.create_connection(("127.0.0.1", broker.port), timeout=5)
    conn = Connection(sock)
    conn.send({"type": "hello", "proto": PROTO_VERSION,
               "role": "observer", "codecs": ["json"]})
    reply = conn.recv()
    assert reply["type"] == "error"
    assert "role" in reply["reason"]
    conn.close()


def test_dial_reports_unreachable_broker():
    with pytest.raises(DistError, match="cannot reach broker"):
        dial(("127.0.0.1", 1), role="client", timeout=0.5)


# ----------------------------------------------------------------------
# Remote solving
# ----------------------------------------------------------------------
def test_remote_batch_matches_local_bit_for_bit(broker):
    broker.spawn()
    obligations = _toy_obligations(6)
    local = [solve_obligation(ob) for ob in obligations]
    engine = RemoteEngine(broker.address)
    try:
        remote = engine.solve_ordered(obligations)
    finally:
        engine.close()
    for mine, theirs in zip(local, remote):
        assert theirs is not None
        assert mine.status == theirs.status
        assert mine.model == theirs.model
        assert mine.fingerprint == theirs.fingerprint


def test_remote_early_cancel_stops_consumption(broker):
    broker.spawn()
    obligations = _toy_obligations(5)
    observed = []
    pool = RemotePool(broker.address)
    try:
        results = pool.solve_ordered(
            obligations,
            early_stop=lambda verdict: verdict.sat,
            on_verdict=lambda ob, v: observed.append(ob.name),
        )
    finally:
        pool.close()
    # toy0 is SAT, so order semantics cut everything after index 0.
    assert results[0] is not None and results[0].sat
    assert all(entry is None for entry in results[1:])
    assert observed[0] == "toy0"
    # The cancelled batch's queued jobs drain without dispatch.
    assert _wait_for(lambda: broker.snapshot()["queued"] == 0)


def test_remote_pool_advertises_parallel_jobs(broker):
    pool = RemotePool(broker.address)
    try:
        # Never 1: the checker layers take jobs==1 to mean in-process
        # lazy export, which would serialize a remote run.
        assert pool.jobs >= 2
    finally:
        pool.close()


def test_broker_memoizes_resubmitted_fingerprints(broker):
    broker.spawn()
    obligations = _toy_obligations(3)
    engine = RemoteEngine(broker.address)
    try:
        first = engine.solve_ordered(obligations)
        workers_solved = sum(w["solved"]
                             for w in broker.snapshot()["workers"])
        second = engine.solve_ordered(obligations)
        again = sum(w["solved"] for w in broker.snapshot()["workers"])
    finally:
        engine.close()
    assert workers_solved == 3
    assert again == workers_solved  # answered from the broker memo
    for a, b in zip(first, second):
        assert a.status == b.status and a.model == b.model


def test_gossip_reaches_late_joining_worker(broker, tmp_path):
    cache_a = str(tmp_path / "a")
    cache_b = str(tmp_path / "b")
    broker.spawn(cache_dir=cache_a)
    obligations = _toy_obligations(3)
    engine = RemoteEngine(broker.address)
    try:
        engine.solve_ordered(obligations)
    finally:
        engine.close()
    fingerprints = {ob.fingerprint() for ob in obligations}
    # A worker that joins after the fact receives the whole verdict
    # backlog piggybacked on its pulls and writes it through.
    broker.spawn(cache_dir=cache_b)
    assert _wait_for(lambda: os.path.isdir(cache_b) and fingerprints <= {
        name[:-len(".json")] for name in os.listdir(cache_b)
        if name.endswith(".json")
    }), "gossiped verdicts never reached the second worker's cache"


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_killed_worker_requeues_to_survivor(broker):
    # Worker A will sit on the first obligation "forever"; killing it
    # must requeue the in-flight job, which worker B then solves —
    # final verdicts identical to a local run.
    slow = broker.spawn(solve_delay=60.0)
    obligations = _toy_obligations(2)
    local = [solve_obligation(ob) for ob in obligations]
    engine = RemoteEngine(broker.address)
    outcome = {}

    def run():
        try:
            outcome["results"] = engine.solve_ordered(obligations)
        except Exception as exc:  # surfaced in the main thread
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        assert _wait_for(lambda: any(
            w["inflight"] for w in broker.snapshot()["workers"]
        )), "worker never picked up the obligation"
        slow.kill()
        broker.spawn()  # the survivor
        thread.join(timeout=30)
        assert not thread.is_alive(), "batch never completed after requeue"
    finally:
        engine.close()
    assert "error" not in outcome, outcome.get("error")
    for mine, theirs in zip(local, outcome["results"]):
        assert mine.status == theirs.status
        assert mine.model == theirs.model


def test_stale_heartbeat_evicts_and_requeues(tmp_path):
    # A zombie worker grabs a job and then goes silent without closing
    # its socket: only the heartbeat sweeper can reclaim the work.
    broker = Broker(port=0, heartbeat_timeout=0.6).start()
    worker = None
    zombie = None
    client = None
    try:
        zombie, welcome = dial(("127.0.0.1", broker.port), role="worker",
                               name="zombie")
        assert welcome["type"] == "welcome"
        client = RemotePool(broker.address)
        obligations = _toy_obligations(1)
        outcome = {}

        def run():
            outcome["results"] = client.solve_ordered(obligations)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        # The zombie pulls until the job lands, then never speaks again.
        deadline = time.monotonic() + 10
        got_job = False
        while time.monotonic() < deadline and not got_job:
            zombie.send({"type": "pull"})
            reply = zombie.recv()
            got_job = reply is not None and reply["type"] == "job"
            if not got_job:
                time.sleep(0.02)
        assert got_job, "zombie never received the job"
        # Eviction: the sweeper notices the silence, drops the zombie
        # and requeues; a healthy worker then finishes the batch.
        assert _wait_for(
            lambda: not any(w["name"] == "zombie"
                            for w in broker.snapshot()["workers"]),
            timeout=10,
        ), "stale worker was never evicted"
        worker = _spawn_worker(broker.address)
        thread.join(timeout=30)
        assert not thread.is_alive(), "job lost with the zombie"
        verdict = outcome["results"][0]
        assert verdict.status == solve_obligation(obligations[0]).status
    finally:
        if client is not None:
            client.close()
        if zombie is not None:
            zombie.close()
        if worker is not None and worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)
        broker.stop()


def test_job_fails_loudly_after_exhausting_workers():
    # Every worker that touches the job dies: after max_attempts the
    # broker reports failure instead of spinning forever.
    broker = Broker(port=0, heartbeat_timeout=10.0, max_attempts=2).start()
    procs = []
    client = None
    try:
        client = RemotePool(broker.address)
        obligations = _toy_obligations(1)
        outcome = {}

        def run():
            try:
                outcome["results"] = client.solve_ordered(obligations)
            except DistError as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(2):
            victim = _spawn_worker(broker.address, solve_delay=60.0)
            procs.append(victim)
            assert _wait_for(lambda: any(
                w["inflight"] for w in broker.snapshot()["workers"]
            ), timeout=60)
            victim.kill()
            victim.join(timeout=5)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert "error" in outcome
        assert "gave up" in str(outcome["error"])
    finally:
        if client is not None:
            client.close()
        for process in procs:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        broker.stop()


# ----------------------------------------------------------------------
# Acceptance: distributed methodology == sequential, on all variants,
# including across a mid-run worker kill
# ----------------------------------------------------------------------
def test_methodology_distributed_matches_sequential_all_variants(broker):
    broker.spawn()
    broker.spawn()
    for variant in VARIANTS:
        sequential = _run_methodology(variant, engine=ProofEngine(jobs=1))
        engine = RemoteEngine(broker.address)
        try:
            distributed = _run_methodology(variant, engine=engine)
        finally:
            engine.close()
        assert _methodology_signature(sequential) == \
            _methodology_signature(distributed), variant


def test_methodology_survives_worker_kill_mid_run(broker):
    victim = broker.spawn(solve_delay=0.05)
    broker.spawn(solve_delay=0.05)
    sequential = _run_methodology("orc", engine=ProofEngine(jobs=1))
    engine = RemoteEngine(broker.address)
    outcome = {}

    def run():
        try:
            outcome["result"] = _run_methodology("orc", engine=engine)
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        # Let the run make some progress, then kill one worker cold.
        assert _wait_for(lambda: broker.snapshot()["memo"] >= 1,
                         timeout=60), "distributed run never progressed"
        victim.kill()
        thread.join(timeout=300)
        assert not thread.is_alive(), "methodology hung after worker kill"
    finally:
        engine.close()
    assert "error" not in outcome, outcome.get("error")
    assert _methodology_signature(sequential) == \
        _methodology_signature(outcome["result"])


def test_methodology_split_distributed_matches_sequential_with_worker_kill(
        broker):
    """Intra-frame splitting over the distributed service: a split run
    sharded across two workers — one SIGKILLed mid-run — must match both
    the sequential split run and the sequential *unsplit* oracle."""
    victim = broker.spawn(solve_delay=0.05)
    broker.spawn(solve_delay=0.05)
    unsplit = _run_methodology("orc", engine=ProofEngine(jobs=1))
    sequential = _run_methodology("orc", engine=ProofEngine(jobs=1),
                                  split=True)
    assert _methodology_signature(unsplit) == \
        _methodology_signature(sequential)
    engine = RemoteEngine(broker.address)
    outcome = {}

    def run():
        try:
            outcome["result"] = _run_methodology("orc", engine=engine,
                                                 split=True)
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        assert _wait_for(lambda: broker.snapshot()["memo"] >= 1,
                         timeout=60), "distributed run never progressed"
        victim.kill()
        thread.join(timeout=300)
        assert not thread.is_alive(), "split methodology hung after kill"
    finally:
        engine.close()
    assert "error" not in outcome, outcome.get("error")
    assert _methodology_signature(unsplit) == \
        _methodology_signature(outcome["result"])


# ----------------------------------------------------------------------
# Gossip backlog management
# ----------------------------------------------------------------------
def test_gossip_backlog_pages_and_trims():
    from repro.dist import broker as broker_mod

    instance = Broker(port=0)
    # Simulate a long-lived broker: more backlog than the retention cap.
    total = broker_mod._GOSSIP_KEEP + 100
    for i in range(total):
        instance._gossip.append((f"fp{i}", {"status": "unsat"}))
        overflow = len(instance._gossip) - broker_mod._GOSSIP_KEEP
        if overflow > 0:
            del instance._gossip[:overflow]
            instance._gossip_base += overflow
    assert len(instance._gossip) == broker_mod._GOSSIP_KEEP
    assert instance._gossip_base == 100
    worker = broker_mod._Worker("w", "w", conn=None)
    # A fresh worker pages through the retained backlog, one bounded
    # chunk per pull, never one giant frame.
    seen = []
    while True:
        page = instance._gossip_page(worker)
        if not page:
            break
        assert len(page) <= broker_mod._GOSSIP_PAGE
        seen.extend(entry["fingerprint"] for entry in page)
    assert seen[0] == "fp100"          # trimmed entries are gone
    assert seen[-1] == f"fp{total - 1}"
    assert len(seen) == broker_mod._GOSSIP_KEEP
    # A worker whose position predates the trim resumes at the base.
    stale = broker_mod._Worker("s", "s", conn=None)
    stale.gossip_pos = 3
    first = instance._gossip_page(stale)
    assert first[0]["fingerprint"] == "fp100"


def test_dispatch_refuses_work_for_evicted_worker():
    """A pull racing the heartbeat sweep must not strand the job on an
    unregistered worker's inflight set (which nothing would requeue)."""
    from repro.dist import broker as broker_mod

    instance = Broker(port=0)
    ghost = broker_mod._Worker("worker-ghost", "ghost", conn=None)
    batch = broker_mod._Batch("b1", conn=None)
    job = broker_mod._Job("b1", 0, {"name": "j"}, "fp")
    batch.jobs[0] = job
    instance._batches["b1"] = batch
    instance._queue.append(job)
    # ghost was never (or is no longer) in instance._workers: evicted.
    reply = instance._dispatch(ghost)
    assert reply["type"] == "idle"
    assert not ghost.inflight
    assert list(instance._queue) == [job]  # still dispatchable
    # Once registered, the same pull hands the job out normally.
    instance._workers["worker-ghost"] = ghost
    reply = instance._dispatch(ghost)
    assert reply["type"] == "job" and reply["seq"] == 0
    assert (("b1", 0) in ghost.inflight)


def test_dial_times_out_on_silent_peer():
    """A peer that accepts TCP but never answers the handshake must
    fail within the dial timeout, not hang."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    try:
        start = time.monotonic()
        with pytest.raises(DistError, match="handshake"):
            dial(("127.0.0.1", port), role="client", timeout=0.3)
        assert time.monotonic() - start < 5.0
    finally:
        listener.close()


def test_silent_prehandshake_connection_is_reaped():
    """A peer that connects and never says hello must not pin a broker
    thread/fd forever — the handshake deadline closes it."""
    instance = Broker(port=0, handshake_timeout=0.3).start()
    try:
        sock = socket.create_connection(("127.0.0.1", instance.port),
                                        timeout=5)
        sock.settimeout(5)
        start = time.monotonic()
        # The broker hangs up without a word once the deadline passes.
        assert sock.recv(1) == b""
        assert time.monotonic() - start < 4.0
        sock.close()
    finally:
        instance.stop()
