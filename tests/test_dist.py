"""Distributed proof-service tests: protocol, fault injection, and the
distributed-equals-sequential acceptance differentials.

Workers run as forked subprocesses (so they can be SIGKILLed
mid-obligation); the broker runs in-process on an ephemeral port.  The
oracle throughout is the sequential ``jobs=1`` engine path: a
distributed run must produce bit-identical verdict/alert signatures, no
matter how many workers serve it or how many of them die mid-run.
"""

import json
import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro.core import UpecMethodology, UpecScenario
from repro.dist import (
    Broker,
    Connection,
    PROTO_VERSION,
    RemoteEngine,
    RemotePool,
    obligation_from_wire,
    obligation_to_wire,
    parse_address,
)
from repro.dist.protocol import dial
from repro.engine import ProofEngine
from repro.engine.obligation import ProofObligation, solve_obligation
from repro.errors import DistError
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

_MP = multiprocessing.get_context("fork")

VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")
SCENARIO = UpecScenario(secret_in_cache=True)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _worker_main(address, cache_dir=None, solve_delay=0.0):
    """Subprocess body: optionally slow every solve down so a test can
    reliably catch (and kill) a worker mid-obligation."""
    import repro.dist.worker as worker_mod

    if solve_delay:
        pure = solve_obligation

        def delayed(obligation, simp_cache=None, **kwargs):
            time.sleep(solve_delay)
            return pure(obligation, simp_cache=simp_cache, **kwargs)

        worker_mod.solve_obligation = delayed
    worker_mod.run_worker(address, cache_dir=cache_dir,
                          poll_interval=0.01, max_retries=3)


def _crashing_worker_main(address):
    """Subprocess body whose every solve raises — the worker must survive
    and report structured failures (poison-quarantine fodder)."""
    import repro.dist.worker as worker_mod

    def broken(obligation, simp_cache=None, **kwargs):
        raise RuntimeError("deliberately broken solve")

    worker_mod.solve_obligation = broken
    worker_mod.run_worker(address, poll_interval=0.01, max_retries=3)


def _spawn_worker(address, cache_dir=None, solve_delay=0.0):
    process = _MP.Process(
        target=_worker_main,
        args=(address,),
        kwargs={"cache_dir": cache_dir, "solve_delay": solve_delay},
        daemon=True,
    )
    process.start()
    return process


@pytest.fixture
def broker():
    instance = Broker(port=0, heartbeat_timeout=10.0).start()
    procs = []
    instance.spawn = lambda **kw: procs.append(
        _spawn_worker(instance.address, **kw)) or procs[-1]
    try:
        yield instance
    finally:
        for process in procs:
            if process.is_alive():
                process.terminate()
        for process in procs:
            process.join(timeout=5)
        instance.stop()


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _toy_obligations(count=4):
    """Small satisfiable/unsatisfiable queries with distinct contents."""
    obligations = []
    for i in range(count):
        # (x1|x2) & (~x1|x3) & (~x2|~x3) with alternating assumptions;
        # the extra unit clause makes every obligation's content unique.
        obligations.append(ProofObligation(
            name=f"toy{i}",
            nvars=4 + i,
            clauses=[[1, 2], [-1, 3], [-2, -3], [4 + i]],
            assumptions=[1] if i % 2 else [-1],
        ))
    return obligations


def _methodology_signature(result):
    return (
        result.verdict,
        result.k,
        result.iterations,
        list(result.removed_regs),
        [alert.to_dict() for alert in result.p_alerts],
        result.l_alert.to_dict() if result.l_alert is not None else None,
    )


def _run_methodology(variant, engine, k=2, split=None):
    soc = build_soc(getattr(SocConfig, variant)(**FORMAL_CONFIG_KWARGS))
    return UpecMethodology(soc, SCENARIO, engine=engine,
                           split=split).run(k=k)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
def test_obligation_wire_roundtrip_preserves_fingerprint():
    obligation = ProofObligation(
        name="wire", nvars=5, clauses=[[1, -2], [3, 4, 5]],
        assumptions=[2], frozen=[1, 3], simplify=True,
        conflict_limit=123, meta={"kind": "test", "frame": 2},
        remap=[0, 7, 8, 9, 10, 11], orig_nvars=11,
    )
    wire = json.loads(json.dumps(obligation_to_wire(obligation)))
    back = obligation_from_wire(wire)
    assert back.fingerprint() == obligation.fingerprint()
    assert back.meta == obligation.meta
    assert back.conflict_limit == 123
    # Slice bookkeeping stays client-side.
    assert back.remap is None and back.orig_nvars == 0


def test_parse_address():
    assert parse_address("10.0.0.1:7769") == ("10.0.0.1", 7769)
    for bad in ("nohost", "host:port", ":123", "x:", "h:0", "h:99999",
                "h:-1"):
        with pytest.raises(DistError):
            parse_address(bad)


def test_handshake_rejects_version_mismatch(broker):
    sock = socket.create_connection(("127.0.0.1", broker.port), timeout=5)
    conn = Connection(sock)
    conn.send({"type": "hello", "proto": PROTO_VERSION + 999,
               "role": "worker", "codecs": ["json"]})
    reply = conn.recv()
    assert reply["type"] == "error"
    assert "version mismatch" in reply["reason"]
    # The broker hangs up and never registers the peer.
    assert conn.recv() is None
    assert broker.snapshot()["workers"] == []
    conn.close()


def test_handshake_rejects_unknown_role(broker):
    sock = socket.create_connection(("127.0.0.1", broker.port), timeout=5)
    conn = Connection(sock)
    conn.send({"type": "hello", "proto": PROTO_VERSION,
               "role": "observer", "codecs": ["json"]})
    reply = conn.recv()
    assert reply["type"] == "error"
    assert "role" in reply["reason"]
    conn.close()


def test_dial_reports_unreachable_broker():
    with pytest.raises(DistError, match="cannot reach broker"):
        dial(("127.0.0.1", 1), role="client", timeout=0.5)


# ----------------------------------------------------------------------
# Remote solving
# ----------------------------------------------------------------------
def test_remote_batch_matches_local_bit_for_bit(broker):
    broker.spawn()
    obligations = _toy_obligations(6)
    local = [solve_obligation(ob) for ob in obligations]
    engine = RemoteEngine(broker.address)
    try:
        remote = engine.solve_ordered(obligations)
    finally:
        engine.close()
    for mine, theirs in zip(local, remote):
        assert theirs is not None
        assert mine.status == theirs.status
        assert mine.model == theirs.model
        assert mine.fingerprint == theirs.fingerprint


def test_remote_early_cancel_stops_consumption(broker):
    broker.spawn()
    obligations = _toy_obligations(5)
    observed = []
    pool = RemotePool(broker.address)
    try:
        results = pool.solve_ordered(
            obligations,
            early_stop=lambda verdict: verdict.sat,
            on_verdict=lambda ob, v: observed.append(ob.name),
        )
    finally:
        pool.close()
    # toy0 is SAT, so order semantics cut everything after index 0.
    assert results[0] is not None and results[0].sat
    assert all(entry is None for entry in results[1:])
    assert observed[0] == "toy0"
    # The cancelled batch's queued jobs drain without dispatch.
    assert _wait_for(lambda: broker.snapshot()["queued"] == 0)


def test_partial_consume_survives_connection_death(broker):
    """A connection that dies right after a verdict was consumed must
    not strand the batch: the retry resyncs its progress from the
    result list, resubmits only the missing seqs, and drains.  (The
    losing-progress variant of this bug left the client waiting forever
    on verdicts the broker had already delivered and retired.)"""
    broker.spawn()
    obligations = _toy_obligations(2)
    pool = RemotePool(broker.address)
    try:
        pool.solve_ordered(obligations)  # prime the broker memo
        orig_recv = RemotePool._recv.__get__(pool)
        state = {"verdicts": 0, "cut": False}

        def recv_then_die(conn):
            if state["verdicts"] == 1 and not state["cut"]:
                state["cut"] = True
                raise DistError("injected connection death")
            message = orig_recv(conn)
            if message.get("type") == "verdict":
                state["verdicts"] += 1
            return message

        pool._recv = recv_then_die
        done = {}

        def run():
            done["results"] = pool.solve_ordered(obligations)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), \
            "solve_ordered deadlocked after a mid-consume connection death"
    finally:
        pool.close()
    assert state["cut"], "the injected death never fired"
    local = [solve_obligation(ob) for ob in obligations]
    for mine, theirs in zip(local, done["results"]):
        assert theirs is not None
        assert mine.status == theirs.status
        assert mine.fingerprint == theirs.fingerprint


def test_early_stop_survives_cancel_send_death(broker):
    """A connection that dies on the early-stop cancel send must not
    lose the stop decision: the retry re-derives ``stopped`` from the
    consumed verdicts and returns without solving past the stop point
    (and without deadlocking on the resubmitted duplicate seqs)."""
    broker.spawn()
    obligations = _toy_obligations(3)
    pool = RemotePool(broker.address)
    try:
        pool.solve_ordered(obligations)  # prime the broker memo
        orig_send = RemotePool._send.__get__(pool)
        state = {"cut": False}

        def cancel_send_dies(conn, message):
            if message.get("type") == "cancel" and not state["cut"]:
                state["cut"] = True
                raise DistError("injected connection death")
            return orig_send(conn, message)

        pool._send = cancel_send_dies
        done = {}

        def run():
            done["results"] = pool.solve_ordered(
                obligations, early_stop=lambda verdict: verdict.sat)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), \
            "solve_ordered deadlocked after the cancel send died"
    finally:
        pool.close()
    assert state["cut"], "the injected death never fired"
    results = done["results"]
    # toy0 is SAT: order semantics stop there, even across the death.
    assert results[0] is not None and results[0].sat
    assert all(entry is None for entry in results[1:])


def test_remote_pool_advertises_parallel_jobs(broker):
    pool = RemotePool(broker.address)
    try:
        # Never 1: the checker layers take jobs==1 to mean in-process
        # lazy export, which would serialize a remote run.
        assert pool.jobs >= 2
    finally:
        pool.close()


def test_broker_memoizes_resubmitted_fingerprints(broker):
    broker.spawn()
    obligations = _toy_obligations(3)
    engine = RemoteEngine(broker.address)
    try:
        first = engine.solve_ordered(obligations)
        workers_solved = sum(w["solved"]
                             for w in broker.snapshot()["workers"])
        second = engine.solve_ordered(obligations)
        again = sum(w["solved"] for w in broker.snapshot()["workers"])
    finally:
        engine.close()
    assert workers_solved == 3
    assert again == workers_solved  # answered from the broker memo
    for a, b in zip(first, second):
        assert a.status == b.status and a.model == b.model


def test_gossip_reaches_late_joining_worker(broker, tmp_path):
    cache_a = str(tmp_path / "a")
    cache_b = str(tmp_path / "b")
    broker.spawn(cache_dir=cache_a)
    obligations = _toy_obligations(3)
    engine = RemoteEngine(broker.address)
    try:
        engine.solve_ordered(obligations)
    finally:
        engine.close()
    fingerprints = {ob.fingerprint() for ob in obligations}
    # A worker that joins after the fact receives the whole verdict
    # backlog piggybacked on its pulls and writes it through.
    broker.spawn(cache_dir=cache_b)
    assert _wait_for(lambda: os.path.isdir(cache_b) and fingerprints <= {
        name[:-len(".json")] for name in os.listdir(cache_b)
        if name.endswith(".json")
    }), "gossiped verdicts never reached the second worker's cache"


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_killed_worker_requeues_to_survivor(broker):
    # Worker A will sit on the first obligation "forever"; killing it
    # must requeue the in-flight job, which worker B then solves —
    # final verdicts identical to a local run.
    slow = broker.spawn(solve_delay=60.0)
    obligations = _toy_obligations(2)
    local = [solve_obligation(ob) for ob in obligations]
    engine = RemoteEngine(broker.address)
    outcome = {}

    def run():
        try:
            outcome["results"] = engine.solve_ordered(obligations)
        except Exception as exc:  # surfaced in the main thread
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        assert _wait_for(lambda: any(
            w["inflight"] for w in broker.snapshot()["workers"]
        )), "worker never picked up the obligation"
        slow.kill()
        broker.spawn()  # the survivor
        thread.join(timeout=30)
        assert not thread.is_alive(), "batch never completed after requeue"
    finally:
        engine.close()
    assert "error" not in outcome, outcome.get("error")
    for mine, theirs in zip(local, outcome["results"]):
        assert mine.status == theirs.status
        assert mine.model == theirs.model


def test_stale_heartbeat_evicts_and_requeues(tmp_path):
    # A zombie worker grabs a job and then goes silent without closing
    # its socket: only the heartbeat sweeper can reclaim the work.
    broker = Broker(port=0, heartbeat_timeout=0.6).start()
    worker = None
    zombie = None
    client = None
    try:
        zombie, welcome = dial(("127.0.0.1", broker.port), role="worker",
                               name="zombie")
        assert welcome["type"] == "welcome"
        client = RemotePool(broker.address)
        obligations = _toy_obligations(1)
        outcome = {}

        def run():
            outcome["results"] = client.solve_ordered(obligations)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        # The zombie pulls until the job lands, then never speaks again.
        deadline = time.monotonic() + 10
        got_job = False
        while time.monotonic() < deadline and not got_job:
            zombie.send({"type": "pull"})
            reply = zombie.recv()
            got_job = reply is not None and reply["type"] == "job"
            if not got_job:
                time.sleep(0.02)
        assert got_job, "zombie never received the job"
        # Eviction: the sweeper notices the silence, drops the zombie
        # and requeues; a healthy worker then finishes the batch.
        assert _wait_for(
            lambda: not any(w["name"] == "zombie"
                            for w in broker.snapshot()["workers"]),
            timeout=10,
        ), "stale worker was never evicted"
        worker = _spawn_worker(broker.address)
        thread.join(timeout=30)
        assert not thread.is_alive(), "job lost with the zombie"
        verdict = outcome["results"][0]
        assert verdict.status == solve_obligation(obligations[0]).status
    finally:
        if client is not None:
            client.close()
        if zombie is not None:
            zombie.close()
        if worker is not None and worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)
        broker.stop()


def test_poison_obligation_quarantined_after_worker_deaths():
    # Every worker that touches the job dies: after max_attempts distinct
    # workers the broker pulls the obligation from rotation and delivers
    # a structured "poisoned" verdict carrying their failure reports —
    # instead of burning through the fleet forever (or erroring the
    # whole batch, as it used to).
    broker = Broker(port=0, heartbeat_timeout=10.0, max_attempts=2).start()
    procs = []
    client = None
    try:
        client = RemotePool(broker.address)
        obligations = _toy_obligations(1)
        outcome = {}

        def run():
            try:
                outcome["results"] = client.solve_ordered(obligations)
            except DistError as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(2):
            victim = _spawn_worker(broker.address, solve_delay=60.0)
            procs.append(victim)
            assert _wait_for(lambda: any(
                w["inflight"] for w in broker.snapshot()["workers"]
            ), timeout=60)
            victim.kill()
            victim.join(timeout=5)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert "error" not in outcome, outcome.get("error")
        verdict = outcome["results"][0]
        assert verdict.status == "poisoned"
        assert verdict.fingerprint == obligations[0].fingerprint()
        # The failure reports name the distinct workers that died.
        assert verdict.failures and len(verdict.failures) >= 2
        for report in verdict.failures:
            assert report["exc_type"] == "WorkerDied"
            assert report["worker_id"]
        assert broker.snapshot()["poisoned"] == 1
        # A resubmission of the same obligation short-circuits to the
        # quarantined verdict without touching any worker.
        again = client.solve_ordered(obligations)
        assert again[0].status == "poisoned"
    finally:
        if client is not None:
            client.close()
        for process in procs:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        broker.stop()


def test_crashing_solve_reports_structured_failure_and_poisons():
    # A solve that raises (rather than killing the process) sends a
    # structured failure report; the worker survives, and after
    # max_attempts the broker quarantines the obligation with the
    # reports' exception type and traceback attached.
    broker = Broker(port=0, heartbeat_timeout=10.0, max_attempts=2,
                    poison_threshold=1).start()
    worker = None
    client = None
    try:
        worker = _MP.Process(
            target=_crashing_worker_main, args=(broker.address,),
            daemon=True)
        worker.start()
        client = RemotePool(broker.address)
        results = client.solve_ordered(_toy_obligations(1))
        verdict = results[0]
        assert verdict.status == "poisoned"
        assert verdict.failures
        report = verdict.failures[0]
        assert report["exc_type"] == "RuntimeError"
        assert "deliberately broken solve" in report["message"]
        assert "RuntimeError" in report.get("traceback", "")
        # The worker survived its own crash and is still registered.
        assert any(w["name"] for w in broker.snapshot()["workers"])
    finally:
        if client is not None:
            client.close()
        if worker is not None and worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)
        broker.stop()


# ----------------------------------------------------------------------
# Acceptance: distributed methodology == sequential, on all variants,
# including across a mid-run worker kill
# ----------------------------------------------------------------------
def test_methodology_distributed_matches_sequential_all_variants(broker):
    broker.spawn()
    broker.spawn()
    for variant in VARIANTS:
        sequential = _run_methodology(variant, engine=ProofEngine(jobs=1))
        engine = RemoteEngine(broker.address)
        try:
            distributed = _run_methodology(variant, engine=engine)
        finally:
            engine.close()
        assert _methodology_signature(sequential) == \
            _methodology_signature(distributed), variant


def test_methodology_survives_worker_kill_mid_run(broker):
    victim = broker.spawn(solve_delay=0.05)
    broker.spawn(solve_delay=0.05)
    sequential = _run_methodology("orc", engine=ProofEngine(jobs=1))
    engine = RemoteEngine(broker.address)
    outcome = {}

    def run():
        try:
            outcome["result"] = _run_methodology("orc", engine=engine)
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        # Let the run make some progress, then kill one worker cold.
        assert _wait_for(lambda: broker.snapshot()["memo"] >= 1,
                         timeout=60), "distributed run never progressed"
        victim.kill()
        thread.join(timeout=300)
        assert not thread.is_alive(), "methodology hung after worker kill"
    finally:
        engine.close()
    assert "error" not in outcome, outcome.get("error")
    assert _methodology_signature(sequential) == \
        _methodology_signature(outcome["result"])


def test_methodology_split_distributed_matches_sequential_with_worker_kill(
        broker):
    """Intra-frame splitting over the distributed service: a split run
    sharded across two workers — one SIGKILLed mid-run — must match both
    the sequential split run and the sequential *unsplit* oracle."""
    victim = broker.spawn(solve_delay=0.05)
    broker.spawn(solve_delay=0.05)
    unsplit = _run_methodology("orc", engine=ProofEngine(jobs=1))
    sequential = _run_methodology("orc", engine=ProofEngine(jobs=1),
                                  split=True)
    assert _methodology_signature(unsplit) == \
        _methodology_signature(sequential)
    engine = RemoteEngine(broker.address)
    outcome = {}

    def run():
        try:
            outcome["result"] = _run_methodology("orc", engine=engine,
                                                 split=True)
        except Exception as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        assert _wait_for(lambda: broker.snapshot()["memo"] >= 1,
                         timeout=60), "distributed run never progressed"
        victim.kill()
        thread.join(timeout=300)
        assert not thread.is_alive(), "split methodology hung after kill"
    finally:
        engine.close()
    assert "error" not in outcome, outcome.get("error")
    assert _methodology_signature(unsplit) == \
        _methodology_signature(outcome["result"])


# ----------------------------------------------------------------------
# Gossip backlog management
# ----------------------------------------------------------------------
def test_gossip_backlog_pages_and_trims():
    from repro.dist import broker as broker_mod

    instance = Broker(port=0)
    # Simulate a long-lived broker: more backlog than the retention cap.
    total = broker_mod._GOSSIP_KEEP + 100
    for i in range(total):
        instance._gossip.append((f"fp{i}", {"status": "unsat"}))
        overflow = len(instance._gossip) - broker_mod._GOSSIP_KEEP
        if overflow > 0:
            del instance._gossip[:overflow]
            instance._gossip_base += overflow
    assert len(instance._gossip) == broker_mod._GOSSIP_KEEP
    assert instance._gossip_base == 100
    worker = broker_mod._Worker("w", "w", conn=None)
    # A fresh worker pages through the retained backlog, one bounded
    # chunk per pull, never one giant frame.
    seen = []
    while True:
        page = instance._gossip_page(worker)
        if not page:
            break
        assert len(page) <= broker_mod._GOSSIP_PAGE
        seen.extend(entry["fingerprint"] for entry in page)
    assert seen[0] == "fp100"          # trimmed entries are gone
    assert seen[-1] == f"fp{total - 1}"
    assert len(seen) == broker_mod._GOSSIP_KEEP
    # A worker whose position predates the trim resumes at the base.
    stale = broker_mod._Worker("s", "s", conn=None)
    stale.gossip_pos = 3
    first = instance._gossip_page(stale)
    assert first[0]["fingerprint"] == "fp100"


def test_dispatch_refuses_work_for_evicted_worker():
    """A pull racing the heartbeat sweep must not strand the job on an
    unregistered worker's inflight set (which nothing would requeue)."""
    from repro.dist import broker as broker_mod

    instance = Broker(port=0)
    ghost = broker_mod._Worker("worker-ghost", "ghost", conn=None)
    batch = broker_mod._Batch("b1", conn=None)
    job = broker_mod._Job("b1", 0, {"name": "j"}, "fp")
    batch.jobs[0] = job
    instance._batches["b1"] = batch
    instance._queue.append(job)
    # ghost was never (or is no longer) in instance._workers: evicted.
    reply = instance._dispatch(ghost)
    assert reply["type"] == "idle"
    assert not ghost.inflight
    assert list(instance._queue) == [job]  # still dispatchable
    # Once registered, the same pull hands the job out normally.
    instance._workers["worker-ghost"] = ghost
    reply = instance._dispatch(ghost)
    assert reply["type"] == "job" and reply["seq"] == 0
    assert (("b1", 0) in ghost.inflight)


def test_dial_times_out_on_silent_peer():
    """A peer that accepts TCP but never answers the handshake must
    fail within the dial timeout, not hang."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    try:
        start = time.monotonic()
        with pytest.raises(DistError, match="handshake"):
            dial(("127.0.0.1", port), role="client", timeout=0.3)
        assert time.monotonic() - start < 5.0
    finally:
        listener.close()


def test_silent_prehandshake_connection_is_reaped():
    """A peer that connects and never says hello must not pin a broker
    thread/fd forever — the handshake deadline closes it."""
    instance = Broker(port=0, handshake_timeout=0.3).start()
    try:
        sock = socket.create_connection(("127.0.0.1", instance.port),
                                        timeout=5)
        sock.settimeout(5)
        start = time.monotonic()
        # The broker hangs up without a word once the deadline passes.
        assert sock.recv(1) == b""
        assert time.monotonic() - start < 4.0
        sock.close()
    finally:
        instance.stop()


# ----------------------------------------------------------------------
# Broker lifecycle bug regressions
# ----------------------------------------------------------------------
def test_evicted_batch_retires_after_giving_up():
    """A job that burns its last worker must retire its finished batch:
    the old path marked the job done but never popped the batch, leaking
    its obligation payloads until the client disconnected."""
    from repro.dist import broker as broker_mod

    instance = Broker(port=0, max_attempts=1)
    doomed = broker_mod._Worker("w1", "w1", conn=None)
    batch = broker_mod._Batch("b1", conn=None)
    job = broker_mod._Job("b1", 0, {"name": "j"}, "fp")
    job.attempts = 1
    job.worker = "w1"
    batch.jobs[0] = job
    instance._batches["b1"] = batch
    instance._workers["w1"] = doomed
    doomed.inflight.add(("b1", 0))
    instance._evict_worker("w1", "disconnected")
    assert job.done
    assert "b1" not in instance._batches   # retired, not leaked


def test_dispatch_answers_memoized_queue_entries():
    """A queued job whose fingerprint got memoized (a duplicate across
    concurrent batches) must be answered from the memo at dispatch time,
    not burn a worker on a re-solve."""
    from repro.dist import broker as broker_mod

    instance = Broker(port=0)
    memo = {"status": "unsat", "obligation": "j", "fingerprint": "fp",
            "model": None, "nvars": 0, "runtime_s": 0.0, "stats": {}}
    instance._verdicts["fp"] = memo
    delivered = []
    batch = broker_mod._Batch("b1", conn=None,
                              deliver=lambda seq, verdict, error:
                              delivered.append((seq, verdict, error)))
    job = broker_mod._Job("b1", 0, {"name": "j"}, "fp")
    batch.jobs[0] = job
    instance._batches["b1"] = batch
    instance._queue.append(job)
    puller = broker_mod._Worker("w1", "w1", conn=None)
    instance._workers["w1"] = puller
    reply = instance._dispatch(puller)
    assert reply["type"] == "idle"         # nothing left to solve
    assert not puller.inflight
    assert delivered == [(0, memo, None)]
    assert job.done
    assert "b1" not in instance._batches   # batch completed via memo


def test_flapping_broker_worker_backs_off():
    """Connections that die right after the handshake must count against
    the retry budget: the old loop reset ``retries`` on every successful
    dial, so a flapping broker produced a zero-delay reconnect spin that
    never gave up."""
    from repro.dist.protocol import supported_codecs
    from repro.dist.worker import Worker

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]
    stop = threading.Event()

    def flap():
        # Accept, complete the handshake, hang up immediately.
        while not stop.is_set():
            try:
                client, _ = listener.accept()
            except OSError:
                return
            conn = Connection(client)
            try:
                conn.recv()
                conn.send({"type": "welcome", "proto": PROTO_VERSION,
                           "codec": supported_codecs()[-1], "id": "x",
                           "workers": 0})
            except Exception:
                pass
            conn.close()

    server = threading.Thread(target=flap, daemon=True)
    server.start()
    worker = Worker(f"127.0.0.1:{port}", max_retries=3, retry_delay=0.05,
                    poll_interval=0.01, stable_after=5.0)
    outcome = []

    def run():
        try:
            worker.run()
            outcome.append(None)
        except DistError as exc:
            outcome.append(exc)

    runner = threading.Thread(target=run, daemon=True)
    start = time.monotonic()
    runner.start()
    runner.join(timeout=30)
    stop.set()
    listener.close()
    worker.stop()
    assert not runner.is_alive(), "worker reconnect-spun forever"
    assert isinstance(outcome[0], DistError)
    assert "flapping" in str(outcome[0])
    # Backoff means the give-up took at least max_retries * retry_delay.
    assert time.monotonic() - start >= 3 * 0.05


def test_duplicate_live_batch_id_rejected(broker):
    """A *different* batch under a still-live id must be rejected, not
    silently replace the first batch (stranding its client forever) —
    while an identical retransmission of our own live submit (a
    duplicated frame in flight) is ignored rather than erroring the
    whole run out."""
    conn, _welcome = dial(("127.0.0.1", broker.port), role="client",
                          timeout=5)
    try:
        toys = _toy_obligations(2)
        jobs = [{"seq": 0, "fingerprint": "fp-dup",
                 "obligation": obligation_to_wire(toys[0])}]
        # No workers attached: the first submission stays queued (live).
        conn.send({"type": "submit", "batch_id": "dup", "jobs": jobs})
        assert _wait_for(lambda: broker.snapshot()["batches"] == 1)
        # Identical job set over the same connection: a retransmitted
        # duplicate frame.  No error — the next reply must be the
        # status answer, proving the dup was silently dropped.
        conn.send({"type": "submit", "batch_id": "dup", "jobs": jobs})
        conn.send({"type": "status"})
        reply = conn.recv()
        assert reply["type"] == "status"
        assert broker.snapshot()["batches"] == 1
        # A different job set under the live id is an id collision.
        conn.send({"type": "submit", "batch_id": "dup", "jobs": [
            {"seq": 0, "fingerprint": "fp-other",
             "obligation": obligation_to_wire(toys[1])}]})
        reply = conn.recv()
        assert reply["type"] == "error"
        assert "duplicate" in reply["reason"]
        assert broker.snapshot()["batches"] == 1
    finally:
        conn.close()


def test_snapshot_queue_depth_skips_dead_batches():
    """Queue entries of cancelled/dropped batches drain lazily; the
    snapshot must not count them as pending work."""
    from repro.dist import broker as broker_mod

    instance = Broker(port=0)
    for batch_id in ("live", "dead"):
        batch = broker_mod._Batch(batch_id, conn=None)
        for seq in range(3):
            job = broker_mod._Job(batch_id, seq, {"name": "j"},
                                  f"fp-{batch_id}-{seq}")
            batch.jobs[seq] = job
            instance._batches[batch_id] = batch
            instance._queue.append(job)
    instance._cancel("dead")
    assert len(instance._queue) == 6       # stale entries still queued
    assert instance.snapshot()["queued"] == 3   # but not reported


def test_priority_batches_dispatch_first():
    """Higher-priority batches dispatch before earlier-submitted lower
    ones; within a priority level, submission order (FIFO)."""
    from repro.dist import broker as broker_mod

    instance = Broker(port=0)
    order = []
    for batch_id, priority in (("bg1", 0), ("fg", 5), ("bg2", 0)):
        batch = broker_mod._Batch(batch_id, conn=None, priority=priority)
        job = broker_mod._Job(batch_id, 0, {"name": batch_id},
                              f"fp-{batch_id}", priority=priority)
        batch.jobs[0] = job
        instance._batches[batch_id] = batch
        instance._queue.append(job)
    puller = broker_mod._Worker("w1", "w1", conn=None)
    instance._workers["w1"] = puller
    for _ in range(3):
        reply = instance._dispatch(puller)
        assert reply["type"] == "job"
        order.append(reply["batch_id"])
    assert order == ["fg", "bg1", "bg2"]


# ----------------------------------------------------------------------
# Durability: journals, recovery, restart mid-sweep
# ----------------------------------------------------------------------
def test_durable_broker_recovers_journaled_queue(tmp_path):
    """A durable broker killed with queued work re-adopts it on restart:
    the orphan jobs are solved into the memo, and a reconnecting
    client's resubmission is answered without re-solving."""
    cache = str(tmp_path / "store")
    obligations = _toy_obligations(3)
    first = Broker(port=0, cache_dir=cache).start()
    try:
        conn, _welcome = dial(("127.0.0.1", first.port), role="client",
                              timeout=5)
        conn.send({"type": "submit", "batch_id": "sweep1", "jobs": [
            {"seq": i, "fingerprint": ob.fingerprint(),
             "obligation": obligation_to_wire(ob)}
            for i, ob in enumerate(obligations)
        ]})
        assert _wait_for(lambda: first.snapshot()["batches"] == 1)
    finally:
        # Hard stop with the client still attached: queued work must
        # survive in the journal, not in any socket.
        first.stop()
    second = Broker(port=0, cache_dir=cache).start()
    try:
        snap = second.snapshot()
        assert snap["batches"] == 1 and snap["queued"] == 3
        process = _spawn_worker(second.address)
        try:
            # The orphan batch solves into the durable memo and retires.
            assert _wait_for(lambda: second.snapshot()["memo"] == 3)
            assert _wait_for(lambda: second.snapshot()["batches"] == 0)
            with RemotePool(second.address) as pool:
                verdicts = pool.solve_ordered(obligations)
            expected = [solve_obligation(ob) for ob in obligations]
            assert [v.status for v in verdicts] == \
                [v.status for v in expected]
            assert [v.fingerprint for v in verdicts] == \
                [v.fingerprint for v in expected]
        finally:
            process.terminate()
            process.join(timeout=5)
    finally:
        second.stop()


def test_broker_restart_mid_sweep_matches_sequential_all_variants(tmp_path):
    """The durable-restart acceptance differential: a broker SIGKILLed
    (stopped hard) mid-sweep and restarted on the same port and cache
    directory must let the client's sweep complete with verdict/alert
    signatures bit-identical to the sequential oracle, on all four
    design variants."""
    cache = str(tmp_path / "store")
    first = Broker(port=0, heartbeat_timeout=10.0, cache_dir=cache).start()
    port = first.port
    procs = [_spawn_worker(first.address, solve_delay=0.05)
             for _ in range(2)]
    pool = RemotePool(first.address, reconnect_retries=120,
                      reconnect_delay=0.25)
    engine = ProofEngine(pool=pool)
    signatures = {}
    failure = []

    def sweep():
        try:
            for variant in VARIANTS:
                signatures[variant] = _methodology_signature(
                    _run_methodology(variant, engine))
        except Exception as exc:   # surfaced by the final assert
            failure.append(exc)

    runner = threading.Thread(target=sweep, daemon=True)
    runner.start()
    # Let the sweep get properly underway, then yank the broker.
    assert _wait_for(lambda: first.snapshot()["memo"] >= 2, timeout=120)
    first.stop()
    # The whole broker host goes down: its workers die with it.  (They
    # must also die in this harness — forked workers inherit the
    # listening socket, which would keep the port bound.)
    for process in procs:
        process.terminate()
    for process in procs:
        process.join(timeout=5)
    second = Broker(port=port, heartbeat_timeout=10.0,
                    cache_dir=cache).start()
    procs.append(_spawn_worker(second.address))
    try:
        runner.join(timeout=600)
        assert not runner.is_alive(), "sweep never completed after restart"
        assert not failure, f"sweep failed after restart: {failure[0]}"
        for variant in VARIANTS:
            sequential = _methodology_signature(
                _run_methodology(variant, ProofEngine(jobs=1)))
            assert signatures[variant] == sequential, variant
    finally:
        engine.close()
        for process in procs:
            if process.is_alive():
                process.terminate()
        for process in procs:
            process.join(timeout=5)
        second.stop()


# ----------------------------------------------------------------------
# Cooperative preemption
# ----------------------------------------------------------------------
def _pigeonhole_obligation(pigeons=8):
    """PHP(n, n-1): small to ship, thousands of conflicts to refute —
    long enough for a cancel push to land mid-solve."""
    holes = pigeons - 1

    def var(i, j):
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-var(i1, j), -var(i2, j)])
    return ProofObligation(name="php", nvars=pigeons * holes,
                           clauses=clauses, assumptions=[],
                           simplify=False)


def test_cancel_push_preempts_running_solve():
    """Cancelling a batch mid-solve must abort the worker's CDCL search
    (cooperative preemption), not let it run the doomed proof to
    completion."""
    from repro.dist.worker import Worker

    instance = Broker(port=0, heartbeat_timeout=30.0).start()
    worker = Worker(instance.address, poll_interval=0.01)
    runner = threading.Thread(target=worker.run, daemon=True)
    runner.start()
    conn = None
    try:
        conn, _welcome = dial(("127.0.0.1", instance.port), role="client",
                              timeout=5)
        hard = _pigeonhole_obligation()
        conn.send({"type": "submit", "batch_id": "philong", "jobs": [
            {"seq": 0, "fingerprint": hard.fingerprint(),
             "obligation": obligation_to_wire(hard)}]})
        assert _wait_for(
            lambda: any(w["inflight"] for w in
                        instance.snapshot()["workers"]))
        conn.send({"type": "cancel", "batch_id": "philong"})
        assert conn.recv()["type"] == "cancelled"
        assert _wait_for(lambda: worker.cancelled >= 1, timeout=60), \
            "solve ran to completion despite the cancel push"
        assert worker.solved == 0
    finally:
        if conn is not None:
            conn.close()
        worker.stop()
        runner.join(timeout=10)
        instance.stop()


# ----------------------------------------------------------------------
# HTTP/JSON job API
# ----------------------------------------------------------------------
def _http(method, url, payload=None):
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=15) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def test_http_job_lifecycle(tmp_path):
    """submit -> poll -> result over the JSON job API, executed on the
    broker's own worker fleet."""
    instance = Broker(port=0, http_port=0,
                      cache_dir=str(tmp_path / "store")).start()
    base = f"http://127.0.0.1:{instance.http_port}"
    process = _spawn_worker(instance.address)
    try:
        status, health = _http("GET", base + "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["durable"] is True
        status, reply = _http("POST", base + "/jobs",
                              {"kind": "check", "variant": "secure",
                               "k": 1, "priority": 2})
        assert status == 202
        job_id = reply["id"]
        assert reply["status"] in ("queued", "running")

        def finished():
            code, state = _http("GET", f"{base}/jobs/{job_id}")
            assert code == 200
            return state["status"] in ("done", "failed")

        assert _wait_for(finished, timeout=300)
        status, state = _http("GET", f"{base}/jobs/{job_id}")
        assert state["status"] == "done"
        assert state["priority"] == 2
        assert state["progress"]["obligations_completed"] >= 1
        status, result = _http("GET", f"{base}/jobs/{job_id}/result")
        assert status == 200
        # The job API's answer must be bit-identical to the same check
        # run on a local engine (solving is pure, the fleet is an
        # implementation detail).
        from repro.core import UpecChecker, UpecModel

        soc = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))
        oracle = UpecChecker(UpecModel(soc, SCENARIO),
                             engine=ProofEngine()).check(k=1).to_dict()
        for key in ("status", "k", "alert", "checked_frames"):
            assert result["result"][key] == oracle[key], key
    finally:
        process.terminate()
        process.join(timeout=5)
        instance.stop()


def test_http_rejects_bad_requests():
    instance = Broker(port=0, http_port=0).start()
    base = f"http://127.0.0.1:{instance.http_port}"
    try:
        import urllib.error
        import urllib.request

        # Invalid JSON body.
        request = urllib.request.Request(base + "/jobs", data=b"{nope",
                                         method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=15)
        assert exc_info.value.code == 400
        # Unknown variant / bad k.
        status, body = _http("POST", base + "/jobs",
                             {"variant": "nonesuch"})
        assert status == 400 and "variant" in body["error"]
        status, body = _http("POST", base + "/jobs",
                             {"variant": "secure", "k": 0})
        assert status == 400 and "k" in body["error"]
        # Unknown job / endpoint, wrong method.
        status, _body = _http("GET", base + "/jobs/job-unknown")
        assert status == 404
        status, _body = _http("POST", base + "/healthz")
        assert status == 405
        status, _body = _http("GET", base + "/nothing")
        assert status == 404
    finally:
        instance.stop()


def test_http_result_of_unfinished_job_conflicts():
    """Asking for the result of a job still queued/running is a 409,
    not a hang or a bogus 200."""
    instance = Broker(port=0, http_port=0).start()   # no workers attached
    base = f"http://127.0.0.1:{instance.http_port}"
    try:
        status, reply = _http("POST", base + "/jobs",
                              {"kind": "check", "variant": "secure",
                               "k": 2})
        assert status == 202
        status, body = _http("GET", f"{base}/jobs/{reply['id']}/result")
        assert status == 409
        assert body["status"] in ("queued", "running")
    finally:
        instance.stop()


def test_healthz_reports_degraded_without_workers():
    """/healthz must not claim "ok" when the service cannot make
    progress: zero connected workers means "degraded", with the cause
    spelled out, flipping back to "ok" once a worker registers."""
    instance = Broker(port=0, http_port=0).start()
    base = f"http://127.0.0.1:{instance.http_port}"
    process = None
    try:
        status, health = _http("GET", base + "/healthz")
        assert status == 200          # still 200: probes keep passing
        assert health["status"] == "degraded"
        assert any("no workers" in reason for reason in health["reasons"])
        assert health["poisoned"] == 0
        process = _spawn_worker(instance.address)
        assert _wait_for(lambda: instance.snapshot()["workers"],
                         timeout=30)
        status, health = _http("GET", base + "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["reasons"] == []
    finally:
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5)
        instance.stop()


def test_bounded_queue_refuses_and_client_backs_off():
    """Past --max-queued the broker refuses TCP submits with a
    retry-after reply and POST /jobs with 503; a RemotePool rides the
    refusal out with backoff and still gets its verdicts."""
    instance = Broker(port=0, http_port=0, max_queued=1).start()
    base = f"http://127.0.0.1:{instance.http_port}"
    filler = None
    probe = None
    client = None
    worker = None
    try:
        obligations = _toy_obligations(2)
        # Fill the queue: one live batch, no workers to drain it.
        filler, _ = dial(parse_address(instance.address), role="client",
                         timeout=5)
        filler.send({
            "type": "submit", "batch_id": "filler", "priority": 0,
            "jobs": [{"seq": 0,
                      "fingerprint": obligations[0].fingerprint(),
                      "obligation": obligation_to_wire(obligations[0])}],
        })
        # Submits are not acked; the queue depth confirms acceptance.
        assert _wait_for(lambda: instance.snapshot()["queued"] >= 1)
        # TCP: a further submit is refused with a retry hint ...
        probe, _ = dial(parse_address(instance.address), role="client",
                        timeout=5)
        probe.send({
            "type": "submit", "batch_id": "probe", "priority": 0,
            "jobs": [{"seq": 0,
                      "fingerprint": obligations[1].fingerprint(),
                      "obligation": obligation_to_wire(obligations[1])}],
        })
        refusal = probe.recv()
        assert refusal["type"] == "busy"
        assert refusal["retry_after"] > 0
        # ... and the job API says 503, with the same hint.
        status, body = _http("POST", base + "/jobs",
                             {"kind": "check", "variant": "secure", "k": 1})
        assert status == 503
        assert "retry_after" in body
        health = _http("GET", base + "/healthz")[1]
        assert health["status"] == "degraded"
        assert any("queue at bound" in r for r in health["reasons"])
        # Capacity returns (the filler batch dies with its connection);
        # a backoff-aware client submits successfully and solves.
        filler.close()
        filler = None
        worker = _spawn_worker(instance.address)
        client = RemotePool(instance.address)
        results = client.solve_ordered(obligations)
        expected = [solve_obligation(ob) for ob in obligations]
        assert [v.status for v in results] == \
            [v.status for v in expected]
    finally:
        for conn in (filler, probe):
            if conn is not None:
                conn.close()
        if client is not None:
            client.close()
        if worker is not None and worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)
        instance.stop()


def test_timeout_budget_yields_timeout_verdict():
    """A wall-budget-bound obligation that cannot finish in time comes
    back as a distinguishable 'timeout' verdict — locally and through
    the wire format."""
    hard = _pigeonhole_obligation(8)
    hard.wall_budget = 0.05
    verdict = solve_obligation(hard)
    assert verdict.status == "timeout"
    # The budget rides the wire (it is dispatch metadata, so the
    # fingerprint — the cache identity — must NOT depend on it).
    wire = obligation_from_wire(
        json.loads(json.dumps(obligation_to_wire(hard))))
    assert wire.wall_budget == 0.05
    assert wire.fingerprint() == hard.fingerprint()
    unbudgeted = ProofObligation(
        name=hard.name, nvars=hard.nvars, clauses=hard.clauses,
        assumptions=hard.assumptions, frozen=hard.frozen,
        simplify=hard.simplify)
    assert unbudgeted.fingerprint() == hard.fingerprint()
