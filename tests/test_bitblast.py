"""Property tests: bit-blasted semantics must match the simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormalError
from repro.formal.aig import Aig
from repro.formal.bitblast import (
    BitBlaster,
    bits_to_int,
    const_bits,
    equals,
    mux_bits,
    ripple_adder,
    subtractor,
    unsigned_less_than,
)
from repro.hdl import Circuit, cat, const, mux, select, sext, zext
from repro.sim import Simulator


def blast_inputs(circuit, expr):
    """Blast expr over fresh AIG inputs for each circuit input; returns
    (aig, input_bit_map, output_bits)."""
    aig = Aig()
    input_bits = {
        node: aig.new_inputs(node.width) for node in circuit.inputs.values()
    }

    def leaf(node):
        return input_bits[node]

    blaster = BitBlaster(aig, leaf, {})
    return aig, input_bits, blaster.blast(expr)


def eval_blasted(aig, input_bits, out_bits, input_values):
    assignment = {}
    for node, bits in input_bits.items():
        value = input_values[node.name]
        for i, bit in enumerate(bits):
            assignment[bit] = bool((value >> i) & 1)
    return bits_to_int(aig.evaluate(out_bits, assignment))


def check_expr_matches_sim(build, names_widths, input_values):
    """Build an expression twice: simulate and bit-blast, compare."""
    c = Circuit("t")
    inputs = {name: c.input(name, width) for name, width in names_widths}
    expr = build(inputs)
    c.output("o", expr)
    c.finalize()
    sim_value = Simulator(c).step(input_values)["o"]
    aig, input_bits, out_bits = blast_inputs(c, expr)
    blast_value = eval_blasted(aig, input_bits, out_bits, input_values)
    assert blast_value == sim_value, f"sim={sim_value} blast={blast_value}"


BYTE = st.integers(min_value=0, max_value=255)


@settings(max_examples=80, deadline=None)
@given(BYTE, BYTE, st.sampled_from(
    ["add", "sub", "and", "or", "xor", "eq", "ne", "ult", "ule"]))
def test_binary_ops_match(x, y, op):
    builders = {
        "add": lambda i: i["a"] + i["b"],
        "sub": lambda i: i["a"] - i["b"],
        "and": lambda i: i["a"] & i["b"],
        "or": lambda i: i["a"] | i["b"],
        "xor": lambda i: i["a"] ^ i["b"],
        "eq": lambda i: i["a"].eq(i["b"]),
        "ne": lambda i: i["a"].ne(i["b"]),
        "ult": lambda i: i["a"].ult(i["b"]),
        "ule": lambda i: i["a"].ule(i["b"]),
    }
    check_expr_matches_sim(
        builders[op], [("a", 8), ("b", 8)], {"a": x, "b": y}
    )


@settings(max_examples=40, deadline=None)
@given(BYTE)
def test_unary_and_structure_ops_match(x):
    check_expr_matches_sim(lambda i: ~i["a"], [("a", 8)], {"a": x})
    check_expr_matches_sim(lambda i: i["a"] << 3, [("a", 8)], {"a": x})
    check_expr_matches_sim(lambda i: i["a"] >> 2, [("a", 8)], {"a": x})
    check_expr_matches_sim(lambda i: i["a"][2:6], [("a", 8)], {"a": x})
    check_expr_matches_sim(lambda i: i["a"].any(), [("a", 8)], {"a": x})
    check_expr_matches_sim(lambda i: i["a"].all(), [("a", 8)], {"a": x})
    check_expr_matches_sim(
        lambda i: cat(i["a"][4:8], i["a"][0:4]), [("a", 8)], {"a": x}
    )


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=15))
def test_extensions_match(x):
    check_expr_matches_sim(lambda i: zext(i["a"], 8), [("a", 4)], {"a": x})
    check_expr_matches_sim(lambda i: sext(i["a"], 8), [("a", 4)], {"a": x})


@settings(max_examples=40, deadline=None)
@given(st.booleans(), BYTE, BYTE)
def test_mux_matches(s, x, y):
    check_expr_matches_sim(
        lambda i: mux(i["s"], i["a"], i["b"]),
        [("s", 1), ("a", 8), ("b", 8)],
        {"s": int(s), "a": x, "b": y},
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=7), st.lists(BYTE, min_size=8, max_size=8))
def test_select_matches(idx, choices):
    check_expr_matches_sim(
        lambda i: select(i["i"], [const(v, 8) for v in choices]),
        [("i", 3)],
        {"i": idx},
    )


@settings(max_examples=30, deadline=None)
@given(BYTE)
def test_shift_to_zero(x):
    check_expr_matches_sim(lambda i: i["a"] << 8, [("a", 8)], {"a": x})
    check_expr_matches_sim(lambda i: i["a"] >> 9, [("a", 8)], {"a": x})


@settings(max_examples=60, deadline=None)
@given(BYTE, BYTE, st.booleans())
def test_adder_primitive(x, y, cin):
    aig = Aig()
    a = aig.new_inputs(8)
    b = aig.new_inputs(8)
    out = ripple_adder(aig, a, b, aig.const(cin))
    assignment = {bit: bool((x >> i) & 1) for i, bit in enumerate(a)}
    assignment.update({bit: bool((y >> i) & 1) for i, bit in enumerate(b)})
    got = bits_to_int(aig.evaluate(out, assignment))
    assert got == (x + y + int(cin)) & 0xFF


@settings(max_examples=60, deadline=None)
@given(BYTE, BYTE)
def test_comparator_primitives(x, y):
    aig = Aig()
    a = aig.new_inputs(8)
    b = aig.new_inputs(8)
    lt = unsigned_less_than(aig, a, b)
    eq = equals(aig, a, b)
    sub = subtractor(aig, a, b)
    assignment = {bit: bool((x >> i) & 1) for i, bit in enumerate(a)}
    assignment.update({bit: bool((y >> i) & 1) for i, bit in enumerate(b)})
    lt_v, eq_v = aig.evaluate([lt, eq], assignment)
    assert lt_v == (x < y)
    assert eq_v == (x == y)
    assert bits_to_int(aig.evaluate(sub, assignment)) == (x - y) & 0xFF


def test_width_mismatch_rejected():
    aig = Aig()
    a = aig.new_inputs(4)
    b = aig.new_inputs(8)
    with pytest.raises(FormalError):
        ripple_adder(aig, a, b, aig.const(False))
    with pytest.raises(FormalError):
        equals(aig, a, b)
    with pytest.raises(FormalError):
        unsigned_less_than(aig, a, b)
    with pytest.raises(FormalError):
        mux_bits(aig, aig.const(True), a, b)


def test_const_bits():
    aig = Aig()
    bits = const_bits(aig, 0b1010, 4)
    assert [b for b in bits] == [aig.const(False), aig.const(True)] * 2


def test_structural_sharing_across_instances():
    """Two identical cones over the same leaves collapse to one (the UPEC
    miter-sharing property)."""
    c = Circuit("t")
    a = c.input("a", 8)
    b = c.input("b", 8)
    expr1 = (a + b) ^ (a & b)
    expr2 = (a + b) ^ (a & b)  # distinct Expr DAG, same structure
    c.finalize()
    aig = Aig()
    input_bits = {a: aig.new_inputs(8), b: aig.new_inputs(8)}
    blaster = BitBlaster(aig, lambda n: input_bits[n], {})
    bits1 = blaster.blast(expr1)
    size_after_first = len(aig)
    bits2 = blaster.blast(expr2)
    assert bits1 == bits2
    assert len(aig) == size_after_first
