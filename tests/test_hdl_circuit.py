"""Unit tests for circuits, memories and structural analyses."""

import pytest

from repro.errors import HdlError, WidthError
from repro.hdl import (
    Circuit,
    MemoryArray,
    circuit_stats,
    const,
    mux,
    node_count,
    reg_fanin,
    sequential_cone,
    sequential_fanin_map,
    topo_order,
)


def build_counter():
    c = Circuit("counter")
    en = c.input("en", 1)
    cnt = c.reg("cnt", 8, init=0)
    c.next(cnt, mux(en, cnt + 1, cnt))
    c.output("value", cnt)
    return c.finalize()


def test_circuit_basics():
    c = build_counter()
    assert c.finalized
    assert set(c.inputs) == {"en"}
    assert set(c.regs) == {"cnt"}
    assert set(c.outputs) == {"value"}
    assert c.state_bits() == 8


def test_duplicate_names_rejected():
    c = Circuit("t")
    c.input("x", 1)
    with pytest.raises(HdlError):
        c.input("x", 2)
    with pytest.raises(HdlError):
        c.reg("x", 2)


def test_duplicate_output_rejected():
    c = Circuit("t")
    r = c.reg("r", 4)
    c.output("o", r)
    with pytest.raises(HdlError):
        c.output("o", r)


def test_double_next_rejected():
    c = Circuit("t")
    r = c.reg("r", 4)
    c.next(r, r + 1)
    with pytest.raises(HdlError):
        c.next(r, r)


def test_next_width_check():
    c = Circuit("t")
    r = c.reg("r", 4)
    with pytest.raises(WidthError):
        c.next(r, const(0, 8))


def test_next_accepts_int():
    c = Circuit("t")
    r = c.reg("r", 4)
    c.next(r, 7)
    c.finalize()
    assert r.next.is_const and r.next.value == 7


def test_foreign_reg_rejected():
    c1 = Circuit("a")
    r1 = c1.reg("r", 4)
    c2 = Circuit("b")
    r2 = c2.reg("s", 4)
    c2.next(r2, r2)
    c2.output("bad", r1)
    with pytest.raises(HdlError):
        c2.finalize()


def test_foreign_next_rejected():
    c1 = Circuit("a")
    r1 = c1.reg("r", 4)
    with pytest.raises(HdlError):
        Circuit("b").next(r1, r1)


def test_finalize_defaults_to_hold():
    c = Circuit("t")
    r = c.reg("r", 4, init=5)
    c.finalize()
    assert r.next is r


def test_finalize_idempotent():
    c = build_counter()
    assert c.finalize() is c


def test_no_construction_after_finalize():
    c = build_counter()
    with pytest.raises(HdlError):
        c.input("late", 1)


def test_reg_classification():
    c = Circuit("t")
    c.reg("pc", 8, arch=True)
    c.reg("buf", 8)
    c.reg("mem0", 8, tags=("memory",))
    c.finalize()
    assert [r.name for r in c.arch_regs()] == ["pc"]
    assert {r.name for r in c.logic_regs()} == {"pc", "buf"}
    assert [r.name for r in c.regs_with_tag("memory")] == ["mem0"]


def test_memory_array_read_write():
    c = Circuit("m")
    addr = c.input("addr", 2)
    data = c.input("data", 8)
    we = c.input("we", 1)
    mem = MemoryArray(c, "mem", depth=4, width=8, init=0)
    rdata = mem.read(addr)
    mem.write(addr, data, we)
    c.output("rdata", rdata)
    c.finalize()
    assert len(mem) == 4
    assert mem[0].name == "mem[0]"
    assert mem.addr_width() == 2


def test_memory_array_init_list():
    c = Circuit("m")
    mem = MemoryArray(c, "mem", depth=3, width=8, init=[1, 2, 3])
    assert [w.init for w in mem.words] == [1, 2, 3]
    with pytest.raises(HdlError):
        MemoryArray(c, "mem2", depth=3, width=8, init=[1, 2])


def test_memory_array_errors():
    c = Circuit("m")
    mem = MemoryArray(c, "mem", depth=4, width=8)
    addr = c.input("addr", 2)
    narrow = c.input("na", 1)
    with pytest.raises(WidthError):
        mem.read(narrow)
    we = c.input("we", 1)
    mem.write(addr, 0, we)
    with pytest.raises(HdlError):
        mem.write(addr, 0, we)
    with pytest.raises(HdlError):
        MemoryArray(c, "bad", depth=0, width=8)


def test_memory_write_enable_width():
    c = Circuit("m")
    mem = MemoryArray(c, "mem", depth=2, width=8)
    addr = c.input("addr", 1)
    wide_en = c.input("we", 2)
    with pytest.raises(WidthError):
        mem.write(addr, 0, wide_en)


def test_topo_order_children_first():
    c = build_counter()
    order = topo_order([c.regs["cnt"].next])
    pos = {id(n): i for i, n in enumerate(order)}
    for node in order:
        if node.op != "reg":
            for arg in node.args:
                assert pos[id(arg)] < pos[id(node)]


def test_reg_fanin_and_cone():
    c = Circuit("t")
    a = c.reg("a", 4)
    b = c.reg("b", 4)
    d = c.reg("d", 4)
    c.next(a, a + 1)
    c.next(b, a)
    c.next(d, b)
    c.finalize()
    assert reg_fanin(d.next) == [b]
    cone = sequential_cone(c, [d])
    assert cone == {a, b, d}
    fanin = sequential_fanin_map(c)
    assert fanin[b] == [a]


def test_circuit_stats():
    c = build_counter()
    stats = circuit_stats(c)
    assert stats["registers"] == 1
    assert stats["state_bits"] == 8
    assert stats["dag_nodes"] == node_count([c.regs["cnt"].next])
    assert stats["inputs"] == 1
