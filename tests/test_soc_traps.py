"""Directed trap-path tests: causes, priorities, nesting, CSR effects."""

import pytest

from repro.soc import Iss, SocConfig, SocSim, build_soc
from repro.soc import isa

CFG = SocConfig.secure()
SOC = build_soc(CFG)


def protected_setup(entry_pc):
    """Machine-mode prologue: protect the secret, set mepc, drop to user."""
    return [
        isa.li(1, CFG.secret_addr),
        isa.csrw(isa.CSR_PMPADDR0, 1),
        isa.csrw(isa.CSR_PMPADDR1, 1),
        isa.li(2, isa.PMP_A | isa.PMP_L),
        isa.csrw(isa.CSR_PMPCFG1, 2),
        isa.li(3, entry_pc),
        isa.csrw(isa.CSR_MEPC, 3),
        isa.mret(),
    ]


def run_words(words, memory=None, cycles=400, soc=SOC):
    sim = SocSim(soc, words, memory=memory)
    sim.step(cycles)
    return sim


def test_load_fault_sets_cause_and_mepc():
    code = protected_setup(9) + [
        isa.nop(),
        isa.lb(4, 0, 1),      # pc 9: illegal load
        isa.jal(0, 0),
    ]
    sim = run_words([i.encode() for i in code])
    state = sim.arch_state()
    assert state["mcause"] == isa.CAUSE_LOAD_FAULT
    assert state["mepc"] == 9
    # (The program re-enters the prologue via the trap vector and faults
    # again, so the privilege mode oscillates; the trap CSRs are stable.)


def test_store_fault_sets_cause():
    code = protected_setup(9) + [
        isa.nop(),
        isa.sb(4, 0, 1),      # pc 9: illegal store
        isa.jal(0, 0),
    ]
    sim = run_words([i.encode() for i in code])
    assert sim.arch_state()["mcause"] == isa.CAUSE_STORE_FAULT


def test_machine_mode_ecall_traps_too():
    code = [isa.li(1, 5), isa.ecall(), isa.jal(0, 0)]
    sim = run_words([i.encode() for i in code], cycles=60)
    state = sim.arch_state()
    assert state["mcause"] == isa.CAUSE_ECALL
    assert state["mepc"] == 1


def test_instructions_behind_fault_are_squashed():
    """The two instructions after a faulting load must not commit."""
    code = protected_setup(9) + [
        isa.nop(),
        isa.lb(4, 0, 1),      # pc 9: faults
        isa.li(5, 0x55),      # must be squashed
        isa.li(6, 0x66),      # must be squashed
        isa.jal(0, 0),
    ]
    sim = run_words([i.encode() for i in code])
    assert sim.reg(5) == 0
    assert sim.reg(6) == 0


def test_branch_before_fault_still_takes_effect():
    """An older taken branch redirects; the fault in its shadow never
    happens (the faulting instruction is squashed)."""
    code = protected_setup(9) + [
        isa.nop(),
        isa.jal(0, 2),        # pc 9: jump over the illegal load
        isa.lb(4, 0, 1),      # squashed: never faults
        isa.li(5, 0x5A),      # pc 11: target
        isa.jal(0, 0),
    ]
    sim = run_words([i.encode() for i in code])
    state = sim.arch_state()
    assert sim.reg(5) == 0x5A
    assert state["mcause"] == 0   # no trap happened
    assert state["mode"] == isa.MODE_USER


def test_trap_csrs_survive_further_execution():
    """mepc/mcause hold their values until software rewrites them."""
    code = protected_setup(9) + [
        isa.nop(),
        isa.ecall(),          # pc 9
        isa.jal(0, 0),
    ]
    sim = run_words([i.encode() for i in code])
    # The trap vector (word 1) holds boot code; execution continues in
    # machine mode but never writes mepc/mcause again in this program
    # (the boot prologue runs before the first trap only).
    state = sim.arch_state()
    assert state["mcause"] == isa.CAUSE_ECALL


@pytest.mark.parametrize("variant", ["secure", "orc", "meltdown"])
def test_unique_execution_without_dependent_use(variant):
    """Def.-4 sanity via simulation: with an illegal load that has *no*
    dependent use, the architectural pc sequence is identical for two
    different secrets — on every variant (the channels all need the
    squashed dependent access)."""
    soc = build_soc(getattr(SocConfig, variant)())
    code = protected_setup(9) + [
        isa.nop(),
        isa.lb(4, 0, 1),      # illegal load (no dependent use!)
        isa.jal(0, 0),
    ]
    words = [i.encode() for i in code]
    sequences = []
    for secret in (0x11, 0xEE):
        memory = [0] * soc.config.dmem_words
        memory[soc.secret_eff_addr] = secret
        sim = SocSim(soc, words, memory=memory)
        pcs = []
        for _ in range(250):
            pcs.append(sim.sim.peek("pc"))
            sim.step()
        sequences.append(pcs)
    assert sequences[0] == sequences[1], variant


def test_rtl_trap_flow_matches_iss():
    code = protected_setup(9) + [
        isa.nop(),
        isa.lb(4, 0, 1),
        isa.jal(0, 0),
    ]
    words = [i.encode() for i in code]
    sim = run_words(words)
    iss = Iss(CFG, words)
    iss.run(400, stop_pc=None)
    # Both should be spinning in machine mode after the trap with the
    # same trap CSRs.
    state = sim.arch_state()
    assert state["mcause"] == iss.mcause
    assert state["mepc"] == iss.mepc
    assert state["mode"] == iss.mode
