"""Tests for the feasible-k exploration (Tab. I's 'Feasible k' row)."""

import pytest

from repro.core import UpecChecker, UpecModel, UpecScenario
from repro.errors import UpecError
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

SOC_SECURE = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))
SOC_ORC = build_soc(SocConfig.orc(**FORMAL_CONFIG_KWARGS))


def test_feasible_k_uncached_reaches_budget():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    checker = UpecChecker(model)
    result = checker.feasible_k(time_budget_s=5.0, max_k=3)
    assert result.proved
    assert 1 <= result.k <= 3


def test_feasible_k_stops_on_alert():
    model = UpecModel(SOC_ORC, UpecScenario(secret_in_cache=True))
    checker = UpecChecker(model)
    result = checker.feasible_k(time_budget_s=30.0, max_k=5)
    assert result.status == "alert"
    assert result.alert is not None


def test_feasible_k_budget_respected():
    """A tiny budget still completes at least one frame, then stops."""
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    checker = UpecChecker(model)
    result = checker.feasible_k(time_budget_s=0.0, max_k=10)
    assert result.proved
    assert result.k == 1
