"""DIMACS round-trip: write → parse → re-solve must preserve everything.

Also pins the writer/parser symmetry fix: the writer validates literals
against the declared variable count, so it can no longer emit a file that
its own parser rejects.
"""

import io
import random

import pytest

from repro.errors import FormalError
from repro.formal.dimacs import read_dimacs, write_dimacs
from repro.formal.solver import CdclSolver


def random_cnf(rng, max_vars=12):
    nvars = rng.randint(1, max_vars)
    nclauses = rng.randint(0, 3 * nvars)
    clauses = []
    for _ in range(nclauses):
        size = rng.randint(1, 5)
        clauses.append(
            [rng.randint(1, nvars) * rng.choice([1, -1]) for _ in range(size)]
        )
    return nvars, clauses


def solve(nvars, clauses):
    solver = CdclSolver()
    for _ in range(nvars):
        solver.new_var()
    solver.add_clauses(clauses)
    return solver.solve()


def test_roundtrip_preserves_clauses_vars_and_satisfiability():
    rng = random.Random(77)
    for _ in range(120):
        nvars, clauses = random_cnf(rng)
        stream = io.StringIO()
        write_dimacs(stream, nvars, clauses)
        stream.seek(0)
        nvars2, clauses2 = read_dimacs(stream)
        assert nvars2 == nvars
        assert clauses2 == clauses
        assert solve(nvars2, clauses2) is solve(nvars, clauses)


def test_roundtrip_empty_formula():
    stream = io.StringIO()
    write_dimacs(stream, 3, [])
    stream.seek(0)
    assert read_dimacs(stream) == (3, [])


def test_roundtrip_empty_clause():
    stream = io.StringIO()
    write_dimacs(stream, 2, [[1], []])
    stream.seek(0)
    nvars, clauses = read_dimacs(stream)
    assert (nvars, clauses) == (2, [[1], []])
    assert solve(nvars, clauses) is False


def test_writer_rejects_out_of_range_literal():
    """The asymmetry fix: previously ``write_dimacs(s, 2, [[3]])``
    produced a file ``read_dimacs`` rejects; now the writer refuses."""
    with pytest.raises(FormalError):
        write_dimacs(io.StringIO(), 2, [[3]])
    with pytest.raises(FormalError):
        write_dimacs(io.StringIO(), 2, [[1, -4]])


def test_writer_rejects_literal_zero_and_negative_nvars():
    with pytest.raises(FormalError):
        write_dimacs(io.StringIO(), 2, [[1, 0]])
    with pytest.raises(FormalError):
        write_dimacs(io.StringIO(), -1, [])


def test_parser_accepts_comments_blank_lines_and_split_clauses():
    text = "c a comment\n\np cnf 3 2\n1 -2\n0\nc mid comment\n3 0\n"
    nvars, clauses = read_dimacs(io.StringIO(text))
    assert nvars == 3
    assert clauses == [[1, -2], [3]]


def test_parser_error_cases_still_rejected():
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p cnf 1 1\n2 0\n"))   # var out of range
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p cnf 1 1\n1\n"))      # missing terminator
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p cnf 1 2\n1 0\n"))    # count mismatch
    with pytest.raises(FormalError):
        read_dimacs(io.StringIO("p dnf 1 1\n1 0\n"))    # malformed header
