"""Exhaustive validation of the two-instance miter construction.

For small random circuits, the hand-built UPEC-style miter (shared
variables for all state except a designated secret register) must agree
with brute-force simulation over *all* shared initial states and secret
pairs.  This pins the semantics of variable sharing, unrolling and
bit-blasting against ground truth.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal import Aig, SatContext, Unroller
from repro.hdl import Circuit, cat, mux
from repro.sim import Simulator


def build_random_circuit(spec):
    """A 3-register circuit whose wiring is drawn by hypothesis.

    ``secret`` (2 bits) models the protected data; ``a``/``b`` (2 bits
    each) are ordinary state.  The observation target is ``b``.
    """
    sel_a, sel_b, use_secret_in_a, use_secret_in_b, op = spec
    c = Circuit("rand")
    secret = c.reg("secret", 2, init=None)
    a = c.reg("a", 2, init=None)
    b = c.reg("b", 2, init=None)

    def pick(sel, base):
        choices = [base + 1, base ^ 3, mux(base[0], base, base + 2)]
        return choices[sel % 3]

    a_next = pick(sel_a, a)
    if use_secret_in_a:
        a_next = a_next + secret if op else a_next ^ secret
    b_next = pick(sel_b, b)
    if use_secret_in_b:
        b_next = b_next ^ a
    c.next(secret, secret)
    c.next(a, a_next)
    c.next(b, b_next)
    return c.finalize(), secret, a, b


def miter_diff_exists_sat(circuit, secret, watch, k):
    """SAT-based: can `watch` differ at any cycle <= k when only `secret`
    differs initially?"""
    ctx = SatContext()
    u1 = Unroller(circuit, ctx.aig, init="symbolic")
    shared = {
        reg: u1.reg_bits(reg, 0)
        for reg in circuit.regs.values()
        if reg is not secret
    }
    u2 = Unroller(circuit, ctx.aig, init="symbolic", init_bits=shared)
    aig = ctx.aig
    for t in range(1, k + 1):
        bits1 = u1.reg_bits(watch, t)
        bits2 = u2.reg_bits(watch, t)
        diff = aig.or_all(aig.xor_(x, y) for x, y in zip(bits1, bits2))
        if diff == 0:
            continue
        if ctx.solve(assumptions=[diff]):
            return True
    return False


def miter_diff_exists_brute(circuit, secret_name, watch_name, k):
    """Ground truth: enumerate every shared state and secret pair."""
    for a0, b0 in itertools.product(range(4), repeat=2):
        for s1, s2 in itertools.combinations(range(4), 2):
            sim1 = Simulator(circuit, init_overrides={
                "secret": s1, "a": a0, "b": b0})
            sim2 = Simulator(circuit, init_overrides={
                "secret": s2, "a": a0, "b": b0})
            for _ in range(k):
                sim1.step()
                sim2.step()
                if sim1.peek(watch_name) != sim2.peek(watch_name):
                    return True
    return False


@settings(max_examples=25, deadline=None)
@given(st.tuples(
    st.integers(0, 2), st.integers(0, 2),
    st.booleans(), st.booleans(), st.booleans(),
))
def test_miter_agrees_with_exhaustive_simulation(spec):
    circuit, secret, a, b = build_random_circuit(spec)
    k = 3
    sat_verdict = miter_diff_exists_sat(circuit, secret, b, k)
    brute_verdict = miter_diff_exists_brute(circuit, "secret", "b", k)
    assert sat_verdict == brute_verdict, spec
