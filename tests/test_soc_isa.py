"""Unit tests for the RV8 ISA: encode/decode, assembler, ISS semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.soc import isa
from repro.soc.assembler import assemble, disassemble
from repro.soc.config import SocConfig
from repro.soc.iss import Iss


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def test_encode_decode_roundtrip_examples():
    cases = [
        isa.nop(),
        isa.li(3, 200),
        isa.addi(1, 2, -5),
        isa.add(1, 2, 3),
        isa.sub(4, 5, 6),
        isa.and_(7, 1, 2),
        isa.or_(1, 1, 1),
        isa.xor(2, 3, 4),
        isa.sltu(5, 6, 7),
        isa.lb(4, 3, 1),
        isa.sb(4, -2, 1),
        isa.beq(1, 2, -4),
        isa.bne(3, 4, 7),
        isa.jal(1, 5),
        isa.csrr(2, isa.CSR_CYCLE),
        isa.csrw(isa.CSR_PMPADDR0, 3),
        isa.mret(),
        isa.ecall(),
    ]
    for instr in cases:
        word = instr.encode()
        back = isa.decode(word)
        assert back.encode() == word, str(instr)
        assert back.opcode == instr.opcode


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=0xFFFF))
def test_decode_encode_is_stable(word):
    """decode->encode->decode is a fixpoint for every 16-bit word."""
    first = isa.decode(word)
    second = isa.decode(first.encode())
    assert first.encode() == second.encode()


def test_simm_sign_extension():
    assert isa.addi(1, 0, -1).simm == -1
    assert isa.addi(1, 0, 31).simm == 31
    assert isa.addi(1, 0, -32).simm == -32


def test_sign_extend_helper():
    assert isa.sign_extend(0x3F, 6) == 0xFF
    assert isa.sign_extend(0x1F, 6) == 0x1F
    assert isa.sign_extend(0x20, 6) == 0xE0


def test_constructor_range_checks():
    with pytest.raises(IsaError):
        isa.li(8, 0)
    with pytest.raises(IsaError):
        isa.li(1, 300)
    with pytest.raises(IsaError):
        isa.addi(1, 1, 40)
    with pytest.raises(IsaError):
        isa.csrr(1, 0x3F)
    with pytest.raises(IsaError):
        isa.decode(1 << 16)


def test_str_rendering():
    assert str(isa.nop()) == "nop"
    assert "li x1" in str(isa.li(1, 7))
    assert "add" in str(isa.add(1, 2, 3))
    assert "csrr" in str(isa.csrr(1, isa.CSR_CYCLE))
    assert "mret" in str(isa.mret())


# ----------------------------------------------------------------------
# Assembler
# ----------------------------------------------------------------------
def test_assemble_with_labels():
    words = assemble([
        isa.li(1, 3),
        "loop:",
        isa.addi(1, 1, -1),
        ("bne", 1, 0, "loop"),
        isa.jal(0, 0),
    ])
    assert len(words) == 4
    branch = isa.decode(words[2])
    assert branch.opcode == isa.OP_BNE
    assert branch.simm == -1


def test_assemble_forward_label_and_jal():
    words = assemble([
        ("jal", 0, "end"),
        isa.nop(),
        "end:",
        isa.jal(0, 0),
    ])
    assert isa.decode(words[0]).simm == 2


def test_assemble_errors():
    with pytest.raises(IsaError):
        assemble(["noncolon"])
    with pytest.raises(IsaError):
        assemble(["a:", "a:", isa.nop()])
    with pytest.raises(IsaError):
        assemble([("bne", 1, 0, "missing")])
    with pytest.raises(IsaError):
        assemble([("frobnicate", 1)])
    with pytest.raises(IsaError):
        assemble([42])


def test_disassemble():
    listing = disassemble(assemble([isa.li(1, 5), isa.jal(0, 0)]))
    assert len(listing) == 2
    assert "li x1, 5" in listing[0]


# ----------------------------------------------------------------------
# ISS semantics
# ----------------------------------------------------------------------
def make_iss(code, memory=None, mode=isa.MODE_MACHINE, config=None):
    config = config or SocConfig.secure()
    return Iss(config, [i.encode() for i in code], memory=memory, mode=mode)


def test_iss_x0_hardwired():
    iss = make_iss([isa.li(0, 5), isa.jal(0, 0)])
    iss.step()
    assert iss.regs[0] == 0


def test_iss_arithmetic_wraps():
    iss = make_iss([isa.li(1, 200), isa.li(2, 100), isa.add(3, 1, 2)])
    iss.run(3)
    assert iss.regs[3] == (200 + 100) & 0xFF


def test_iss_sltu():
    iss = make_iss([isa.li(1, 2), isa.li(2, 3), isa.sltu(3, 1, 2), isa.sltu(4, 2, 1)])
    iss.run(4)
    assert iss.regs[3] == 1
    assert iss.regs[4] == 0


def test_iss_load_store_roundtrip():
    iss = make_iss([isa.li(1, 0x55), isa.li(2, 6), isa.sb(1, 1, 2), isa.lb(3, 1, 2)])
    iss.run(4)
    assert iss.load(7) == 0x55
    assert iss.regs[3] == 0x55


def test_iss_memory_wraps():
    config = SocConfig.secure()
    iss = make_iss([isa.li(1, 0x12), isa.li(2, config.dmem_words), isa.sb(1, 0, 2)])
    iss.run(3)
    assert iss.load(0) == 0x12  # address dmem_words aliases to 0


def test_iss_branches():
    iss = make_iss([
        isa.li(1, 1),
        isa.beq(1, 0, 2),    # not taken
        isa.bne(1, 0, 2),    # taken, skips the li below
        isa.li(2, 99),
        isa.li(3, 1),
    ])
    iss.run(4)
    assert iss.regs[2] == 0
    assert iss.regs[3] == 1


def test_iss_jal_links():
    iss = make_iss([isa.jal(1, 2), isa.nop(), isa.li(2, 1)])
    iss.step()
    assert iss.regs[1] == 1
    assert iss.pc == 2


def test_iss_pmp_fault_traps():
    config = SocConfig.secure()
    secret = config.secret_addr
    code = [
        isa.li(1, secret),
        isa.csrw(isa.CSR_PMPADDR0, 1),
        isa.csrw(isa.CSR_PMPADDR1, 1),
        isa.li(2, isa.PMP_A),
        isa.csrw(isa.CSR_PMPCFG1, 2),
        isa.li(3, 7),
        isa.csrw(isa.CSR_MEPC, 3),
        isa.mret(),
        isa.lb(4, 0, 1),     # pc=7? adjust below
    ]
    # pc 7 after mret is the lb at index 8; fix mepc target:
    code[6] = isa.csrw(isa.CSR_MEPC, 3)
    code[5] = isa.li(3, 8)
    iss = make_iss(code)
    iss.run(8)
    assert iss.mode == isa.MODE_USER
    iss.step()  # the illegal load
    assert iss.mode == isa.MODE_MACHINE
    assert iss.mcause == isa.CAUSE_LOAD_FAULT
    assert iss.mepc == 8
    assert iss.pc == iss.config.trap_vector
    assert iss.regs[4] == 0  # load did not complete
    assert iss.trap_count == 1


def test_iss_pmp_store_fault_cause():
    config = SocConfig.secure()
    iss = make_iss([isa.li(1, config.secret_addr), isa.sb(1, 0, 1)])
    iss.csr[isa.CSR_PMPADDR0] = config.secret_addr
    iss.csr[isa.CSR_PMPADDR1] = config.secret_addr
    iss.csr[isa.CSR_PMPCFG1] = isa.PMP_A
    iss.mode = isa.MODE_USER
    iss.run(2)
    assert iss.mcause == isa.CAUSE_STORE_FAULT


def test_iss_machine_mode_bypasses_pmp():
    config = SocConfig.secure()
    iss = make_iss(
        [isa.li(1, config.secret_addr), isa.lb(2, 0, 1)],
        memory=[0] * config.secret_addr + [0xAB],
    )
    iss.csr[isa.CSR_PMPADDR0] = config.secret_addr
    iss.csr[isa.CSR_PMPADDR1] = config.secret_addr
    iss.csr[isa.CSR_PMPCFG1] = isa.PMP_A
    iss.run(2)
    assert iss.regs[2] == 0xAB


def test_iss_ecall_and_mret():
    iss = make_iss([isa.ecall()])
    iss.step()
    assert iss.mcause == isa.CAUSE_ECALL
    assert iss.mepc == 0
    assert iss.mode == isa.MODE_MACHINE


def test_iss_user_mret_is_noop():
    iss = make_iss([isa.mret(), isa.li(1, 1)], mode=isa.MODE_USER)
    iss.step()
    assert iss.mode == isa.MODE_USER
    assert iss.pc == 1


def test_iss_user_csrw_ignored():
    iss = make_iss([isa.li(1, 5), isa.csrw(isa.CSR_PMPADDR0, 1)],
                   mode=isa.MODE_USER)
    iss.run(2)
    assert iss.csr[isa.CSR_PMPADDR0] == 0


def test_iss_csr_read_cycle():
    iss = make_iss([isa.csrr(1, isa.CSR_CYCLE)])
    iss.step(cycle_value=0x1234)
    assert iss.regs[1] == 0x34  # low byte


def test_iss_pmp_lock_blocks_writes():
    iss = make_iss([isa.nop()])
    iss.csr_write(isa.CSR_PMPCFG1, isa.PMP_A | isa.PMP_L)
    iss.csr_write(isa.CSR_PMPADDR1, 10)   # locked: ignored
    assert iss.csr[isa.CSR_PMPADDR1] == 0
    iss.csr_write(isa.CSR_PMPCFG1, 0)     # locked: ignored
    assert iss.csr[isa.CSR_PMPCFG1] == isa.PMP_A | isa.PMP_L


def test_iss_tor_lock_rule_compliant_vs_buggy():
    """The Sec. VII-C rule: a locked TOR end entry locks pmpaddr0."""
    compliant = make_iss([isa.nop()])
    compliant.csr_write(isa.CSR_PMPCFG1, isa.PMP_A | isa.PMP_L)
    compliant.csr_write(isa.CSR_PMPADDR0, 20)
    assert compliant.csr[isa.CSR_PMPADDR0] == 0  # write ignored

    buggy = Iss(SocConfig.pmp_bug(), [isa.nop().encode()])
    buggy.csr_write(isa.CSR_PMPCFG1, isa.PMP_A | isa.PMP_L)
    buggy.csr_write(isa.CSR_PMPADDR0, 20)
    assert buggy.csr[isa.CSR_PMPADDR0] == 20  # incompliance


def test_iss_cfg0_lock_blocks_addr0():
    iss = make_iss([isa.nop()])
    iss.csr_write(isa.CSR_PMPCFG0, isa.PMP_L)
    iss.csr_write(isa.CSR_PMPADDR0, 9)
    assert iss.csr[isa.CSR_PMPADDR0] == 0


def test_iss_program_too_large():
    config = SocConfig.secure()
    with pytest.raises(IsaError):
        Iss(config, [0] * (config.imem_words + 1))


def test_iss_arch_state_snapshot():
    iss = make_iss([isa.li(1, 5)])
    iss.step()
    state = iss.arch_state().as_dict()
    assert state["x1"] == 5
    assert state["pc"] == 1
    assert state["mode"] == isa.MODE_MACHINE
