"""Directed tests of the data cache's microarchitectural behaviours.

The cache is exercised through the SoC (its only instantiation); these
tests pin down the timing properties the covert channels are built from,
so a refactor that silently changes them fails loudly.
"""

import pytest

from repro.soc import SocConfig, SocSim, build_soc
from repro.soc import isa

CFG = SocConfig.secure(
    imem_words=32, dmem_words=32, cache_lines=4,
    write_pending_cycles=4, miss_latency=5, secret_addr=20,
)
SOC = build_soc(CFG)


def run(code, memory=None, max_cycles=2000):
    halt_pc = next(
        i for i, ins in enumerate(code)
        if ins.opcode == isa.OP_JAL and ins.rd == 0 and ins.simm == 0
    )
    sim = SocSim(SOC, [i.encode() for i in code], memory=memory)
    cycles = sim.run_until_halt(halt_pc, max_cycles=max_cycles)
    return sim, cycles


def test_load_hit_faster_than_miss():
    """A second load of the same address is a hit: measurably faster."""
    prelude = [isa.li(1, 5)]
    miss_code = prelude + [isa.lb(2, 0, 1), isa.jal(0, 0)]
    hit_code = prelude + [isa.lb(2, 0, 1), isa.lb(3, 0, 1), isa.jal(0, 0)]
    _, t_miss = run(miss_code)
    _, t_hit2 = run(hit_code)
    # The second load adds far less than a full miss latency.
    assert t_hit2 - t_miss < CFG.miss_latency


def test_store_hit_is_accepted_in_one_cycle():
    """After priming, a store is accepted without stalling."""
    code = [
        isa.li(1, 6), isa.lb(2, 0, 1),          # prime line
        isa.li(3, 0x42),
        isa.sb(3, 0, 1),                        # hit store
        isa.li(4, 1),                           # independent work proceeds
        isa.jal(0, 0),
    ]
    sim, _ = run(code)
    assert sim.mem_read(6) == 0x42
    assert sim.reg(4) == 1


def test_raw_hazard_stalls_read_after_write():
    """A load to the pending-write line waits for the drain; a load to a
    different line does not — the Orc channel's timing primitive.  Both
    runs prime identically; only the timed section differs."""
    def attempt(load_addr):
        code = [
            isa.li(1, 4), isa.lb(2, 0, 1),           # prime line idx(4)
            isa.li(5, load_addr), isa.lb(2, 0, 5),   # prime the load target
            isa.li(3, 0x11),
            isa.sb(3, 0, 1),                 # pending write, line idx(4)
            isa.csrr(4, isa.CSR_CYCLE),      # t0
            isa.lb(2, 0, 5),                 # read: RAW iff same line
            isa.csrr(7, isa.CSR_CYCLE),      # t1
            isa.jal(0, 0),
        ]
        sim, _ = run(code)
        return (sim.reg(7) - sim.reg(4)) & 0xFF

    same_line = attempt(4)
    other_line = attempt(5)
    assert same_line > other_line
    # The stall is bounded by the pending-write drain.
    assert same_line - other_line < CFG.write_pending_cycles


def test_writeback_preserves_data_through_eviction():
    lines = CFG.cache_lines
    a, b = 2, 2 + lines           # same index, different tags
    code = [
        isa.li(1, 0x77), isa.li(2, a), isa.sb(1, 0, 2),   # dirty line
        isa.li(3, b), isa.lb(4, 0, 3),                    # evict via miss
        isa.lb(5, 0, 2),                                  # reload a
        isa.jal(0, 0),
    ]
    sim, _ = run(code)
    assert sim.reg(5) == 0x77
    assert sim.sim.peek(f"dmem[{a}]") == 0x77  # written back to memory


def test_refill_latency_visible_in_timing():
    """A miss costs ~miss_latency extra cycles (the probe signal of the
    Meltdown-style attack)."""
    hit_code = [
        isa.li(1, 9), isa.lb(2, 0, 1),
        isa.csrr(6, isa.CSR_CYCLE), isa.lb(3, 0, 1),
        isa.csrr(7, isa.CSR_CYCLE), isa.jal(0, 0),
    ]
    miss_code = [
        isa.li(1, 9), isa.lb(2, 0, 1),
        isa.csrr(6, isa.CSR_CYCLE), isa.lb(3, 0, 5),  # x5=0: cold line
        isa.csrr(7, isa.CSR_CYCLE), isa.jal(0, 0),
    ]
    sim_h, _ = run(hit_code)
    sim_m, _ = run(miss_code)
    t_hit = (sim_h.reg(7) - sim_h.reg(6)) & 0xFF
    t_miss = (sim_m.reg(7) - sim_m.reg(6)) & 0xFF
    assert t_miss - t_hit >= CFG.miss_latency - 1


def test_pmp_fault_load_touches_no_cache_state():
    """An illegal load must not allocate a line (the 'D not cached' proof
    rests on this)."""
    secret = CFG.secret_addr
    code = [
        isa.li(1, secret),
        isa.csrw(isa.CSR_PMPADDR0, 1),
        isa.csrw(isa.CSR_PMPADDR1, 1),
        isa.li(2, isa.PMP_A | isa.PMP_L),
        isa.csrw(isa.CSR_PMPCFG1, 2),
        isa.li(3, 12),
        isa.csrw(isa.CSR_MEPC, 3),
        isa.mret(),
        isa.jal(0, 0),
    ]
    # pc 8 is the halt; user entry 12 would be off-program — instead run
    # the fault from user code within one image:
    code = code[:-1] + [
        isa.nop(), isa.nop(), isa.nop(), isa.nop(),   # pad to pc 12
        isa.lb(4, 0, 1),                              # pc 12: illegal load
        isa.jal(0, 0),
    ]
    sim = SocSim(SOC, [i.encode() for i in code])
    sim.step(120)
    line = sim.cache_line(SOC.secret_line_index)
    assert not (line["valid"] == 1 and line["tag"] == SOC.secret_line_tag)


def test_pmp_fault_hit_exposes_line_to_resp_buf():
    """...but a *hit* on a PMP-faulting load leaks into the response
    buffer (the P-alert source of Tab. I)."""
    secret = CFG.secret_addr
    memory = [0] * CFG.dmem_words
    memory[secret] = 0xAB
    code = [
        isa.li(1, secret),
        isa.lb(2, 0, 1),                  # machine mode: primes the line
        isa.csrw(isa.CSR_PMPADDR0, 1),
        isa.csrw(isa.CSR_PMPADDR1, 1),
        isa.li(2, isa.PMP_A | isa.PMP_L),
        isa.csrw(isa.CSR_PMPCFG1, 2),
        isa.li(3, 10),
        isa.csrw(isa.CSR_MEPC, 3),
        isa.mret(),
        isa.nop(),
        isa.lb(4, 0, 1),                  # pc 10: illegal load, hits
        isa.jal(0, 0),
    ]
    sim = SocSim(SOC, [i.encode() for i in code], memory=memory)
    sim.step(120)
    assert sim.sim.peek("resp_buf") == 0xAB   # the internal buffer leak
    assert sim.reg(4) != 0xAB                 # but never architectural
