"""Tests for the taint/IFT baselines and their comparison story."""

from repro.baselines import (
    check_taint_property,
    propagate_taint,
    taint_fixpoint,
)
from repro.hdl import Circuit, mux
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

SOC_SECURE = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))
SOC_ORC = build_soc(SocConfig.orc(**FORMAL_CONFIG_KWARGS))


def build_chain():
    """a -> b -> c plus an isolated register d."""
    c = Circuit("chain")
    a = c.reg("a", 4, arch=False)
    b = c.reg("b", 4)
    c3 = c.reg("c", 4, arch=True)
    d = c.reg("d", 4)
    c.next(a, a)
    c.next(b, a)
    c.next(c3, b)
    c.next(d, d + 1)
    c.finalize()
    return c, a, b, c3, d


def test_taint_propagates_along_chain():
    circ, a, b, c3, d = build_chain()
    report = propagate_taint(circ, [a], k=3)
    assert a in report.tainted_at(0)
    assert b not in report.tainted_at(0)
    assert b in report.tainted_at(1)
    assert c3 in report.tainted_at(2)
    assert d not in report.tainted_at(3)
    assert report.reached_arch == {"c": 2}
    assert report.first_arch_cycle() == 2
    assert report.flags_leak()


def test_taint_fixpoint_short_circuits():
    circ, a, b, c3, d = build_chain()
    report = taint_fixpoint(circ, [a])
    assert c3 in report.tainted_at(report.k)
    assert d not in report.tainted_at(report.k)


def test_taint_barrier_blocks():
    circ, a, b, c3, d = build_chain()
    report = propagate_taint(circ, [a], k=4, barrier=[b])
    assert c3 not in report.tainted_at(4)
    assert not report.flags_leak()


def test_taint_property_unrestricted_vs_path_restricted():
    circ, a, b, c3, d = build_chain()
    unrestricted = check_taint_property(circ, [a], c3, k=4)
    assert unrestricted.reaches and unrestricted.first_cycle == 2
    # A path that omits the actual channel (through b) passes vacuously —
    # the "clever thinking" weakness of path-based taint properties.
    wrong_path = check_taint_property(circ, [a], c3, k=4, path=[d])
    assert not wrong_path.reaches
    right_path = check_taint_property(circ, [a], c3, k=4, path=[b])
    assert right_path.reaches
    assert "path-restricted" in wrong_path.describe()
    assert "does NOT reach" in wrong_path.describe()


def test_static_ift_cannot_separate_secure_from_vulnerable():
    """The baseline's conservatism: structural taint reaches architectural
    state on EVERY variant, secure or not — unlike UPEC, it cannot certify
    the secure design."""
    for soc in (SOC_SECURE, SOC_ORC):
        report = taint_fixpoint(soc.circuit, [soc.secret_mem_reg])
        assert report.flags_leak(), soc.config.name
        # The register file is reached (the load path exists structurally).
        assert any(name.startswith("x") for name in report.reached_arch)


def test_sanitizing_known_leak_point_misses_orc_bypass():
    """The 'clever thinking' weakness, demonstrated with sanitization: an
    analyst who knows the response buffer is the leak point blocks it
    (barrier) and concludes the design is tight — correct for the secure
    design, but the Orc bypass routes the secret *around* the sanitized
    buffer into architectural state."""
    secure = propagate_taint(
        SOC_SECURE.circuit, [SOC_SECURE.secret_mem_reg,
                             SOC_SECURE.secret_cache_data_reg],
        k=20, barrier=[SOC_SECURE.resp_buf],
    )
    assert not secure.flags_leak()
    orc = propagate_taint(
        SOC_ORC.circuit, [SOC_ORC.secret_mem_reg,
                          SOC_ORC.secret_cache_data_reg],
        k=20, barrier=[SOC_ORC.resp_buf],
    )
    assert orc.flags_leak()
