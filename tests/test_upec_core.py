"""Tests for the UPEC core: model construction, alerts, checker.

These use the tiny formal geometry.  The expensive unbounded proofs live
in the benchmarks; here every SAT call is bounded by small windows or
conflict limits so the suite stays fast.
"""

import pytest

from repro.errors import UpecError
from repro.core import (
    Alert,
    INSECURE,
    UpecChecker,
    UpecMethodology,
    UpecModel,
    UpecScenario,
    classify,
)
from repro.core.alerts import L_ALERT, P_ALERT
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

CFG_SECURE = SocConfig.secure(**FORMAL_CONFIG_KWARGS)
CFG_ORC = SocConfig.orc(**FORMAL_CONFIG_KWARGS)
CFG_MELTDOWN = SocConfig.meltdown(**FORMAL_CONFIG_KWARGS)

SOC_SECURE = build_soc(CFG_SECURE)
SOC_ORC = build_soc(CFG_ORC)
SOC_MELTDOWN = build_soc(CFG_MELTDOWN)


# ----------------------------------------------------------------------
# Scenario / model construction
# ----------------------------------------------------------------------
def test_scenario_describe():
    s = UpecScenario(secret_in_cache=True)
    assert "D in cache" in s.describe()
    s2 = UpecScenario(secret_in_cache=False, fixed_program=[0, 1])
    assert "fixed program" in s2.describe()


def test_model_sharing_merges_identical_state():
    """Registers outside the secret seed share AIG variables at t0."""
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    soc = SOC_SECURE
    pc_bits1 = model.u1.reg_bits(soc.pc, 0)
    pc_bits2 = model.u2.reg_bits(soc.pc, 0)
    assert pc_bits1 == pc_bits2
    secret1 = model.u1.reg_bits(soc.secret_mem_reg, 0)
    secret2 = model.u2.reg_bits(soc.secret_mem_reg, 0)
    assert secret1 != secret2


def test_model_diff_lit_constant_false_for_shared_cone():
    """The pc pair cannot differ at t0; its diff literal folds to FALSE."""
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    assert model.pair_diff_lit(SOC_SECURE.pc, 0) == 0


def test_model_secret_diff_lit_not_constant():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    assert model.pair_diff_lit(SOC_SECURE.secret_mem_reg, 0) != 0


def test_model_cached_scenario_adds_cache_seed():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=True))
    assert SOC_SECURE.secret_cache_data_reg in model.diff_seed
    model2 = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    assert SOC_SECURE.secret_cache_data_reg not in model2.diff_seed


def test_default_commitment_excludes_memory_and_blackboxed_data():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=True))
    commitment = model.default_commitment()
    names = {r.name for r in commitment}
    assert "pc" in names
    assert "resp_buf" in names
    assert not any(n.startswith("dmem[") for n in names)
    assert not any(n.startswith("imem[") for n in names)
    assert not any(n.startswith("dc_data[") for n in names)
    # Without black-boxing the cache data fields are part of soc_state.
    model2 = UpecModel(
        SOC_SECURE,
        UpecScenario(secret_in_cache=True, blackbox_cache_data=False),
    )
    names2 = {r.name for r in model2.default_commitment()}
    assert any(n.startswith("dc_data[") for n in names2)


def test_model_rejects_program_too_large():
    with pytest.raises(UpecError):
        UpecModel(
            SOC_SECURE,
            UpecScenario(
                secret_in_cache=False,
                fixed_program=[0] * (CFG_SECURE.imem_words + 1),
            ),
        )


# ----------------------------------------------------------------------
# Alert classification
# ----------------------------------------------------------------------
def test_classify_p_vs_l():
    micro = SOC_SECURE.resp_buf
    arch = SOC_SECURE.pc
    p = classify(2, [(micro, 1, 2)])
    assert p.kind == P_ALERT and p.is_p_alert and not p.is_l_alert
    l = classify(3, [(micro, 1, 2), (arch, 4, 5)])
    assert l.kind == L_ALERT and l.is_l_alert
    assert l.arch_diffs() == [(arch, 4, 5)]
    assert "L-alert" in l.describe()
    assert "pc" in l.diff_reg_names()


def test_alert_witness_render():
    alert = Alert(
        kind=P_ALERT, frame=1,
        diffs=[(SOC_SECURE.resp_buf, 1, 2)],
        witness=[{"resp_buf": (0, 0)}, {"resp_buf": (1, 2)}],
    )
    text = alert.render_witness()
    assert "resp_buf" in text and "differs" in text
    empty = Alert(kind=P_ALERT, frame=0, diffs=[])
    assert "no witness" in empty.render_witness()


# ----------------------------------------------------------------------
# Checking (small windows)
# ----------------------------------------------------------------------
def test_vulnerable_designs_raise_p_alert_quickly():
    for soc in (SOC_ORC, SOC_MELTDOWN):
        model = UpecModel(soc, UpecScenario(secret_in_cache=True))
        result = UpecChecker(model).check(k=2)
        assert result.status == "alert"
        assert result.alert.is_p_alert
        assert result.alert.frame <= 2
        assert "resp_buf" in result.alert.diff_reg_names()


def test_secure_design_first_alert_is_resp_buf_only():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=True))
    result = UpecChecker(model).check(k=2)
    assert result.status == "alert"
    assert result.alert.is_p_alert
    assert result.alert.diff_reg_names() == ["resp_buf"]


def test_secret_not_cached_no_alert_small_window():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    result = UpecChecker(model).check(k=1)
    assert result.proved


def test_checker_conflict_limit_inconclusive():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    result = UpecChecker(model).check(k=3, start_frame=2, conflict_limit=5)
    assert result.status in ("inconclusive", "proved")
    # With a tiny conflict limit the hard frame cannot be proved.
    assert result.status == "inconclusive"
    assert "inconclusive" in result.describe()


def test_checker_rejects_empty_window():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=False))
    with pytest.raises(UpecError):
        UpecChecker(model).check(k=0)


def test_commitment_restriction_hides_alert():
    """Removing alerting registers from the commitment moves the search to
    the next propagation — the Fig. 5 'remove state bits' step."""
    soc = SOC_ORC
    # Branch-free in-flight state isolates the data-propagation paths.
    model = UpecModel(
        soc, UpecScenario(secret_in_cache=True, no_inflight_branches=True)
    )
    commitment = [
        r for r in model.default_commitment() if r.name != "resp_buf"
    ]
    result = UpecChecker(model).check(k=1, commitment=commitment)
    if result.status == "alert":
        # A different propagation path (the bypass forward) fires next;
        # the removed register never reappears.
        assert "resp_buf" not in result.alert.diff_reg_names()
    # Removing the bypass targets as well proves k=1 clean.
    commitment = [
        r for r in commitment
        if r.name not in ("exmem_result", "exmem_sdata",
                          "idex_rs1_val", "idex_rs2_val")
    ]
    result2 = UpecChecker(model).check(k=1, commitment=commitment)
    assert result2.proved


def test_methodology_insecure_orc():
    meth = UpecMethodology(SOC_ORC, UpecScenario(secret_in_cache=True))
    result = meth.run(k=4)
    assert result.verdict == INSECURE
    assert result.l_alert is not None
    assert any(reg.name == "pc" for reg, _, _ in result.l_alert.diffs)
    assert len(result.p_alerts) >= 1
    assert "resp_buf" in result.p_alert_reg_names
    assert "insecure" in result.describe()


def test_methodology_insecure_meltdown():
    meth = UpecMethodology(SOC_MELTDOWN, UpecScenario(secret_in_cache=True))
    result = meth.run(k=4)
    assert result.verdict == INSECURE


def test_p_alerts_precede_l_alerts():
    """Tab. II shape: the first P-alert needs a shorter window than the
    first L-alert."""
    meth = UpecMethodology(SOC_ORC, UpecScenario(secret_in_cache=True))
    result = meth.run(k=4)
    first_p = min(a.frame for a in result.p_alerts)
    assert first_p <= result.l_alert.frame


def test_model_stats_exposed():
    model = UpecModel(SOC_SECURE, UpecScenario(secret_in_cache=True))
    UpecChecker(model).check(k=1)
    stats = model.stats()
    assert stats["aig_nodes"] > 0
    assert stats["cnf_vars"] > 0
