"""Split-vs-unsplit differentials: intra-frame obligation splitting
(``split=`` / ``--split`` / ``REPRO_ENGINE_SPLIT``) must be a pure
scheduling change — status, k, alert register set, witness trace and
cache keys bit-identical to unsplit runs on every design variant, at
jobs=1 and jobs=4.  (The distributed leg, including a mid-run worker
kill, lives in ``test_dist.py``.)
"""

import pytest

from repro.core import (
    UpecChecker,
    UpecMethodology,
    UpecModel,
    UpecScenario,
)
from repro.engine import ProofEngine
from repro.engine.split import FrameSplit, cone_vars, group_cones
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")
SCENARIO = UpecScenario(secret_in_cache=True)
SOCS = {
    variant: build_soc(getattr(SocConfig, variant)(**FORMAL_CONFIG_KWARGS))
    for variant in VARIANTS
}


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------
def _check_signature(result):
    """Everything a checker result reports except timing and counters."""
    alert = None
    if result.alert is not None:
        alert = result.alert.to_dict()
    return (result.status, result.k, result.checked_frames, alert)


def _methodology_signature(result):
    return (
        result.verdict,
        result.k,
        result.iterations,
        list(result.removed_regs),
        [alert.to_dict() for alert in result.p_alerts],
        result.l_alert.to_dict() if result.l_alert is not None else None,
    )


def _run_check(variant, split, engine, k=2, slice=None):
    model = UpecModel(SOCS[variant], SCENARIO)
    return UpecChecker(model, engine=engine, split=split,
                       slice=slice).check(k=k)


def _run_methodology(variant, split, engine, k=2):
    return UpecMethodology(SOCS[variant], SCENARIO, engine=engine,
                           split=split).run(k=k)


# ----------------------------------------------------------------------
# Unit: grouping and cone helpers
# ----------------------------------------------------------------------
def test_group_cones_is_deterministic_and_order_preserving():
    cones = [
        set(range(20)),                     # rep of group 0
        set(range(19)) | {99},              # 19/21 = 0.905: joins group 0
        {100, 101, 102},                    # disjoint: its own group
        set(range(20)),                     # identical to rep 0
        {100, 101, 103},                    # 2/4 = 0.5: own group
    ]
    groups = group_cones(cones, overlap=0.9)
    assert groups == [[0, 1, 3], [2], [4]]
    # Identical input, identical output — no hashing/order dependence.
    assert group_cones(cones, overlap=0.9) == groups


def test_group_cones_joins_everything_at_zero_threshold():
    assert group_cones([{1}, {2}, {3}], overlap=0.0) == [[0, 1, 2]]


def test_cone_vars_walks_definitions_transitively():
    # v5 := v3 & v4, v3 := v1 & v2 (Tseitin triples); v4 is an input.
    clauses = [
        [-3, 1], [-3, 2], [3, -1, -2],
        [-5, 3], [-5, 4], [5, -3, -4],
    ]
    definitions = {3: [0, 1, 2], 5: [3, 4, 5]}
    assert cone_vars(5, definitions, clauses) == {1, 2, 3, 4, 5}
    assert cone_vars(3, definitions, clauses) == {1, 2, 3}
    assert cone_vars(4, definitions, clauses) == {4}


def test_frame_split_obligations_shape():
    model = UpecModel(SOCS["orc"], SCENARIO)
    regs = model.default_commitment()
    fs = model.frame_split_obligations(regs, 1)
    assert isinstance(fs, FrameSplit)
    assert not fs.full
    assert len(fs.obligations) >= 2
    assert len(fs.obligations) == len(fs.groups)
    # Every commitment register lands in exactly one group.
    names = [name for group in fs.groups for name in group]
    assert sorted(names) == sorted(set(names))
    assert set(names) <= {reg.name for reg in regs}
    # The canonical unsplit export rides along and matches a fresh
    # unsplit run's bytes (same fingerprint => same cache key).
    other = UpecModel(SOCS["orc"], SCENARIO)
    unsplit = other.frame_obligation(other.default_commitment(), 1)
    assert fs.full_obligation.fingerprint() == unsplit.fingerprint()
    # Group obligations carry no assumptions (the disjunction is an
    # appended root clause) and distinct metadata.
    for index, ob in enumerate(fs.obligations):
        assert ob.assumptions == []
        assert ob.meta["kind"] == "upec-frame-split"
        assert ob.meta["group_index"] == index
    counters = model.stats()
    assert counters["split_frames"] == 1
    assert counters["split_obligations"] == len(fs.obligations)
    assert counters["split_registers"] >= len(fs.obligations)


def test_split_export_does_not_perturb_unsplit_obligations():
    """Interleaving split exports must not change any later frame's
    unsplit obligation bytes (cache keys unaffected for unsplit mode)."""
    plain = UpecModel(SOCS["orc"], SCENARIO)
    regs_plain = plain.default_commitment()
    expected = [plain.frame_obligation(regs_plain, t).fingerprint()
                for t in (1, 2)]
    mixed = UpecModel(SOCS["orc"], SCENARIO)
    regs_mixed = mixed.default_commitment()
    seen = []
    for t in (1, 2):
        fs = mixed.frame_split_obligations(regs_mixed, t)
        seen.append(fs.full_obligation.fingerprint())
    assert seen == expected


# ----------------------------------------------------------------------
# Checker-level differentials
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", VARIANTS)
def test_checker_split_matches_unsplit(variant):
    baseline_engine = ProofEngine(jobs=1)
    parallel_engine = ProofEngine(jobs=4)
    try:
        baseline = _check_signature(
            _run_check(variant, split=False, engine=baseline_engine))
        for engine in (baseline_engine, parallel_engine):
            assert _check_signature(
                _run_check(variant, split=True, engine=engine)
            ) == baseline, (variant, engine.jobs)
    finally:
        baseline_engine.close()
        parallel_engine.close()


def test_checker_split_matches_unsplit_without_slicing():
    engine = ProofEngine(jobs=1)
    try:
        baseline = _check_signature(
            _run_check("orc", split=False, engine=engine, slice=False))
        assert _check_signature(
            _run_check("orc", split=True, engine=engine, slice=False)
        ) == baseline
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Methodology-level differentials (signature includes witness traces)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", VARIANTS)
def test_methodology_split_matches_unsplit(variant):
    baseline_engine = ProofEngine(jobs=1)
    parallel_engine = ProofEngine(jobs=4)
    try:
        baseline = _methodology_signature(
            _run_methodology(variant, split=False, engine=baseline_engine))
        for engine in (baseline_engine, parallel_engine):
            assert _methodology_signature(
                _run_methodology(variant, split=True, engine=engine)
            ) == baseline, (variant, engine.jobs)
    finally:
        baseline_engine.close()
        parallel_engine.close()


# ----------------------------------------------------------------------
# Cache interplay
# ----------------------------------------------------------------------
def test_split_run_seeds_cache_for_unsplit_run(tmp_path):
    """The pre-exported full-frame obligations share cache keys with
    unsplit runs, so a split run warms the cache across modes, and a
    second split run resolves entirely from cache."""
    cache = str(tmp_path / "cache")
    split_engine = ProofEngine(jobs=1, cache_dir=cache)
    try:
        split_sig = _check_signature(
            _run_check("orc", split=True, engine=split_engine))
        since = split_engine.stats()
        second = _check_signature(
            _run_check("orc", split=True, engine=split_engine))
        delta = split_engine.stats(since=since)
        assert second == split_sig
        assert delta.get("engine_cache_misses", 0) == 0
    finally:
        split_engine.close()
    unsplit_engine = ProofEngine(jobs=1, cache_dir=cache)
    try:
        since = unsplit_engine.stats()
        unsplit_sig = _check_signature(
            _run_check("orc", split=False, engine=unsplit_engine))
        delta = unsplit_engine.stats(since=since)
        assert unsplit_sig == split_sig
        # The alerting frame's unsplit obligation was already solved
        # (and stored) by the split run's alert re-solve.
        assert delta.get("engine_cache_hits", 0) >= 1
    finally:
        unsplit_engine.close()


# ----------------------------------------------------------------------
# Knob plumbing
# ----------------------------------------------------------------------
def test_env_split_knob(monkeypatch):
    from repro.engine.split import env_split

    monkeypatch.delenv("REPRO_ENGINE_SPLIT", raising=False)
    assert env_split() is False
    for value in ("1", "true", "YES", "on"):
        monkeypatch.setenv("REPRO_ENGINE_SPLIT", value)
        assert env_split() is True
    monkeypatch.setenv("REPRO_ENGINE_SPLIT", "0")
    assert env_split() is False


def test_env_split_engages_obligation_path(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_SPLIT", "1")
    model = UpecModel(SOCS["orc"], SCENARIO)
    result = UpecChecker(model).check(k=1)
    assert result.stats.get("split_frames", 0) >= 1


def test_cli_split_flag():
    from repro.cli import main

    assert main(["check", "orc", "--k", "1", "--split", "--json"]) == 1


def test_closure_and_induction_accept_split_knob():
    from repro.core.closure import InductiveDiffProof
    from repro.formal.bmc import BmcEngine
    from repro.formal.induction import prove_by_induction
    from repro.hdl.circuit import Circuit

    proof = InductiveDiffProof(SOCS["secure"], SCENARIO, invariant=[],
                               split=True)
    assert proof.split is True
    circuit = Circuit("split_knob")
    flag = circuit.reg("flag", 1, init=1)
    circuit.next(flag, flag)
    circuit.finalize()
    engine = ProofEngine(jobs=1)
    try:
        result = prove_by_induction(circuit, flag.eq(1), k=1,
                                    engine=engine, split=True)
    finally:
        engine.close()
    assert result.proved
    assert BmcEngine(circuit, split=True).split is True


def test_sweep_threads_split_through_payload():
    from repro.engine.sweep import ScenarioSweep

    sweep = ScenarioSweep.table1_grid(
        variants=["orc"], k=1, uncached=False, split=True,
    )
    payload = sweep._payload(sweep.cells[0])
    assert payload["split"] is True
    result = sweep.run(jobs=1)
    assert result.outcomes[0].result["stats"].get("split_frames", 0) >= 1


def test_sweep_worker_memoizes_soc_per_variant():
    from repro.engine import sweep as sweep_mod

    sweep_mod._SOC_CACHE.clear()
    first = sweep_mod._soc_for("orc")
    assert sweep_mod._soc_for("orc") is first
    assert sweep_mod._soc_for("secure") is not first
