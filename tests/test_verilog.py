"""Tests for the Verilog exporter."""

import io
import re

import pytest

from repro.errors import HdlError
from repro.hdl import Circuit, MemoryArray, cat, mux, select, write_verilog
from repro.hdl.verilog import _sanitize


def export(circuit):
    buf = io.StringIO()
    write_verilog(circuit, buf)
    return buf.getvalue()


def build_counter():
    c = Circuit("counter")
    en = c.input("en", 1)
    cnt = c.reg("cnt", 8, init=0)
    c.next(cnt, mux(en, cnt + 1, cnt))
    c.output("value", cnt)
    return c.finalize()


def test_sanitize():
    assert _sanitize("mem[3]") == "mem_3"
    assert _sanitize("a.b") == "a_b"
    assert _sanitize("3x") == "s_3x"


def test_module_structure():
    text = export(build_counter())
    assert text.startswith("module counter (")
    assert "input clk;" in text
    assert "input en;" in text
    assert "output [7:0] value;" in text
    assert "reg [7:0] cnt;" in text
    assert "always @(posedge clk)" in text
    assert "cnt <= 8'd0;" in text          # reset value
    assert text.rstrip().endswith("endmodule")


def test_balanced_module_and_no_illegal_identifiers():
    c = Circuit("soc_like")
    mem = MemoryArray(c, "mem", depth=4, width=8)
    addr = c.input("addr", 2)
    data = c.input("data", 8)
    we = c.input("we", 1)
    c.output("rdata", mem.read(addr))
    mem.write(addr, data, we)
    c.finalize()
    text = export(c)
    # No brackets-in-names survive.
    assert "mem[0]" not in text
    assert "mem_0" in text
    # Each line with an assign is syntactically closed.
    for line in text.splitlines():
        if line.startswith("assign"):
            assert line.endswith(";")
            assert line.count("(") == line.count(")")


def test_operators_render():
    c = Circuit("ops")
    a = c.input("a", 8)
    b = c.input("b", 8)
    c.output("o1", (a + b) ^ (a & b) | (a - b))
    c.output("o2", mux(a.ult(b), a, b))
    c.output("o3", cat(a[0:4], b[4:8]))
    c.output("o4", a.any())
    c.output("o5", (~a) << 2)
    c.output("o6", a.ule(b))
    c.finalize()
    text = export(c)
    for token in ("+", "^", "&", "-", "?", "{", "|", "<<", "<="):
        assert token in text, token


def test_whole_soc_exports():
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    soc = build_soc(SocConfig.orc(**FORMAL_CONFIG_KWARGS))
    text = export(soc.circuit)
    assert "module soc_orc" in text
    assert "reg [7:0] pc;" in text
    assert "endmodule" in text
    # Sanity: substantial netlist.
    assert text.count("assign") > 200


def test_name_collisions_resolved():
    c = Circuit("t")
    c.reg("x_1", 4)
    c.reg("x[1]", 4)   # sanitizes to x_1 as well -> must be uniquified
    c.finalize()
    text = export(c)
    assert "reg [3:0] x_1;" in text
    assert "reg [3:0] x_1_1;" in text
