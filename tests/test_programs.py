"""Tests for the program templates (boot, handler, attack sequences)."""

import pytest

from repro.errors import IsaError
from repro.soc import Iss, SocConfig, SocSim, build_soc
from repro.soc import isa
from repro.soc.config import SIM_CONFIG_KWARGS
from repro.soc.programs import (
    TRAP_VECTOR,
    boot_code,
    build_image,
    meltdown_sequence,
    orc_sequence,
    trap_handler,
)

CFG = SocConfig.secure(**SIM_CONFIG_KWARGS)
SOC = build_soc(CFG)


def test_trap_handler_skips_faulting_instruction():
    handler = trap_handler()
    assert len(handler) == 4
    assert handler[-1].opcode == isa.OP_MRET


def test_boot_code_protects_and_enters_user_mode():
    user = [isa.li(3, 1), isa.jal(0, 0)]
    image = build_image(CFG, user)
    sim = SocSim(SOC, image.words)
    sim.run_until_halt(image.halt_pc, max_cycles=2000)
    state = sim.arch_state()
    assert state["mode"] == isa.MODE_USER
    assert state["pmpcfg1"] & isa.PMP_A
    assert state["pmpcfg1"] & isa.PMP_L
    secret_eff = CFG.secret_addr % CFG.dmem_words
    assert state["pmpaddr0"] == secret_eff
    assert state["pmpaddr1"] == secret_eff
    assert sim.reg(3) == 1


def test_boot_primes_secret_line():
    user = [isa.jal(0, 0)]
    image = build_image(CFG, user, prime_secret=True)
    memory = [0] * CFG.dmem_words
    memory[SOC.secret_eff_addr] = 0x5C
    sim = SocSim(SOC, image.words, memory=memory)
    sim.run_until_halt(image.halt_pc, max_cycles=2000)
    line = sim.cache_line(SOC.secret_line_index)
    assert line["valid"] == 1
    assert line["tag"] == SOC.secret_line_tag
    assert line["data"] == 0x5C


def test_boot_without_priming():
    user = [isa.jal(0, 0)]
    image = build_image(CFG, user, prime_secret=False)
    sim = SocSim(SOC, image.words)
    sim.run_until_halt(image.halt_pc, max_cycles=2000)
    line = sim.cache_line(SOC.secret_line_index)
    assert not (line["valid"] == 1 and line["tag"] == SOC.secret_line_tag)


def test_image_requires_halt_loop():
    with pytest.raises(IsaError):
        build_image(CFG, [isa.li(1, 1)])


def test_image_requires_matching_trap_vector():
    bad_cfg = SocConfig.secure(trap_vector=3, **{
        k: v for k, v in SIM_CONFIG_KWARGS.items()
    })
    with pytest.raises(IsaError):
        build_image(bad_cfg, [isa.jal(0, 0)])
    assert TRAP_VECTOR == 1


def test_image_size_check():
    small = SocConfig.secure()
    too_big = [isa.nop()] * (small.imem_words) + [isa.jal(0, 0)]
    with pytest.raises(IsaError):
        build_image(small, too_big)


def test_orc_sequence_validation():
    with pytest.raises(IsaError):
        orc_sequence(CFG, guess=CFG.cache_lines)
    with pytest.raises(IsaError):
        orc_sequence(CFG, guess=0, array_base=1)  # unaligned
    seq = orc_sequence(CFG, guess=3)
    opcodes = [i.opcode for i in seq]
    assert opcodes.count(isa.OP_LB) == 3   # prime + illegal + dependent
    assert isa.OP_SB in opcodes
    assert opcodes[-1] == isa.OP_JAL


def test_meltdown_sequence_structure():
    seq = meltdown_sequence(CFG, probe_addr=5, prime_base=16)
    opcodes = [i.opcode for i in seq]
    # Primes all lines but the secret's, plus illegal + dependent + probe.
    assert opcodes.count(isa.OP_LB) == (CFG.cache_lines - 1) + 3
    assert opcodes[-1] == isa.OP_JAL


def test_meltdown_sequence_line_limit():
    big = SocConfig.secure(
        imem_words=128, dmem_words=128, cache_lines=64,
        write_pending_cycles=4, miss_latency=4, secret_addr=100,
    )
    with pytest.raises(IsaError):
        meltdown_sequence(big, probe_addr=0, prime_base=0)


def test_image_matches_iss_execution():
    """The full boot+handler+user image runs identically on RTL and ISS."""
    user = [
        isa.li(2, 3),
        isa.sb(2, 0, 2),
        isa.lb(3, 0, 2),
        isa.jal(0, 0),
    ]
    image = build_image(CFG, user)
    sim = SocSim(SOC, image.words)
    sim.run_until_halt(image.halt_pc, max_cycles=3000)
    iss = Iss(CFG, image.words)
    iss.run(3000, stop_pc=image.halt_pc)
    assert iss.pc == image.halt_pc
    for i in range(1, isa.NUM_REGS):
        assert sim.reg(i) == iss.regs[i], f"x{i}"
