"""Tests for VCD waveform export."""

import io

import pytest

from repro.errors import SimulationError
from repro.hdl import Circuit, mux
from repro.sim import Simulator, VcdWriter, dump_vcd
from repro.sim.vcd import _identifier


def build_counter():
    c = Circuit("counter")
    cnt = c.reg("cnt", 8, init=0)
    flag = c.reg("flag", 1, init=0)
    c.next(cnt, cnt + 1)
    c.next(flag, cnt[0])
    return c.finalize()


def test_identifier_uniqueness():
    idents = {_identifier(i) for i in range(500)}
    assert len(idents) == 500


def test_vcd_header_and_samples():
    buf = io.StringIO()
    sim = Simulator(build_counter())
    dump_vcd(sim, buf, ["cnt", "flag"], cycles=4)
    text = buf.getvalue()
    assert "$timescale" in text
    assert "$var wire 8" in text
    assert "$var wire 1" in text
    assert "$enddefinitions" in text
    assert "#0" in text and "#3" in text


def test_vcd_emits_only_changes():
    buf = io.StringIO()
    c = Circuit("t")
    r = c.reg("r", 4, init=7)
    c.finalize()  # r holds forever
    sim = Simulator(c)
    dump_vcd(sim, buf, ["r"], cycles=5)
    text = buf.getvalue()
    # Only the initial sample carries a value change.
    assert text.count("b111 ") == 1


def test_vcd_unknown_signal_rejected():
    sim = Simulator(build_counter())
    with pytest.raises(SimulationError):
        dump_vcd(sim, io.StringIO(), ["nope"], cycles=1)


def test_vcd_writer_requires_signals():
    with pytest.raises(SimulationError):
        VcdWriter(io.StringIO(), {})


def test_vcd_bracket_names_sanitized():
    buf = io.StringIO()
    writer = VcdWriter(buf, {"mem[0]": 8})
    assert "mem(0)" in buf.getvalue()


def test_vcd_on_soc():
    from repro.soc import SocConfig, SocSim
    from repro.soc import isa

    sim = SocSim.from_config(
        SocConfig.secure(),
        [i.encode() for i in [isa.li(1, 3), isa.jal(0, 0)]],
    )
    buf = io.StringIO()
    dump_vcd(sim.sim, buf, ["pc", "x1", "mode"], cycles=10)
    assert "$var" in buf.getvalue()
