"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info_command(capsys):
    assert main(["info", "orc"]) == 0
    out = capsys.readouterr().out
    assert "orc" in out
    assert "state_bits" in out
    assert "bypass" in out


def test_info_sim_geometry(capsys):
    assert main(["info", "secure", "--geometry", "sim"]) == 0
    out = capsys.readouterr().out
    assert "secure" in out


def test_check_finds_alert_on_orc(capsys):
    rc = main(["check", "orc", "--k", "2"])
    out = capsys.readouterr().out
    assert rc == 1  # P-alert exit code
    assert "P-alert" in out


def test_check_uncached_secure_proves(capsys):
    rc = main(["check", "secure", "--uncached", "--k", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "proved" in out


def test_methodology_insecure_exit_code(capsys):
    rc = main(["methodology", "orc", "--k", "2"])
    out = capsys.readouterr().out
    assert rc == 2
    assert "insecure" in out


def test_parser_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["info", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_solver_flags_uniform_across_sat_commands():
    """check / methodology / sweep share one solver flag set."""
    parser = build_parser()
    for argv in (
        ["check", "secure", "--no-preprocess", "--stats", "--json",
         "--jobs", "2", "--cache-dir", "/tmp/c", "--conflict-limit", "9"],
        ["methodology", "secure", "--no-preprocess", "--stats", "--json",
         "--jobs", "2", "--cache-dir", "/tmp/c", "--conflict-limit", "9"],
        ["sweep", "--no-preprocess", "--stats", "--json",
         "--jobs", "2", "--cache-dir", "/tmp/c", "--conflict-limit", "9"],
    ):
        args = parser.parse_args(argv)
        assert args.no_preprocess and args.stats and args.json
        assert args.jobs == 2 and args.cache_dir == "/tmp/c"
        assert args.conflict_limit == 9
    args = parser.parse_args(["attack", "orc", "secure", "--stats",
                              "--json"])
    assert args.stats and args.json


def test_check_json_output(capsys):
    import json

    rc = main(["check", "orc", "--k", "1", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert data["status"] == "alert"
    assert data["alert"]["kind"] == "P"
    assert "scenario" in data


def test_methodology_json_and_cache(tmp_path, capsys):
    import json

    cache_dir = str(tmp_path / "proofs")
    rc = main(["methodology", "orc", "--k", "1", "--json",
               "--cache-dir", cache_dir])
    first = json.loads(capsys.readouterr().out)
    assert rc == 2
    assert first["verdict"] in ("insecure", "undecided", "secure_bounded")
    assert first["stats"]["engine_cache_hits"] == 0
    main(["methodology", "orc", "--k", "1", "--json",
          "--cache-dir", cache_dir])
    second = json.loads(capsys.readouterr().out)
    assert second["stats"]["engine_cache_hits"] > 0
    assert second["verdict"] == first["verdict"]
    assert second["p_alerts"] == first["p_alerts"]


def test_sweep_command(capsys):
    rc = main(["sweep", "--variants", "secure,orc", "--k", "1",
               "--scenarios", "cached"])
    out = capsys.readouterr().out
    assert rc == 2  # the orc bypass leaks within a single frame
    assert "secure/cached/k=1" in out
    assert "orc/cached/k=1" in out
    assert "insecure" in out


def test_sweep_rejects_unknown_variant(capsys):
    rc = main(["sweep", "--variants", "nope"])
    assert rc == 64


def test_attack_stats_flag(capsys):
    rc = main(["attack", "orc", "secure", "--stats"])
    out = capsys.readouterr().out
    assert rc == 0  # the secure design leaks nothing
    assert "probes" in out
    assert "no leak" in out


# ----------------------------------------------------------------------
# Usage-error fail-fast (--jobs) and distributed flags
# ----------------------------------------------------------------------
def test_sweep_jobs_zero_fails_fast(capsys):
    rc = main(["sweep", "--variants", "secure", "--k", "1", "--jobs", "0"])
    assert rc == 64
    err = capsys.readouterr().err
    assert "usage error" in err and "--jobs" in err


def test_sweep_jobs_negative_fails_fast(capsys):
    rc = main(["sweep", "--variants", "secure", "--k", "1", "--jobs", "-3"])
    assert rc == 64
    assert "--jobs" in capsys.readouterr().err


def test_check_and_methodology_reject_nonpositive_jobs(capsys):
    assert main(["check", "secure", "--jobs", "0"]) == 64
    assert main(["methodology", "secure", "--jobs", "-1"]) == 64


def test_connect_rejects_malformed_address(capsys):
    rc = main(["check", "secure", "--connect", "not-an-address"])
    assert rc == 64
    assert "HOST:PORT" in capsys.readouterr().err


def test_connect_conflicts_with_jobs(capsys):
    rc = main(["methodology", "secure", "--connect", "h:1", "--jobs", "2"])
    assert rc == 64
    assert "--connect" in capsys.readouterr().err


def test_connect_unreachable_broker_exits_69(capsys):
    rc = main(["check", "secure", "--k", "1",
               "--connect", "127.0.0.1:1"])
    assert rc == 69
    assert "cannot reach broker" in capsys.readouterr().err


def test_serve_and_worker_parsers():
    parser = build_parser()
    args = parser.parse_args(["serve", "--port", "0",
                              "--heartbeat-timeout", "2.5"])
    assert args.port == 0 and args.heartbeat_timeout == 2.5
    args = parser.parse_args(["worker", "--connect", "h:1",
                              "--cache-dir", "/tmp/c", "--name", "w9"])
    assert args.connect == "h:1" and args.name == "w9"
    with pytest.raises(SystemExit):
        parser.parse_args(["worker"])  # --connect is required


def test_connect_flag_uniform_across_sat_commands():
    parser = build_parser()
    for argv in (
        ["check", "secure", "--connect", "h:1"],
        ["methodology", "secure", "--connect", "h:1"],
        ["sweep", "--connect", "h:1"],
    ):
        assert parser.parse_args(argv).connect == "h:1"


def test_explicit_jobs_overrides_env_connect(monkeypatch):
    """REPRO_ENGINE_CONNECT is a default, not a mandate: an explicit
    --jobs routes back to the local pool instead of erroring (or
    touching the unreachable broker address)."""
    monkeypatch.setenv("REPRO_ENGINE_CONNECT", "127.0.0.1:1")
    rc = main(["check", "secure", "--uncached", "--k", "1", "--jobs", "1"])
    assert rc == 0  # solved locally; the dead broker was never dialed


def test_explicit_connect_with_jobs_still_errors(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_ENGINE_CONNECT", raising=False)
    rc = main(["check", "secure", "--connect", "h:1", "--jobs", "2"])
    assert rc == 64
    assert "--connect" in capsys.readouterr().err


def test_serve_port_in_use_exits_69(capsys):
    import socket

    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    port = blocker.getsockname()[1]
    try:
        rc = main(["serve", "--port", str(port)])
    finally:
        blocker.close()
    assert rc == 69
    assert "cannot listen" in capsys.readouterr().err


def test_connect_port_out_of_range_is_usage_error(capsys):
    rc = main(["check", "secure", "--connect", "127.0.0.1:99999"])
    assert rc == 64
    assert "port out of range" in capsys.readouterr().err


def test_serve_rejects_flappy_heartbeat_timeout(capsys):
    rc = main(["serve", "--port", "0", "--heartbeat-timeout", "0.5"])
    assert rc == 64
    assert "heartbeat" in capsys.readouterr().err
