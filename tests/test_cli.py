"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info_command(capsys):
    assert main(["info", "orc"]) == 0
    out = capsys.readouterr().out
    assert "orc" in out
    assert "state_bits" in out
    assert "bypass" in out


def test_info_sim_geometry(capsys):
    assert main(["info", "secure", "--geometry", "sim"]) == 0
    out = capsys.readouterr().out
    assert "secure" in out


def test_check_finds_alert_on_orc(capsys):
    rc = main(["check", "orc", "--k", "2"])
    out = capsys.readouterr().out
    assert rc == 1  # P-alert exit code
    assert "P-alert" in out


def test_check_uncached_secure_proves(capsys):
    rc = main(["check", "secure", "--uncached", "--k", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "proved" in out


def test_methodology_insecure_exit_code(capsys):
    rc = main(["methodology", "orc", "--k", "2"])
    out = capsys.readouterr().out
    assert rc == 2
    assert "insecure" in out


def test_parser_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["info", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
