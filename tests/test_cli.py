"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info_command(capsys):
    assert main(["info", "orc"]) == 0
    out = capsys.readouterr().out
    assert "orc" in out
    assert "state_bits" in out
    assert "bypass" in out


def test_info_sim_geometry(capsys):
    assert main(["info", "secure", "--geometry", "sim"]) == 0
    out = capsys.readouterr().out
    assert "secure" in out


def test_check_finds_alert_on_orc(capsys):
    rc = main(["check", "orc", "--k", "2"])
    out = capsys.readouterr().out
    assert rc == 1  # P-alert exit code
    assert "P-alert" in out


def test_check_uncached_secure_proves(capsys):
    rc = main(["check", "secure", "--uncached", "--k", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "proved" in out


def test_methodology_insecure_exit_code(capsys):
    rc = main(["methodology", "orc", "--k", "2"])
    out = capsys.readouterr().out
    assert rc == 2
    assert "insecure" in out


def test_parser_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["info", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_solver_flags_uniform_across_sat_commands():
    """check / methodology / sweep share one solver flag set."""
    parser = build_parser()
    for argv in (
        ["check", "secure", "--no-preprocess", "--stats", "--json",
         "--jobs", "2", "--cache-dir", "/tmp/c", "--conflict-limit", "9"],
        ["methodology", "secure", "--no-preprocess", "--stats", "--json",
         "--jobs", "2", "--cache-dir", "/tmp/c", "--conflict-limit", "9"],
        ["sweep", "--no-preprocess", "--stats", "--json",
         "--jobs", "2", "--cache-dir", "/tmp/c", "--conflict-limit", "9"],
    ):
        args = parser.parse_args(argv)
        assert args.no_preprocess and args.stats and args.json
        assert args.jobs == 2 and args.cache_dir == "/tmp/c"
        assert args.conflict_limit == 9
    args = parser.parse_args(["attack", "orc", "secure", "--stats",
                              "--json"])
    assert args.stats and args.json


def test_check_json_output(capsys):
    import json

    rc = main(["check", "orc", "--k", "1", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert data["status"] == "alert"
    assert data["alert"]["kind"] == "P"
    assert "scenario" in data


def test_methodology_json_and_cache(tmp_path, capsys):
    import json

    cache_dir = str(tmp_path / "proofs")
    rc = main(["methodology", "orc", "--k", "1", "--json",
               "--cache-dir", cache_dir])
    first = json.loads(capsys.readouterr().out)
    assert rc == 2
    assert first["verdict"] in ("insecure", "undecided", "secure_bounded")
    assert first["stats"]["engine_cache_hits"] == 0
    main(["methodology", "orc", "--k", "1", "--json",
          "--cache-dir", cache_dir])
    second = json.loads(capsys.readouterr().out)
    assert second["stats"]["engine_cache_hits"] > 0
    assert second["verdict"] == first["verdict"]
    assert second["p_alerts"] == first["p_alerts"]


def test_sweep_command(capsys):
    rc = main(["sweep", "--variants", "secure,orc", "--k", "1",
               "--scenarios", "cached"])
    out = capsys.readouterr().out
    assert rc == 2  # the orc bypass leaks within a single frame
    assert "secure/cached/k=1" in out
    assert "orc/cached/k=1" in out
    assert "insecure" in out


def test_sweep_rejects_unknown_variant(capsys):
    rc = main(["sweep", "--variants", "nope"])
    assert rc == 64


def test_attack_stats_flag(capsys):
    rc = main(["attack", "orc", "secure", "--stats"])
    out = capsys.readouterr().out
    assert rc == 0  # the secure design leaks nothing
    assert "probes" in out
    assert "no leak" in out
