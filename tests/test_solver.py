"""Unit and property tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormalError
from repro.formal.solver import CdclSolver, luby_sequence


def brute_force_sat(nvars, clauses):
    """Reference: exhaustive satisfiability check."""
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for clause in clauses:
            if not any(
                bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1] for l in clause
            ):
                ok = False
                break
        if ok:
            return True
    return False


def make_solver(nvars, clauses):
    solver = CdclSolver()
    for _ in range(nvars):
        solver.new_var()
    solver.add_clauses(clauses)
    return solver


def check_model(solver, clauses):
    for clause in clauses:
        assert any(solver.model_value(l) for l in clause), f"clause {clause} unsat"


def test_trivial_sat():
    solver = make_solver(1, [[1]])
    assert solver.solve() is True
    assert solver.model_value(1) is True
    assert solver.model_value(-1) is False


def test_trivial_unsat():
    solver = make_solver(1, [[1], [-1]])
    assert solver.solve() is False


def test_empty_formula_is_sat():
    solver = make_solver(3, [])
    assert solver.solve() is True


def test_empty_clause_is_unsat():
    solver = CdclSolver()
    solver.new_var()
    assert solver.add_clause([]) is False
    assert solver.solve() is False


def test_tautology_dropped():
    solver = make_solver(2, [[1, -1], [2]])
    assert solver.solve() is True
    assert solver.model_value(2)


def test_duplicate_literals_handled():
    solver = make_solver(2, [[1, 1, 2]])
    assert solver.solve() is True


def test_unknown_variable_rejected():
    solver = CdclSolver()
    with pytest.raises(FormalError):
        solver.add_clause([1])
    with pytest.raises(FormalError):
        solver._to_internal(0)


def test_unit_propagation_chain():
    # x1 -> x2 -> x3 -> x4, x1 forced.
    clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
    solver = make_solver(4, clauses)
    assert solver.solve() is True
    assert all(solver.model_value(v) for v in range(1, 5))


def test_pigeonhole_3_into_2_unsat():
    """PHP(3,2): 3 pigeons into 2 holes — classic small UNSAT instance."""
    # var p_{i,j} = pigeon i in hole j ; i in 0..2, j in 0..1
    def var(i, j):
        return i * 2 + j + 1

    clauses = [[var(i, 0), var(i, 1)] for i in range(3)]
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                clauses.append([-var(i1, j), -var(i2, j)])
    solver = make_solver(6, clauses)
    assert solver.solve() is False


def test_pigeonhole_4_into_3_unsat():
    def var(i, j):
        return i * 3 + j + 1

    clauses = [[var(i, j) for j in range(3)] for i in range(4)]
    for j in range(3):
        for i1 in range(4):
            for i2 in range(i1 + 1, 4):
                clauses.append([-var(i1, j), -var(i2, j)])
    solver = make_solver(12, clauses)
    assert solver.solve() is False
    assert solver.stats.conflicts > 0


def test_assumptions_sat_then_unsat():
    solver = make_solver(2, [[1, 2]])
    assert solver.solve(assumptions=[-1]) is True
    assert solver.model_value(2) is True
    assert solver.solve(assumptions=[-1, -2]) is False
    # Solver remains usable after an UNSAT-under-assumptions result.
    assert solver.solve() is True


def test_contradictory_assumptions():
    solver = make_solver(2, [[1, 2]])
    assert solver.solve(assumptions=[1, -1]) is False
    assert solver.solve() is True


def test_assumption_against_unit():
    solver = make_solver(1, [[1]])
    assert solver.solve(assumptions=[-1]) is False
    assert solver.solve(assumptions=[1]) is True


def test_incremental_reuse_many_queries():
    # 8-bit adder-free sanity: x_i distinct queries under assumptions.
    solver = make_solver(4, [[1, 2], [3, 4], [-1, -3]])
    results = []
    for a in ([1], [-1], [3], [1, 3]):
        results.append(solver.solve(assumptions=a))
    assert results == [True, True, True, False]


def test_model_requires_sat():
    solver = make_solver(1, [[1], [-1]])
    assert solver.solve() is False
    with pytest.raises(FormalError):
        solver.model_value(1)


def test_model_vector():
    solver = make_solver(2, [[1], [-2]])
    assert solver.solve() is True
    model = solver.model()
    assert model[1] is True and model[2] is False


def test_conflict_limit_returns_none():
    # PHP(5,4) takes enough conflicts to hit a tiny limit.
    def var(i, j):
        return i * 4 + j + 1

    clauses = [[var(i, j) for j in range(4)] for i in range(5)]
    for j in range(4):
        for i1 in range(5):
            for i2 in range(i1 + 1, 5):
                clauses.append([-var(i1, j), -var(i2, j)])
    solver = make_solver(20, clauses)
    result = solver.solve(conflict_limit=2)
    assert result is None
    # And it can still finish the proof afterwards.
    assert solver.solve() is False


def test_luby_sequence():
    assert luby_sequence(15) == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


@st.composite
def random_cnf(draw):
    nvars = draw(st.integers(min_value=1, max_value=8))
    nclauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(nclauses):
        size = draw(st.integers(min_value=1, max_value=4))
        clause = [
            draw(st.integers(min_value=1, max_value=nvars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(size)
        ]
        clauses.append(clause)
    return nvars, clauses


@settings(max_examples=150, deadline=None)
@given(random_cnf())
def test_solver_agrees_with_brute_force(problem):
    nvars, clauses = problem
    solver = make_solver(nvars, clauses)
    expected = brute_force_sat(nvars, clauses)
    assert solver.solve() is expected
    if expected:
        check_model(solver, clauses)


@settings(max_examples=60, deadline=None)
@given(random_cnf(), st.lists(st.integers(min_value=1, max_value=4), max_size=3))
def test_solver_assumptions_agree_with_brute_force(problem, assumed_vars):
    nvars, clauses = problem
    assumptions = sorted({v for v in assumed_vars if v <= nvars})
    solver = make_solver(nvars, clauses)
    expected = brute_force_sat(nvars, clauses + [[a] for a in assumptions])
    assert solver.solve(assumptions=assumptions) is expected
    if expected:
        check_model(solver, clauses)
        for a in assumptions:
            assert solver.model_value(a)


@settings(max_examples=40, deadline=None)
@given(random_cnf())
def test_solver_stable_across_repeat_solves(problem):
    nvars, clauses = problem
    solver = make_solver(nvars, clauses)
    first = solver.solve()
    assert solver.solve() is first


def test_cancel_check_aborts_search():
    from repro.formal.solver import CANCEL_CHECK_EVERY

    # PHP(8,7): thousands of conflicts to refute, so the poll (every
    # CANCEL_CHECK_EVERY conflicts) is guaranteed to fire.
    holes = 7

    def var(i, j):
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(8)]
    for j in range(holes):
        for i1 in range(8):
            for i2 in range(i1 + 1, 8):
                clauses.append([-var(i1, j), -var(i2, j)])
    solver = make_solver(8 * holes, clauses)
    assert solver.solve(cancel_check=lambda: True) is None
    # The abort happens at the first poll, not after the full refutation.
    assert solver.stats.conflicts <= 2 * CANCEL_CHECK_EVERY
    # A cancelled solver is reusable (backtracked to level 0).
    assert solver.solve(conflict_limit=1) is None


def test_cancel_check_false_does_not_change_verdicts():
    solver = make_solver(2, [[1, 2], [-1, 2]])
    assert solver.solve(cancel_check=lambda: False) is True
    unsat = make_solver(1, [[1], [-1]])
    assert unsat.solve(cancel_check=lambda: False) is False
