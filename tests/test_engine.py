"""Unit tests for the obligation/scheduler/cache engine layers."""

import pytest

from repro.engine import (
    ProofEngine,
    ProofObligation,
    ResultCache,
    SolverPool,
    pack_model,
    solve_obligation,
    unpack_model,
)
from repro.formal.bmc import SatContext


# ----------------------------------------------------------------------
# Model packing
# ----------------------------------------------------------------------
def test_pack_unpack_roundtrip():
    values = [False, True, True, False, True, False, False, True, True]
    packed = pack_model(values)
    assert unpack_model(packed, len(values) - 1) == values


def test_unpack_defaults_false_beyond_data():
    packed = pack_model([False, True])
    out = unpack_model(packed, 20)
    assert out[1] is True
    assert all(v is False for v in out[2:])


# ----------------------------------------------------------------------
# Obligations
# ----------------------------------------------------------------------
def _obligation(clauses, assumptions=(), name="t", simplify=False,
                conflict_limit=None, nvars=None):
    if nvars is None:
        nvars = max(
            (abs(l) for c in clauses for l in c),
            default=0,
        )
        nvars = max([nvars] + [abs(a) for a in assumptions])
    return ProofObligation(
        name=name, nvars=nvars,
        clauses=[list(c) for c in clauses],
        assumptions=list(assumptions),
        simplify=simplify, conflict_limit=conflict_limit,
    )


def test_solve_obligation_sat_with_model():
    ob = _obligation([[1, 2], [-1, 2]])
    verdict = solve_obligation(ob)
    assert verdict.sat
    model = verdict.model_list()
    assert model[2] is True  # 2 is forced by resolution


def test_solve_obligation_unsat():
    ob = _obligation([[1], [-1]])
    verdict = solve_obligation(ob)
    assert verdict.unsat
    with pytest.raises(ValueError):
        verdict.model_list()


def test_solve_obligation_respects_assumptions():
    ob = _obligation([[1, 2]], assumptions=[-1])
    verdict = solve_obligation(ob)
    assert verdict.sat
    assert verdict.model_list()[2] is True


def test_solve_obligation_unknown_on_conflict_limit():
    def var(i, j):
        return i * 5 + j + 1

    clauses = [[var(i, j) for j in range(5)] for i in range(6)]
    for j in range(5):
        for i1 in range(6):
            for i2 in range(i1 + 1, 6):
                clauses.append([-var(i1, j), -var(i2, j)])
    ob = _obligation(clauses, conflict_limit=2)
    assert solve_obligation(ob).status == "unknown"


def test_fingerprint_is_content_addressed():
    a = _obligation([[1, 2], [-1]], assumptions=[2])
    b = _obligation([[1, 2], [-1]], assumptions=[2], name="other")
    c = _obligation([[1, 2], [-2]], assumptions=[2])
    d = _obligation([[1, 2], [-1]], assumptions=[-2])
    assert a.fingerprint() == b.fingerprint()   # names don't matter
    assert a.fingerprint() != c.fingerprint()   # clauses do
    assert a.fingerprint() != d.fingerprint()   # assumptions do
    # ... and the conflict limit does not (a definite verdict is valid
    # under any limit).
    e = _obligation([[1, 2], [-1]], assumptions=[2], conflict_limit=17)
    assert a.fingerprint() == e.fingerprint()


def test_verdict_dict_roundtrip():
    verdict = solve_obligation(_obligation([[1, 2]]))
    from repro.engine.obligation import Verdict

    again = Verdict.from_dict(verdict.to_dict())
    assert again.status == verdict.status
    assert again.model_list() == verdict.model_list()
    assert again.fingerprint == verdict.fingerprint


# ----------------------------------------------------------------------
# SatContext export
# ----------------------------------------------------------------------
@pytest.mark.parametrize("simplify", [False, True])
def test_context_export_matches_inline_solve(simplify):
    ctx = SatContext(simplify=simplify)
    aig = ctx.aig
    a, b, c = aig.new_inputs(3)
    ctx.assert_lit(aig.or_(a, b))
    target = aig.and_(aig.xor_(a, b), c)
    ob = ctx.export_obligation("xor-sat", assumptions=[target])
    verdict = solve_obligation(ob)
    inline = ctx.solve(assumptions=[target])
    assert verdict.sat and inline is True
    # UNSAT side: a & ~a is constant FALSE at the AIG level already, so
    # use a CNF-level contradiction instead.
    ctx2 = SatContext(simplify=simplify)
    aig2 = ctx2.aig
    x = aig2.new_input()
    ctx2.assert_lit(x)
    ob2 = ctx2.export_obligation("contradiction", assumptions=[x ^ 1])
    assert solve_obligation(ob2).unsat
    assert ctx2.solve(assumptions=[x ^ 1]) is False


def test_context_adopt_model_feeds_value_reads():
    ctx = SatContext(simplify=True)
    aig = ctx.aig
    a, b = aig.new_inputs(2)
    ctx.assert_lit(aig.and_(a, b))
    ob = ctx.export_obligation("and-sat")
    verdict = solve_obligation(ob)
    assert verdict.sat
    ctx.adopt_model(verdict.model_list())
    assert ctx.value(a) is True and ctx.value(b) is True
    # A fresh in-process solve clears the adopted model.
    assert ctx.solve() is True
    assert ctx.value(aig.and_(a, b)) is True


def test_sliced_export_drops_unrelated_cones():
    """Cones mapped for other queries do not ride along in a sliced
    obligation; adopting a worker verdict completes the dropped gates by
    evaluation, so out-of-slice values stay consistent with the circuit."""
    ctx = SatContext(simplify=True)
    aig = ctx.aig
    a, b, c, d = aig.new_inputs(4)
    ctx.assert_lit(c)
    ctx.assert_lit(d)
    target = aig.and_(a, b)
    other = aig.and_(c, d)
    ctx.mapper.assumption(other)       # unrelated emitted cone
    sliced = ctx.export_obligation("t", assumptions=[target], slice=True)
    full = ctx.export_obligation("t", assumptions=[target], slice=False)
    assert sliced.size()["clauses"] < full.size()["clauses"]
    assert sliced.remap is not None and sliced.orig_nvars == full.nvars
    verdict = solve_obligation(sliced)
    assert verdict.sat
    ctx.adopt_verdict(sliced, verdict)
    assert ctx.value(a) is True and ctx.value(b) is True
    # The dropped AND(c, d) gate reads as the evaluation of its forced
    # fan-in (c = d = True), not as a zero-filled don't-care.
    assert ctx.value(other) is True


def test_slice_fingerprint_ignores_remap_bookkeeping():
    """Contexts that diverge *after* a query's cone was first mapped
    produce obligations with different remaps but identical fingerprints
    (the canonical-walk guarantee the UPEC frame order relies on)."""
    def export(grow):
        ctx = SatContext(simplify=True)
        aig = ctx.aig
        a, b, c = aig.new_inputs(3)
        target = aig.and_(a, b)
        ctx.mapper.assumption(target)          # shared walk prefix
        if grow:
            ctx.mapper.assumption(aig.xor_(b, c))   # divergent growth
        return ctx.export_obligation("q", assumptions=[target],
                                     slice=True)

    plain, grown = export(False), export(True)
    assert plain.fingerprint() == grown.fingerprint()
    assert plain.clauses == grown.clauses
    assert plain.remap != grown.remap
    assert grown.remap is not None and plain.remap is None


# ----------------------------------------------------------------------
# SolverPool
# ----------------------------------------------------------------------
def _batch(n):
    # Alternating SAT/UNSAT instances, each trivially distinguishable.
    obs = []
    for i in range(n):
        if i % 2:
            obs.append(_obligation([[1], [-1]], name=f"unsat{i}"))
        else:
            obs.append(_obligation([[1]], name=f"sat{i}"))
    return obs


def test_pool_ordered_results_jobs1_and_jobs2_agree():
    obs = _batch(6)
    with SolverPool(jobs=1) as seq, SolverPool(jobs=2) as par:
        r1 = seq.solve_ordered(obs)
        r2 = par.solve_ordered(obs)
    assert [v.status for v in r1] == [v.status for v in r2]
    assert [v.fingerprint for v in r1] == [v.fingerprint for v in r2]


def test_pool_early_stop_cancels_siblings():
    obs = _batch(6)  # sat at index 0 stops everything after it
    with SolverPool(jobs=1) as pool:
        results = pool.solve_ordered(obs, early_stop=lambda v: v.sat)
    assert results[0].sat
    assert all(v is None for v in results[1:])
    with SolverPool(jobs=2) as pool:
        results = pool.solve_ordered(obs, early_stop=lambda v: v.sat)
    assert results[0].sat
    assert all(v is None for v in results[1:])


# ----------------------------------------------------------------------
# ResultCache / ProofEngine
# ----------------------------------------------------------------------
def test_cache_store_lookup_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    ob = _obligation([[1, 2], [-1, 2]])
    assert cache.lookup(ob) is None
    verdict = solve_obligation(ob)
    cache.store(ob, verdict)
    hit = cache.lookup(ob)
    assert hit is not None and hit.cached
    assert hit.status == verdict.status
    assert hit.model_list() == verdict.model_list()
    assert len(cache) == 1


def test_cache_skips_unknown_verdicts(tmp_path):
    cache = ResultCache(str(tmp_path))
    ob = _obligation([[1, 2]], conflict_limit=0)
    verdict = solve_obligation(ob)
    # Force an unknown for the store path regardless of solver behaviour.
    verdict.status = "unknown"
    verdict.model = None
    cache.store(ob, verdict)
    assert cache.lookup(ob) is None


def test_cache_cleans_orphaned_tmp_files(tmp_path):
    """Stale *.tmp files from writers that died mid-store are removed on
    init; real verdict files — and *young* temp files, which may be a
    live concurrent worker's in-flight write — survive."""
    import os

    cache = ResultCache(str(tmp_path))
    ob = _obligation([[1, 2]])
    cache.store(ob, solve_obligation(ob))
    stale = tmp_path / "abc123.tmp"
    stale.write_text("partial write")
    old = os.path.getmtime(stale) - 7200
    os.utime(stale, (old, old))
    live = tmp_path / "inflight.tmp"
    live.write_text("concurrent writer")
    cache2 = ResultCache(str(tmp_path))
    assert not stale.exists()
    assert live.exists()
    assert cache2.lookup(ob) is not None
    assert len(cache2) == 1


def _sized_obligations(n):
    """Distinct obligations with near-identical stored-entry sizes."""
    return [_obligation([[i + 1, i + 2], [-(i + 1), i + 2]],
                        name=f"ob{i}", nvars=12)
            for i in range(n)]


def test_cache_lru_eviction_order(tmp_path):
    obs = _sized_obligations(4)
    verdicts = [solve_obligation(ob) for ob in obs]
    cache = ResultCache(str(tmp_path))
    for ob, verdict in zip(obs[:3], verdicts[:3]):
        cache.store(ob, verdict)
    entry_size = max(e["size"] for e in cache._entries.values())
    # Cap at three entries; touch ob0 so ob1 becomes least-recent.
    cache.max_bytes = 3 * entry_size + entry_size // 2
    assert cache.lookup(obs[0]) is not None
    cache.store(obs[3], verdicts[3])
    assert cache.lookup(obs[1]) is None          # evicted: least recent
    assert cache.lookup(obs[0]) is not None      # kept: recently touched
    assert cache.lookup(obs[2]) is not None
    assert cache.lookup(obs[3]) is not None
    assert len(cache) == 3


def test_cache_eviction_survives_reopen(tmp_path):
    """Recency persists through the index file: a new ResultCache over
    the same directory evicts in the order established before."""
    obs = _sized_obligations(4)
    verdicts = [solve_obligation(ob) for ob in obs]
    cache = ResultCache(str(tmp_path))
    for ob, verdict in zip(obs[:2], verdicts[:2]):
        cache.store(ob, verdict)
    cache.flush()   # index writes are batched; persist the recency now
    entry_size = max(e["size"] for e in cache._entries.values())
    reopened = ResultCache(str(tmp_path),
                           max_bytes=2 * entry_size + entry_size // 2)
    assert reopened.lookup(obs[0]) is not None   # ob0 most recent now
    reopened.store(obs[2], verdicts[2])
    assert reopened.lookup(obs[1]) is None
    assert reopened.lookup(obs[0]) is not None


def test_cache_corrupted_index_recovers(tmp_path):
    obs = _sized_obligations(3)
    cache = ResultCache(str(tmp_path))
    for ob in obs[:2]:
        cache.store(ob, solve_obligation(ob))
    (tmp_path / "_index.json").write_text("{not json at all")
    recovered = ResultCache(str(tmp_path))
    # Both verdicts still served; the index was rebuilt from the listing.
    assert recovered.lookup(obs[0]) is not None
    assert recovered.lookup(obs[1]) is not None
    assert set(recovered._entries) == \
        {ob.fingerprint() for ob in obs[:2]}
    # Stores (and pruning) keep working after recovery.
    recovered.store(obs[2], solve_obligation(obs[2]))
    assert len(recovered) == 3
    fresh = ResultCache(str(tmp_path))
    assert set(fresh._entries) == {ob.fingerprint() for ob in obs}


def test_cache_corrupt_verdict_payload_is_quarantined_miss(tmp_path):
    """A truncated or bit-flipped verdict file must read as a miss (and
    be moved to _quarantine/ for post-mortem), never crash a lookup or
    serve garbage as a proof result."""
    obs = _sized_obligations(2)
    cache = ResultCache(str(tmp_path))
    for ob in obs:
        cache.store(ob, solve_obligation(ob))
    path0 = tmp_path / f"{obs[0].fingerprint()}.json"
    path1 = tmp_path / f"{obs[1].fingerprint()}.json"
    # Truncation: half the bytes of a valid entry.
    blob = path0.read_bytes()
    path0.write_bytes(blob[:len(blob) // 2])
    # Bit flip inside the payload: still valid-looking JSON or not,
    # the CRC no longer matches.
    blob = bytearray(path1.read_bytes())
    blob[len(blob) // 2] ^= 0x20
    path1.write_bytes(bytes(blob))
    victim = ResultCache(str(tmp_path))
    assert victim.lookup(obs[0]) is None
    assert victim.lookup(obs[1]) is None
    assert victim.quarantined == 2
    # Quarantined, not deleted — and out of the serving directory.
    qdir = tmp_path / "_quarantine"
    assert sorted(p.name for p in qdir.iterdir()) == sorted(
        [path0.name, path1.name])
    assert not path0.exists() and not path1.exists()
    # The miss is recoverable: a re-store of the same obligation works
    # and subsequent caches serve it again.
    victim.store(obs[0], solve_obligation(obs[0]))
    assert ResultCache(str(tmp_path)).lookup(obs[0]) is not None


def test_cache_corrupt_simplified_payload_is_quarantined_miss(tmp_path):
    """Corrupt warm-start (.simp) entries are a miss too — the solve
    falls back to preprocessing from scratch instead of crashing or
    warm-starting from garbage clauses."""
    ob = _obligation([[1, 2], [-1, 2], [1, -2]], nvars=6)
    cache = ResultCache(str(tmp_path))
    fingerprint = ob.fingerprint()
    cache.store_simplified(fingerprint,
                           {"nvars": 6, "clauses": [[1, 2]]})
    assert cache.lookup_simplified(fingerprint) is not None
    simp_path = tmp_path / f"{fingerprint}.simp.json"
    blob = bytearray(simp_path.read_bytes())
    blob[len(blob) // 3] ^= 0x08
    simp_path.write_bytes(bytes(blob))
    victim = ResultCache(str(tmp_path))
    assert victim.lookup_simplified(fingerprint) is None
    assert victim.quarantined == 1
    assert not simp_path.exists()
    # End to end: a solve with the corrupt-then-quarantined cache still
    # produces the right verdict.
    assert solve_obligation(ob, simp_cache=victim).status == \
        solve_obligation(ob).status


def test_cache_legacy_entry_without_crc_still_served(tmp_path):
    """Pre-CRC cache entries (no "crc32" field) stay readable — a
    version upgrade must not cold-start every fleet cache."""
    import json as json_mod

    ob = _obligation([[1, 2]])
    cache = ResultCache(str(tmp_path))
    cache.store(ob, solve_obligation(ob))
    path = tmp_path / f"{ob.fingerprint()}.json"
    payload = json_mod.loads(path.read_text())
    assert "crc32" in payload
    del payload["crc32"]
    path.write_text(json_mod.dumps(payload))
    legacy = ResultCache(str(tmp_path))
    assert legacy.lookup(ob) is not None
    assert legacy.quarantined == 0


def test_cache_index_not_counted_and_not_served(tmp_path):
    cache = ResultCache(str(tmp_path))
    ob = _obligation([[1, 2]])
    cache.store(ob, solve_obligation(ob))
    cache.flush()
    assert (tmp_path / "_index.json").exists()
    assert len(cache) == 1


def test_cache_save_merges_sibling_entries(tmp_path):
    """A process persisting its index must not drop entries a sibling
    stored in the shared directory since this process loaded it."""
    obs = _sized_obligations(2)
    mine = ResultCache(str(tmp_path))
    sibling = ResultCache(str(tmp_path))
    sibling.store(obs[1], solve_obligation(obs[1]))
    sibling.flush()
    mine.store(obs[0], solve_obligation(obs[0]))
    mine.flush()    # last writer: must merge, not clobber, the sibling
    fresh = ResultCache(str(tmp_path))
    assert set(fresh._entries) == {ob.fingerprint() for ob in obs}
    assert fresh._entries[obs[1].fingerprint()]["tick"] > 0


def test_engine_serves_second_run_from_cache(tmp_path):
    obs = _batch(4)
    engine = ProofEngine(jobs=1, cache_dir=str(tmp_path))
    try:
        first = engine.solve_ordered(obs)
        assert engine.cache_hits == 0
        second = engine.solve_ordered(obs)
        assert engine.cache_hits == len(obs)
        assert [v.status for v in first] == [v.status for v in second]
        assert all(v.cached for v in second)
    finally:
        engine.close()


def test_engine_cached_stop_prevents_submission(tmp_path):
    obs = _batch(4)
    engine = ProofEngine(jobs=1, cache_dir=str(tmp_path))
    try:
        engine.solve(obs[0])                       # warm index 0 (sat)
        results = engine.solve_ordered(obs, early_stop=lambda v: v.sat)
        assert results[0].cached and results[0].sat
        assert all(v is None for v in results[1:])
        # Nothing beyond the cached stop was solved.
        assert engine.cache_misses == 1
    finally:
        engine.close()


def test_engine_stats_aggregate():
    engine = ProofEngine(jobs=1)
    try:
        engine.solve(_obligation([[1, 2], [-1, 2]]))
        stats = engine.stats()
        assert stats["engine_obligations_solved"] == 1
        assert stats["engine_jobs"] == 1
        assert "engine_cache_hits" not in stats  # no cache configured
    finally:
        engine.close()


def test_default_engine_env(monkeypatch):
    import repro.engine.pool as pool_mod

    monkeypatch.setattr(pool_mod, "_shared_engine", None)
    monkeypatch.setattr(pool_mod, "_shared_key", None)
    monkeypatch.delenv(pool_mod.JOBS_ENV, raising=False)
    monkeypatch.delenv(pool_mod.CACHE_ENV, raising=False)
    assert pool_mod.default_engine() is None
    monkeypatch.setenv(pool_mod.JOBS_ENV, "2")
    engine = pool_mod.default_engine()
    try:
        assert engine is not None and engine.jobs == 2
        assert pool_mod.default_engine() is engine  # singleton
        assert pool_mod.resolve_engine(None) is engine
        assert pool_mod.resolve_engine(pool_mod.INLINE) is None
    finally:
        engine.close()
        monkeypatch.setattr(pool_mod, "_shared_engine", None)
        monkeypatch.setattr(pool_mod, "_shared_key", None)


# ----------------------------------------------------------------------
# Index flush on destruction / context exit (worker-death regression)
# ----------------------------------------------------------------------
def _index_entries(tmp_path):
    import json
    import os

    path = os.path.join(str(tmp_path), "_index.json")
    if not os.path.exists(path):
        return {}
    with open(path) as handle:
        return json.load(handle)["entries"]


def test_cache_del_flushes_batched_index(tmp_path):
    """A cache dropped without ProofEngine.close (a worker dying
    mid-sweep) must still persist its batched index updates."""
    import gc

    cache = ResultCache(str(tmp_path))
    ob = _obligation([[1, 2], [-1, 2]], name="flush")
    cache.store(ob, solve_obligation(ob))
    assert _index_entries(tmp_path) == {}  # batched, not yet saved
    del cache
    gc.collect()
    entries = _index_entries(tmp_path)
    assert len(entries) == 1 and next(iter(entries.values()))["tick"] == 1


def test_cache_context_exit_flushes_index(tmp_path):
    ob = _obligation([[1, 2], [-1, 2]], name="ctx")
    with ResultCache(str(tmp_path)) as cache:
        cache.store(ob, solve_obligation(ob))
        assert _index_entries(tmp_path) == {}
    assert len(_index_entries(tmp_path)) == 1


# ----------------------------------------------------------------------
# Warm-start: cached post-BVE simplified clause databases
# ----------------------------------------------------------------------
def _bve_friendly_obligation(name="warm", conflict_limit=None):
    """A Tseitin-style chain (every intermediate functionally defined)
    so simplification actually eliminates variables."""
    clauses = []
    prev = 1
    for v in range(2, 8):
        # v <-> not prev (buffer chain BVE collapses)
        clauses.extend([[-v, -prev], [v, prev]])
        prev = v
    clauses.append([prev, 1])
    return _obligation(clauses, assumptions=[1], name=name, simplify=True,
                       conflict_limit=conflict_limit)


def test_warm_start_roundtrip_is_bit_identical(tmp_path):
    cache = ResultCache(str(tmp_path))
    ob = _bve_friendly_obligation()
    cold = solve_obligation(ob, simp_cache=cache)
    assert cache.lookup_simplified(ob.fingerprint()) is not None
    warm = solve_obligation(ob, simp_cache=cache)
    assert warm.status == cold.status
    assert warm.model == cold.model
    assert warm.stats.get("simplify_warm_starts") == 1
    # The warm path never ran the simplifier.
    assert "simplify_simplifications" not in warm.stats


def test_warm_start_survives_json_roundtrip_and_reopen(tmp_path):
    ob = _bve_friendly_obligation()
    with ResultCache(str(tmp_path)) as cache:
        cold = solve_obligation(ob, simp_cache=cache)
    with ResultCache(str(tmp_path)) as reopened:
        warm = solve_obligation(ob, simp_cache=reopened)
    assert (warm.status, warm.model) == (cold.status, cold.model)
    assert warm.stats.get("simplify_warm_starts") == 1


def test_warm_entries_share_lru_eviction(tmp_path):
    cache = ResultCache(str(tmp_path), max_bytes=1)
    ob = _bve_friendly_obligation()
    solve_obligation(ob, simp_cache=cache)
    cache.store(ob, solve_obligation(ob))
    # Everything over the 1-byte cap is pruned, .simp entries included.
    assert cache.lookup_simplified(ob.fingerprint()) is None
    assert cache.lookup(ob) is None


def test_engine_solve_populates_warm_entries(tmp_path):
    with ProofEngine(jobs=1, cache_dir=str(tmp_path)) as engine:
        ob = _bve_friendly_obligation()
        engine.solve(ob)
        assert engine.cache.lookup_simplified(ob.fingerprint()) is not None


def test_warm_start_serves_unknown_retry_with_higher_limit(tmp_path):
    """The scenario warm-start exists for: a conflict-limited run left
    'unknown' (never cached as a verdict), the retry with a bigger
    budget skips straight past preprocessing."""
    cache = ResultCache(str(tmp_path))
    limited = _bve_friendly_obligation(conflict_limit=1)
    first = solve_obligation(limited, simp_cache=cache)
    # The toy formula may solve within one conflict; force the point by
    # checking the simp entry exists regardless of the verdict.
    assert cache.lookup_simplified(limited.fingerprint()) is not None
    retry = _bve_friendly_obligation(conflict_limit=None)
    assert retry.fingerprint() == limited.fingerprint()
    warm = solve_obligation(retry, simp_cache=cache)
    assert warm.status in ("sat", "unsat")
    assert warm.stats.get("simplify_warm_starts") == 1
    assert first.fingerprint == warm.fingerprint


def test_corrupted_warm_entry_falls_back_to_cold_solve(tmp_path):
    """Cache corruption must degrade to a cold solve, never crash."""
    cache = ResultCache(str(tmp_path))
    ob = _bve_friendly_obligation()
    cold = solve_obligation(ob, simp_cache=cache)
    for bad in (
        {"nvars": ob.nvars, "clauses": [["x"]], "stack": []},
        {"nvars": ob.nvars, "clauses": [[ob.nvars + 99]], "stack": []},
        {"nvars": "?", "clauses": [], "stack": []},
        {"clauses": []},
        # Corrupted reconstruction stacks: out-of-range witness or
        # clause literals would index past the model list.
        {"nvars": ob.nvars, "clauses": [[1, 2]],
         "stack": [[999999, [-1]]]},
        {"nvars": ob.nvars, "clauses": [[1, 2]],
         "stack": [[1, [0]]]},
        {"nvars": ob.nvars, "clauses": [[1, 2]],
         "stack": [[1, [ob.nvars + 50]]]},
    ):
        cache.store_simplified(ob.fingerprint(), bad)
        verdict = solve_obligation(ob, simp_cache=cache)
        assert verdict.status == cold.status
        assert verdict.model == cold.model
        assert "simplify_warm_starts" not in verdict.stats


def test_pool_workers_share_warm_cache(tmp_path):
    """The multiprocessing pool path warm-starts too: worker processes
    open the engine's cache directory and store .simp entries."""
    import os

    obs = [_bve_friendly_obligation(name=f"pw{i}") for i in range(3)]
    # Distinct contents per obligation so each gets its own fingerprint.
    for i, ob in enumerate(obs):
        ob.clauses.append([1, 2 + i])
    with ProofEngine(jobs=2, cache_dir=str(tmp_path)) as engine:
        first = engine.solve_ordered(obs)
    assert all(v is not None for v in first)
    simp = [n for n in os.listdir(str(tmp_path))
            if n.endswith(".simp.json")]
    assert len(simp) == len(obs)
    # A later jobs=1 run warm-starts from what the pool workers stored.
    with ProofEngine(jobs=1, cache_dir=str(tmp_path)) as engine:
        engine.cache_hits = 0  # force non-verdict path: drop verdicts
        for ob in obs:
            os.unlink(str(tmp_path / f"{ob.fingerprint()}.json"))
        again = engine.solve_ordered(obs)
    for a, b in zip(first, again):
        assert (a.status, a.model) == (b.status, b.model)
    assert any(v.stats.get("simplify_warm_starts") for v in again)
