"""Unit tests for the obligation/scheduler/cache engine layers."""

import pytest

from repro.engine import (
    ProofEngine,
    ProofObligation,
    ResultCache,
    SolverPool,
    pack_model,
    solve_obligation,
    unpack_model,
)
from repro.formal.bmc import SatContext


# ----------------------------------------------------------------------
# Model packing
# ----------------------------------------------------------------------
def test_pack_unpack_roundtrip():
    values = [False, True, True, False, True, False, False, True, True]
    packed = pack_model(values)
    assert unpack_model(packed, len(values) - 1) == values


def test_unpack_defaults_false_beyond_data():
    packed = pack_model([False, True])
    out = unpack_model(packed, 20)
    assert out[1] is True
    assert all(v is False for v in out[2:])


# ----------------------------------------------------------------------
# Obligations
# ----------------------------------------------------------------------
def _obligation(clauses, assumptions=(), name="t", simplify=False,
                conflict_limit=None, nvars=None):
    if nvars is None:
        nvars = max(
            (abs(l) for c in clauses for l in c),
            default=0,
        )
        nvars = max([nvars] + [abs(a) for a in assumptions])
    return ProofObligation(
        name=name, nvars=nvars,
        clauses=[list(c) for c in clauses],
        assumptions=list(assumptions),
        simplify=simplify, conflict_limit=conflict_limit,
    )


def test_solve_obligation_sat_with_model():
    ob = _obligation([[1, 2], [-1, 2]])
    verdict = solve_obligation(ob)
    assert verdict.sat
    model = verdict.model_list()
    assert model[2] is True  # 2 is forced by resolution


def test_solve_obligation_unsat():
    ob = _obligation([[1], [-1]])
    verdict = solve_obligation(ob)
    assert verdict.unsat
    with pytest.raises(ValueError):
        verdict.model_list()


def test_solve_obligation_respects_assumptions():
    ob = _obligation([[1, 2]], assumptions=[-1])
    verdict = solve_obligation(ob)
    assert verdict.sat
    assert verdict.model_list()[2] is True


def test_solve_obligation_unknown_on_conflict_limit():
    def var(i, j):
        return i * 5 + j + 1

    clauses = [[var(i, j) for j in range(5)] for i in range(6)]
    for j in range(5):
        for i1 in range(6):
            for i2 in range(i1 + 1, 6):
                clauses.append([-var(i1, j), -var(i2, j)])
    ob = _obligation(clauses, conflict_limit=2)
    assert solve_obligation(ob).status == "unknown"


def test_fingerprint_is_content_addressed():
    a = _obligation([[1, 2], [-1]], assumptions=[2])
    b = _obligation([[1, 2], [-1]], assumptions=[2], name="other")
    c = _obligation([[1, 2], [-2]], assumptions=[2])
    d = _obligation([[1, 2], [-1]], assumptions=[-2])
    assert a.fingerprint() == b.fingerprint()   # names don't matter
    assert a.fingerprint() != c.fingerprint()   # clauses do
    assert a.fingerprint() != d.fingerprint()   # assumptions do
    # ... and the conflict limit does not (a definite verdict is valid
    # under any limit).
    e = _obligation([[1, 2], [-1]], assumptions=[2], conflict_limit=17)
    assert a.fingerprint() == e.fingerprint()


def test_verdict_dict_roundtrip():
    verdict = solve_obligation(_obligation([[1, 2]]))
    from repro.engine.obligation import Verdict

    again = Verdict.from_dict(verdict.to_dict())
    assert again.status == verdict.status
    assert again.model_list() == verdict.model_list()
    assert again.fingerprint == verdict.fingerprint


# ----------------------------------------------------------------------
# SatContext export
# ----------------------------------------------------------------------
@pytest.mark.parametrize("simplify", [False, True])
def test_context_export_matches_inline_solve(simplify):
    ctx = SatContext(simplify=simplify)
    aig = ctx.aig
    a, b, c = aig.new_inputs(3)
    ctx.assert_lit(aig.or_(a, b))
    target = aig.and_(aig.xor_(a, b), c)
    ob = ctx.export_obligation("xor-sat", assumptions=[target])
    verdict = solve_obligation(ob)
    inline = ctx.solve(assumptions=[target])
    assert verdict.sat and inline is True
    # UNSAT side: a & ~a is constant FALSE at the AIG level already, so
    # use a CNF-level contradiction instead.
    ctx2 = SatContext(simplify=simplify)
    aig2 = ctx2.aig
    x = aig2.new_input()
    ctx2.assert_lit(x)
    ob2 = ctx2.export_obligation("contradiction", assumptions=[x ^ 1])
    assert solve_obligation(ob2).unsat
    assert ctx2.solve(assumptions=[x ^ 1]) is False


def test_context_adopt_model_feeds_value_reads():
    ctx = SatContext(simplify=True)
    aig = ctx.aig
    a, b = aig.new_inputs(2)
    ctx.assert_lit(aig.and_(a, b))
    ob = ctx.export_obligation("and-sat")
    verdict = solve_obligation(ob)
    assert verdict.sat
    ctx.adopt_model(verdict.model_list())
    assert ctx.value(a) is True and ctx.value(b) is True
    # A fresh in-process solve clears the adopted model.
    assert ctx.solve() is True
    assert ctx.value(aig.and_(a, b)) is True


# ----------------------------------------------------------------------
# SolverPool
# ----------------------------------------------------------------------
def _batch(n):
    # Alternating SAT/UNSAT instances, each trivially distinguishable.
    obs = []
    for i in range(n):
        if i % 2:
            obs.append(_obligation([[1], [-1]], name=f"unsat{i}"))
        else:
            obs.append(_obligation([[1]], name=f"sat{i}"))
    return obs


def test_pool_ordered_results_jobs1_and_jobs2_agree():
    obs = _batch(6)
    with SolverPool(jobs=1) as seq, SolverPool(jobs=2) as par:
        r1 = seq.solve_ordered(obs)
        r2 = par.solve_ordered(obs)
    assert [v.status for v in r1] == [v.status for v in r2]
    assert [v.fingerprint for v in r1] == [v.fingerprint for v in r2]


def test_pool_early_stop_cancels_siblings():
    obs = _batch(6)  # sat at index 0 stops everything after it
    with SolverPool(jobs=1) as pool:
        results = pool.solve_ordered(obs, early_stop=lambda v: v.sat)
    assert results[0].sat
    assert all(v is None for v in results[1:])
    with SolverPool(jobs=2) as pool:
        results = pool.solve_ordered(obs, early_stop=lambda v: v.sat)
    assert results[0].sat
    assert all(v is None for v in results[1:])


# ----------------------------------------------------------------------
# ResultCache / ProofEngine
# ----------------------------------------------------------------------
def test_cache_store_lookup_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    ob = _obligation([[1, 2], [-1, 2]])
    assert cache.lookup(ob) is None
    verdict = solve_obligation(ob)
    cache.store(ob, verdict)
    hit = cache.lookup(ob)
    assert hit is not None and hit.cached
    assert hit.status == verdict.status
    assert hit.model_list() == verdict.model_list()
    assert len(cache) == 1


def test_cache_skips_unknown_verdicts(tmp_path):
    cache = ResultCache(str(tmp_path))
    ob = _obligation([[1, 2]], conflict_limit=0)
    verdict = solve_obligation(ob)
    # Force an unknown for the store path regardless of solver behaviour.
    verdict.status = "unknown"
    verdict.model = None
    cache.store(ob, verdict)
    assert cache.lookup(ob) is None


def test_engine_serves_second_run_from_cache(tmp_path):
    obs = _batch(4)
    engine = ProofEngine(jobs=1, cache_dir=str(tmp_path))
    try:
        first = engine.solve_ordered(obs)
        assert engine.cache_hits == 0
        second = engine.solve_ordered(obs)
        assert engine.cache_hits == len(obs)
        assert [v.status for v in first] == [v.status for v in second]
        assert all(v.cached for v in second)
    finally:
        engine.close()


def test_engine_cached_stop_prevents_submission(tmp_path):
    obs = _batch(4)
    engine = ProofEngine(jobs=1, cache_dir=str(tmp_path))
    try:
        engine.solve(obs[0])                       # warm index 0 (sat)
        results = engine.solve_ordered(obs, early_stop=lambda v: v.sat)
        assert results[0].cached and results[0].sat
        assert all(v is None for v in results[1:])
        # Nothing beyond the cached stop was solved.
        assert engine.cache_misses == 1
    finally:
        engine.close()


def test_engine_stats_aggregate():
    engine = ProofEngine(jobs=1)
    try:
        engine.solve(_obligation([[1, 2], [-1, 2]]))
        stats = engine.stats()
        assert stats["engine_obligations_solved"] == 1
        assert stats["engine_jobs"] == 1
        assert "engine_cache_hits" not in stats  # no cache configured
    finally:
        engine.close()


def test_default_engine_env(monkeypatch):
    import repro.engine.pool as pool_mod

    monkeypatch.setattr(pool_mod, "_shared_engine", None)
    monkeypatch.setattr(pool_mod, "_shared_key", None)
    monkeypatch.delenv(pool_mod.JOBS_ENV, raising=False)
    monkeypatch.delenv(pool_mod.CACHE_ENV, raising=False)
    assert pool_mod.default_engine() is None
    monkeypatch.setenv(pool_mod.JOBS_ENV, "2")
    engine = pool_mod.default_engine()
    try:
        assert engine is not None and engine.jobs == 2
        assert pool_mod.default_engine() is engine  # singleton
        assert pool_mod.resolve_engine(None) is engine
        assert pool_mod.resolve_engine(pool_mod.INLINE) is None
    finally:
        engine.close()
        monkeypatch.setattr(pool_mod, "_shared_engine", None)
        monkeypatch.setattr(pool_mod, "_shared_key", None)
