"""Differential fuzzing of the CNF pre-/inprocessor.

Every suite drives seeded random CNF instances (small enough for exhaustive
enumeration) through the solver with and without preprocessing and compares
against brute force: the SAT/UNSAT verdict must agree exactly, and every
SAT model must satisfy the *original* clauses — which exercises bounded
variable elimination's model-reconstruction stack end to end.

``REPRO_FUZZ_SCALE`` multiplies the iteration counts (CI can turn the
screws); the ``slow`` marker gates an extra high-volume pass.
"""

import itertools
import os
import random

import pytest

from repro.formal.preprocess import (
    SimplifyingSolver,
    reconstruct_model,
    simplify_clauses,
)
from repro.formal.solver import CdclSolver

FUZZ_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))


def brute_force_sat(nvars, clauses):
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for clause in clauses:
            if not any(
                bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1]
                for l in clause
            ):
                ok = False
                break
        if ok:
            return True
    return False


def random_cnf(rng, max_vars=12):
    nvars = rng.randint(1, max_vars)
    nclauses = rng.randint(1, 3 * nvars)
    clauses = []
    for _ in range(nclauses):
        size = rng.randint(1, 5)
        clauses.append(
            [rng.randint(1, nvars) * rng.choice([1, -1]) for _ in range(size)]
        )
    return nvars, clauses


def make_solver(cls, nvars, clauses, **kwargs):
    solver = cls(**kwargs) if kwargs else cls()
    for _ in range(nvars):
        solver.new_var()
    solver.add_clauses(clauses)
    return solver


def assert_model_satisfies(solver, clauses):
    for clause in clauses:
        # Tautologies are dropped on add; they hold in any assignment.
        if any(-l in clause for l in clause):
            continue
        assert any(solver.model_value(l) for l in clause), \
            f"model violates original clause {clause}"


def run_verdict_cases(seed, count, **solver_kwargs):
    rng = random.Random(seed)
    for _ in range(count):
        nvars, clauses = random_cnf(rng)
        expected = brute_force_sat(nvars, clauses)
        raw = make_solver(CdclSolver, nvars, clauses)
        assert raw.solve() is expected
        pre = make_solver(SimplifyingSolver, nvars, clauses, **solver_kwargs)
        assert pre.solve() is expected, \
            f"preprocessing changed the verdict on {clauses}"
        if expected:
            assert_model_satisfies(raw, clauses)
            assert_model_satisfies(pre, clauses)
            # Verdicts are stable across repeated solves.
            assert pre.solve() is True
            assert_model_satisfies(pre, clauses)


def test_preprocessed_verdicts_agree_with_brute_force():
    run_verdict_cases(seed=101, count=160 * FUZZ_SCALE)


def test_preprocessed_verdicts_with_forced_inprocessing():
    """min_pending=1 forces a simplification rebuild on every solve."""
    run_verdict_cases(seed=202, count=80 * FUZZ_SCALE, min_pending=1)


def test_assumption_differential():
    rng = random.Random(303)
    for _ in range(120 * FUZZ_SCALE):
        nvars, clauses = random_cnf(rng)
        assumptions = sorted(
            {rng.randint(1, nvars) * rng.choice([1, -1])
             for _ in range(rng.randint(0, 3))},
            key=abs,
        )
        # Drop contradictory assumption pairs (x and -x).
        assumptions = [a for a in assumptions if -a not in assumptions]
        expected = brute_force_sat(
            nvars, clauses + [[a] for a in assumptions]
        )
        pre = make_solver(SimplifyingSolver, nvars, clauses)
        assert pre.solve(assumptions=assumptions) is expected
        if expected:
            assert_model_satisfies(pre, clauses)
            for a in assumptions:
                assert pre.model_value(a)
        # The solver stays usable: an assumption-free solve matches
        # brute force on the bare formula.
        assert pre.solve() is brute_force_sat(nvars, clauses)


def test_incremental_inprocessing_differential():
    """Interleave clause batches and solves: covers inprocessing rebuilds
    and the resurrection of eliminated variables."""
    rng = random.Random(404)
    for _ in range(80 * FUZZ_SCALE):
        nvars = rng.randint(2, 10)
        pre = make_solver(
            SimplifyingSolver, nvars, [],
            min_pending=rng.choice([1, 4, 10_000]),
        )
        accumulated = []
        unsat_seen = False
        for _ in range(rng.randint(2, 4)):
            batch = []
            for _ in range(rng.randint(1, 12)):
                size = rng.randint(1, 4)
                batch.append([
                    rng.randint(1, nvars) * rng.choice([1, -1])
                    for _ in range(size)
                ])
            accumulated.extend(batch)
            pre.add_clauses(batch)
            assumptions = [
                rng.randint(1, nvars) * rng.choice([1, -1])
                for _ in range(rng.randint(0, 2))
            ]
            assumptions = [a for a in assumptions if -a not in assumptions]
            expected = brute_force_sat(
                nvars, accumulated + [[a] for a in assumptions]
            )
            outcome = pre.solve(assumptions=assumptions)
            if unsat_seen:
                assert outcome is False
                continue
            assert outcome is expected
            if outcome:
                assert_model_satisfies(pre, accumulated)
                for a in assumptions:
                    assert pre.model_value(a)
            if not brute_force_sat(nvars, accumulated):
                unsat_seen = True


def test_simplifier_preserves_satisfiability():
    """The standalone pass: the simplified formula is equisatisfiable and
    any of its models reconstructs to a model of the original."""
    rng = random.Random(505)
    for _ in range(120 * FUZZ_SCALE):
        nvars, clauses = random_cnf(rng, max_vars=10)
        expected = brute_force_sat(nvars, clauses)
        result = simplify_clauses(nvars, clauses)
        if not result.ok:
            assert expected is False
            continue
        reduced = result.clauses + [[u] for u in result.units]
        assert brute_force_sat(nvars, reduced) is expected
        assert result.nvars == nvars
        if expected:
            inner = make_solver(CdclSolver, nvars, reduced)
            assert inner.solve() is True
            base = [False] + [inner.model_value(v)
                              for v in range(1, nvars + 1)]
            full = reconstruct_model(base, result.stack)
            for clause in clauses:
                if any(-l in clause for l in clause):
                    continue
                assert any(
                    full[abs(l)] == (l > 0) for l in clause
                ), f"reconstructed model violates {clause}"


def test_frozen_variables_survive_elimination():
    rng = random.Random(606)
    for _ in range(40 * FUZZ_SCALE):
        nvars, clauses = random_cnf(rng, max_vars=8)
        frozen = {rng.randint(1, nvars) for _ in range(2)}
        result = simplify_clauses(nvars, clauses, frozen=frozen)
        for var in frozen:
            assert var not in result.eliminated


@pytest.mark.slow
def test_fuzz_slow_high_volume():
    """Deep pass for CI's full runs (scaled further by REPRO_FUZZ_SCALE)."""
    run_verdict_cases(seed=9001, count=400 * FUZZ_SCALE)
    run_verdict_cases(seed=9002, count=100 * FUZZ_SCALE, min_pending=1)
