"""Tests for the inductive diff-closure proofs (Sec. VI)."""

import pytest

from repro.errors import UpecError
from repro.core import UpecScenario
from repro.core.alerts import Alert, P_ALERT
from repro.core.closure import CondEq, InductiveDiffProof
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS
from repro.soc.isa import OP_LB

SOC = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))
SCENARIO = UpecScenario(secret_in_cache=True)


def secure_invariant(soc):
    memwb = soc.memwb
    legal_load_in_wb = memwb["valid"] & memwb["op"].eq(OP_LB) & ~memwb["exc"]
    return [
        CondEq(soc.resp_buf, cond=~legal_load_in_wb),
        CondEq(soc.secret_cache_data_reg, cond=None),
    ]


def test_invariant_rejects_architectural_registers():
    with pytest.raises(UpecError):
        InductiveDiffProof(SOC, SCENARIO, [CondEq(SOC.pc, cond=None)])


def test_covers_alert():
    proof = InductiveDiffProof(SOC, SCENARIO, secure_invariant(SOC))
    alert_in = Alert(kind=P_ALERT, frame=1, diffs=[(SOC.resp_buf, 1, 2)])
    assert proof.covers_alert(alert_in)
    alert_out = Alert(
        kind=P_ALERT, frame=1, diffs=[(SOC.exmem["result"], 1, 2)]
    )
    assert not proof.covers_alert(alert_out)
    # The secret's own storage never needs to be in the invariant.
    alert_secret = Alert(
        kind=P_ALERT, frame=1, diffs=[(SOC.secret_mem_reg, 1, 2)]
    )
    assert proof.covers_alert(alert_secret)


def test_wrong_invariant_is_rejected_with_counterexample():
    """An unconditional response-buffer entry is NOT inductive: the buffer
    feeds write-back, so an unconstrained difference escapes into the
    register file.  The checker must refute it and name an escapee."""
    bad = [
        CondEq(SOC.resp_buf, cond=None),
        CondEq(SOC.secret_cache_data_reg, cond=None),
    ]
    proof = InductiveDiffProof(SOC, SCENARIO, bad)
    result = proof.check_step(conflict_limit=200_000)
    assert not result.holds
    failed_names = [ob.name for ob in result.failed()]
    assert failed_names
    assert "NOT inductive" in result.describe()


@pytest.mark.slow
def test_secure_invariant_is_inductive():
    """The real closure proof (a minute-scale UNSAT batch)."""
    proof = InductiveDiffProof(SOC, SCENARIO, secure_invariant(SOC))
    result = proof.check_step()
    assert result.holds, result.describe()
    assert "INDUCTIVE" in result.describe()
    # Assumption re-establishment obligations are part of the batch.
    names = [ob.name for ob in result.obligations]
    assert any("re-established" in n for n in names)
