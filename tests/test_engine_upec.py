"""Engine-mode tests of the UPEC stack: parallel determinism, the
P-alert commitment-refinement loop, the persistent proof cache, and the
scenario sweep API."""

import pytest

from repro.core import (
    InductiveDiffProof,
    UpecChecker,
    UpecMethodology,
    UpecModel,
    UpecScenario,
)
from repro.core.closure import CondEq
from repro.core.upec import UpecCheckResult
from repro.engine import INLINE, ProofEngine, ScenarioSweep
from repro.formal import BmcEngine, prove_by_induction
from repro.hdl import Circuit
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")
SOCS = {
    name: build_soc(getattr(SocConfig, name)(**FORMAL_CONFIG_KWARGS))
    for name in VARIANTS
}
SCENARIO = UpecScenario(secret_in_cache=True)


def _methodology_signature(result):
    return (
        result.verdict,
        result.k,
        result.iterations,
        list(result.removed_regs),
        [alert.to_dict() for alert in result.p_alerts],
        result.l_alert.to_dict() if result.l_alert is not None else None,
    )


# ----------------------------------------------------------------------
# Acceptance: parallel == sequential, bit for bit, on all variants
# ----------------------------------------------------------------------
def test_methodology_parallel_matches_sequential_all_variants():
    parallel = ProofEngine(jobs=2)
    try:
        for name in VARIANTS:
            soc = SOCS[name]
            seq = UpecMethodology(soc, SCENARIO, jobs=1).run(k=2)
            par = UpecMethodology(soc, SCENARIO, engine=parallel).run(k=2)
            assert _methodology_signature(seq) == \
                _methodology_signature(par), name
    finally:
        parallel.close()


def test_checker_parallel_matches_sequential_alert():
    seq_model = UpecModel(SOCS["orc"], SCENARIO)
    par_model = UpecModel(SOCS["orc"], SCENARIO)
    parallel = ProofEngine(jobs=2)
    try:
        seq = UpecChecker(seq_model, engine=ProofEngine(jobs=1)).check(k=2)
        par = UpecChecker(par_model, engine=parallel).check(k=2)
    finally:
        parallel.close()
    assert seq.status == par.status == "alert"
    assert seq.k == par.k
    assert seq.checked_frames == par.checked_frames
    assert seq.alert.to_dict() == par.alert.to_dict()


def test_engine_verdicts_match_legacy_inline_path():
    """The obligation path may find different counterexample *models*
    than the incremental in-context solver, but verdicts (and the first
    alerting frame, which is formula-determined) must agree."""
    for name in ("secure", "orc"):
        soc = SOCS[name]
        legacy = UpecMethodology(soc, SCENARIO, engine=INLINE).run(k=2)
        engine = UpecMethodology(soc, SCENARIO, jobs=1).run(k=2)
        assert legacy.verdict == engine.verdict, name


# ----------------------------------------------------------------------
# The Fig.-5 commitment-refinement loop
# ----------------------------------------------------------------------
def test_refinement_loop_removes_alert_regs_and_resumes():
    """P-alert handling: every P-alert's registers leave the commitment,
    the re-check resumes at the alert frame, and removed registers never
    reappear in later alerts (the 'orc' variant exercises several
    refinement iterations before its L-alert)."""
    calls = []
    original = UpecChecker.check

    def spy(self, k, commitment=None, start_frame=1, **kwargs):
        calls.append((start_frame,
                      sorted(r.name for r in commitment)
                      if commitment is not None else None))
        return original(self, k, commitment=commitment,
                        start_frame=start_frame, **kwargs)

    UpecChecker.check = spy
    try:
        result = UpecMethodology(SOCS["orc"], SCENARIO, engine=INLINE) \
            .run(k=4)
    finally:
        UpecChecker.check = original

    assert result.verdict == "insecure"
    assert result.iterations >= 2
    assert result.iterations == len(calls)
    assert len(result.p_alerts) == result.iterations - 1
    # Every removed register came from a P-alert, with no duplicates.
    assert len(result.removed_regs) == len(set(result.removed_regs))
    p_alert_regs = {name for alert in result.p_alerts
                    for name in alert.diff_reg_names()}
    assert set(result.removed_regs) == p_alert_regs
    # The commitment shrinks monotonically across iterations ...
    commitments = [set(c) for _, c in calls]
    for before, after in zip(commitments, commitments[1:]):
        assert after < before
    # ... by exactly the alert registers of the preceding iteration.
    for i, alert in enumerate(result.p_alerts):
        assert commitments[i] - commitments[i + 1] == \
            set(alert.diff_reg_names())
    # start_frame resumption: each re-check resumes at the alert frame.
    start_frames = [frame for frame, _ in calls]
    assert start_frames[0] == 1
    for i, alert in enumerate(result.p_alerts):
        assert start_frames[i + 1] == alert.frame
    assert start_frames == sorted(start_frames)
    # Removed registers never reappear in later alerts.
    seen = set()
    for alert in result.p_alerts + [result.l_alert]:
        assert seen.isdisjoint(alert.diff_reg_names())
        seen.update(alert.diff_reg_names())


# ----------------------------------------------------------------------
# Persistent proof cache
# ----------------------------------------------------------------------
def test_methodology_cache_hits_on_second_run(tmp_path):
    soc = SOCS["secure"]
    first = UpecMethodology(soc, SCENARIO, cache_dir=str(tmp_path)) \
        .run(k=2)
    second = UpecMethodology(soc, SCENARIO, cache_dir=str(tmp_path)) \
        .run(k=2)
    assert first.stats["engine_cache_hits"] == 0
    assert first.stats["engine_cache_misses"] > 0
    assert second.stats["engine_cache_hits"] > 0
    assert second.stats["engine_cache_misses"] == 0
    assert second.verdict == first.verdict
    assert [a.to_dict() for a in second.p_alerts] == \
        [a.to_dict() for a in first.p_alerts]
    # All solving skipped: the second run must be dramatically faster.
    assert second.runtime_s < first.runtime_s


# ----------------------------------------------------------------------
# Closure proofs on the engine
# ----------------------------------------------------------------------
def test_closure_step_parallel_matches_legacy_verdicts():
    """The per-register closure obligations are independent; running
    them on the worker pool must refute the same obligations as the
    legacy in-context batch (which counterexample is found may differ,
    but holds/fails per obligation is formula-determined)."""
    soc = SOCS["secure"]
    bad = [
        CondEq(soc.resp_buf, cond=None),
        CondEq(soc.secret_cache_data_reg, cond=None),
    ]
    legacy = InductiveDiffProof(soc, SCENARIO, bad, engine=INLINE) \
        .check_step(conflict_limit=200_000)
    parallel = ProofEngine(jobs=2)
    try:
        par = InductiveDiffProof(soc, SCENARIO, bad, engine=parallel) \
            .check_step(conflict_limit=200_000)
    finally:
        parallel.close()
    assert not legacy.holds and not par.holds
    assert [(ob.name, ob.holds) for ob in legacy.obligations] == \
        [(ob.name, ob.holds) for ob in par.obligations]
    # Every refuted obligation still carries a concrete escapee.
    assert all(ob.counterexample for ob in par.failed())


# ----------------------------------------------------------------------
# BMC / induction on the engine
# ----------------------------------------------------------------------
def _counter_circuit():
    c = Circuit("counter")
    cnt = c.reg("cnt", 8, init=0)
    c.next(cnt, cnt + 1)
    c.finalize()
    return c, cnt


def test_bmc_engine_mode_matches_inline():
    c, cnt = _counter_circuit()
    inline = BmcEngine(c, init="reset").check_always(cnt.ne(5), k=8)
    engine = ProofEngine(jobs=2)
    try:
        parallel = BmcEngine(c, init="reset", engine=engine) \
            .check_always(cnt.ne(5), k=8)
    finally:
        engine.close()
    assert not inline.holds and not parallel.holds
    assert inline.depth == parallel.depth == 5
    assert parallel.witness.value("cnt", 5) == 5
    # Proved side.
    c2, cnt2 = _counter_circuit()
    engine2 = ProofEngine(jobs=2)
    try:
        proved = BmcEngine(c2, init="reset", engine=engine2) \
            .check_always(cnt2.ne(200), k=6)
    finally:
        engine2.close()
    assert proved.holds and proved.depth == 6


def test_induction_engine_mode(tmp_path):
    c = Circuit("latch")
    flag = c.reg("flag", 1, init=1)
    c.next(flag, flag)
    c.finalize()
    engine = ProofEngine(jobs=1, cache_dir=str(tmp_path))
    try:
        first = prove_by_induction(c, flag.eq(1), k=1, engine=engine)
        assert first.proved
        hits_before = engine.cache_hits
        again = prove_by_induction(c, flag.eq(1), k=1, engine=engine)
        assert again.proved
        assert engine.cache_hits > hits_before
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Scenario sweeps
# ----------------------------------------------------------------------
def test_sweep_grid_runs_and_matches_direct_methodology(tmp_path):
    sweep = ScenarioSweep.table1_grid(
        variants=("secure", "orc"), k=1, uncached=False,
        cache_dir=str(tmp_path / "cache"),
    )
    seq = sweep.run(jobs=1)
    assert [out.cell.label for out in seq.outcomes] == \
        ["secure/cached/k=1", "orc/cached/k=1"]
    verdicts = seq.verdicts()
    direct = {
        name: UpecMethodology(SOCS[name], SCENARIO, engine=INLINE)
        .run(k=1).verdict
        for name in ("secure", "orc")
    }
    assert {k.split("/")[0]: v for k, v in verdicts.items()} == direct
    # Parallel run of the same grid: identical verdicts, served from the
    # shared cache (every obligation was already proved).
    par = sweep.run(jobs=2)
    assert par.verdicts() == verdicts
    for out in par.outcomes:
        assert out.result["stats"]["engine_cache_hits"] > 0
        assert out.result["stats"]["engine_cache_misses"] == 0
    data = par.to_dict()
    assert data["jobs"] == 2 and len(data["cells"]) == 2
    assert len(seq.rows()) == 2


# ----------------------------------------------------------------------
# Serialization satellites
# ----------------------------------------------------------------------
def test_check_result_to_dict_roundtrips_through_json():
    import json

    model = UpecModel(SOCS["orc"], SCENARIO)
    result = UpecChecker(model, engine=INLINE).check(k=1)
    data = json.loads(json.dumps(result.to_dict()))
    assert data["status"] == "alert"
    assert data["alert"]["kind"] == "P"
    assert data["alert"]["diffs"]
    assert all(isinstance(d["reg"], str) for d in data["alert"]["diffs"])
    assert isinstance(data["alert"]["witness"], list)


def test_proved_result_to_dict_has_no_alert():
    result = UpecCheckResult(status="proved", k=3, checked_frames=3)
    assert result.to_dict()["alert"] is None


# ----------------------------------------------------------------------
# Tab.-II sweep cells: window length for alert
# ----------------------------------------------------------------------
def test_table2_grid_reports_first_alert_window():
    from repro.engine import CELL_ALERT_WINDOW

    sweep = ScenarioSweep.table2_grid(variants=("secure", "orc"), max_k=2)
    assert all(cell.cell_type == CELL_ALERT_WINDOW for cell in sweep.cells)
    result = sweep.run(jobs=1)
    assert [out.cell.label for out in result.outcomes] == \
        ["secure/cached/window<=2", "orc/cached/window<=2"]
    for out in result.outcomes:
        # With the full commitment every variant alerts within the
        # window (P-alerts included — the refinement loop has not
        # removed anything); the measurement is *where*.
        assert out.result["verdict"] == "alert"
        assert out.result["alert_frame"] == out.result["k"]
        assert out.result["alert"] is not None
    # The oracle: the checker's own find_first_alert_window.
    direct = UpecChecker(
        UpecModel(SOCS["orc"], SCENARIO), engine=INLINE
    ).find_first_alert_window(max_k=2)
    orc = result.outcomes[1].result
    assert orc["alert_frame"] == direct.k
    assert orc["alert"] == direct.alert.to_dict()
    # Rows render without methodology-only fields.
    rows = result.rows()
    assert rows[1][2] == f"frame {direct.k}"
    data = result.to_dict()
    assert data["cells"][0]["cell_type"] == "find_first_alert_window"


def test_table2_cells_run_on_the_engine_path(tmp_path):
    sweep = ScenarioSweep.table2_grid(
        variants=("orc",), max_k=2, cache_dir=str(tmp_path / "cache"),
    )
    cold = sweep.run(jobs=1)
    warm = sweep.run(jobs=1)
    assert warm.verdicts() == cold.verdicts()
    out = warm.outcomes[0].result
    assert out["stats"]["engine_cache_hits"] > 0
    assert out["stats"]["engine_cache_misses"] == 0
    assert out["alert"] == cold.outcomes[0].result["alert"]
