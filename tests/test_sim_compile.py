"""Compiled simulator must agree exactly with the interpreter.

The random-circuit differential at the bottom adds a third voter: every
circuit is also unrolled one frame into the formal engine (AIG bit-blast
+ Tseitin CNF + CDCL with preprocessing) and the solver's model values
must match both simulators bit for bit — CAT/SLICE and shift edge widths
included.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.formal import SatContext, Unroller
from repro.hdl import Circuit, MemoryArray, cat, const, mux, select, sext, zext
from repro.hdl.expr import mask
from repro.sim import Simulator
from repro.sim.compile import CompiledSimulator, compile_circuit


def build_mixed_circuit():
    c = Circuit("mixed")
    x = c.input("x", 8)
    a = c.reg("a", 8, init=3)
    b = c.reg("b", 4, init=0)
    mem = MemoryArray(c, "m", depth=4, width=8, init=[1, 2, 3, 4])
    rdata = mem.read(b[0:2])
    mem.write(b[0:2], a, x[0])
    c.next(a, mux(x[7], a + x, (a - 1) ^ rdata))
    c.next(b, cat(a[0], a.ult(x), b[0], a.any()))
    c.output("o1", sext(b, 8) + a)
    c.output("o2", rdata)
    return c.finalize()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=20))
def test_compiled_matches_interpreter(xs):
    circuit = build_mixed_circuit()
    interp = Simulator(circuit)
    fast = CompiledSimulator(circuit)
    for x in xs:
        out_i = interp.step({"x": x})
        out_c = fast.step({"x": x})
        assert out_i == out_c
        assert interp.snapshot() == fast.snapshot()


def test_compiled_soc_matches_interpreter():
    from repro.soc import SocConfig, build_soc
    from repro.soc import isa

    soc = build_soc(SocConfig.secure())
    program = [i.encode() for i in [
        isa.li(1, 7), isa.li(2, 3), isa.sb(1, 0, 2), isa.lb(3, 0, 2),
        isa.add(4, 3, 1), isa.bne(4, 0, 2), isa.li(5, 9), isa.jal(0, 0),
    ]]
    overrides = {f"imem[{i}]": w for i, w in enumerate(program)}
    interp = Simulator(soc.circuit, init_overrides=dict(overrides))
    fast = CompiledSimulator(soc.circuit, init_overrides=dict(overrides))
    for _ in range(80):
        out_i = interp.step()
        out_c = fast.step()
        assert out_i == out_c
    assert interp.snapshot() == fast.snapshot()


def test_compiled_init_overrides_and_peek():
    circuit = build_mixed_circuit()
    fast = CompiledSimulator(circuit, init_overrides={"a": 9})
    assert fast.peek("a") == 9
    with pytest.raises(SimulationError):
        fast.peek("zz")
    with pytest.raises(SimulationError):
        CompiledSimulator(circuit, init_overrides={"zz": 0})


def test_compiled_run_until():
    c = Circuit("cnt")
    r = c.reg("r", 8, init=0)
    c.next(r, r + 1)
    c.finalize()
    fast = CompiledSimulator(c)
    executed = fast.run(100, until=lambda s: s.peek("r") == 7)
    assert executed == 7


def test_compile_cache_reuses_function():
    circuit = build_mixed_circuit()
    s1 = CompiledSimulator(circuit)
    s2 = CompiledSimulator(circuit)
    assert s1._step is s2._step


def test_compile_function_direct():
    circuit = build_mixed_circuit()
    step, regs = compile_circuit(circuit)
    state = [r.init or 0 for r in regs]
    next_state, outputs = step(state, {"x": 0})
    assert len(next_state) == len(regs)
    assert set(outputs) == {"o1", "o2"}


# ----------------------------------------------------------------------
# Three-way differential: interpreter vs. compiled vs. unroller + solver
# ----------------------------------------------------------------------
def _to_width(expr, width):
    if expr.width == width:
        return expr
    if expr.width > width:
        return expr[0:width]
    return zext(expr, width)


_WIDTHS = [1, 2, 3, 5, 7, 8, 13, 16]


def _random_expr_pool(rng, regs, inputs):
    pool = list(regs) + list(inputs)
    pool.append(const(rng.randrange(1 << 4), 4))
    pool.append(const(0, 1))
    for _ in range(14):
        kind = rng.choice(
            ["bin", "bin", "cmp", "mux", "cat", "slice", "shift",
             "not", "red", "ext"]
        )
        a = rng.choice(pool)
        if kind == "bin":
            b = _to_width(rng.choice(pool), a.width)
            op = rng.choice(["add", "sub", "and", "or", "xor"])
            node = {
                "add": a + b, "sub": a - b, "and": a & b,
                "or": a | b, "xor": a ^ b,
            }[op]
        elif kind == "cmp":
            b = _to_width(rng.choice(pool), a.width)
            op = rng.choice(["eq", "ne", "ult", "ule"])
            node = getattr(a, op)(b)
        elif kind == "mux":
            sel = _to_width(rng.choice(pool), 1)
            b = _to_width(rng.choice(pool), a.width)
            node = mux(sel, a, b)
        elif kind == "cat":
            parts = [a] + [rng.choice(pool)
                           for _ in range(rng.randint(1, 2))]
            if sum(p.width for p in parts) > 24:
                parts = parts[:1] + [_to_width(parts[1], 1)]
            node = cat(*parts)
        elif kind == "slice":
            # Edge widths on purpose: single bit, top bit, full width.
            lo = rng.choice([0, 0, rng.randrange(a.width)])
            hi = rng.choice([lo + 1, a.width,
                             rng.randint(lo + 1, a.width)])
            node = a[lo:hi]
        elif kind == "shift":
            # Amounts straddling the width: 0, 1, w-1, w, w+1.
            amount = rng.choice([0, 1, a.width - 1, a.width, a.width + 1])
            node = (a << amount) if rng.random() < 0.5 else (a >> amount)
        elif kind == "not":
            node = ~a
        elif kind == "red":
            node = a.any() if rng.random() < 0.5 else a.all()
        else:  # ext
            node = sext(a, a.width + rng.randint(1, 4)) \
                if rng.random() < 0.5 \
                else zext(a, a.width + rng.randint(1, 4))
        if node.width <= 24:
            pool.append(node)
    return pool


def _build_random_circuit(rng, idx):
    c = Circuit(f"fuzz{idx}")
    regs = []
    for i in range(rng.randint(2, 3)):
        width = rng.choice(_WIDTHS)
        regs.append(c.reg(f"r{i}", width, init=rng.randrange(1 << width)))
    inputs = [c.input(f"i{i}", rng.choice(_WIDTHS))
              for i in range(rng.randint(1, 2))]
    pool = _random_expr_pool(rng, regs, inputs)
    for reg in regs:
        c.next(reg, _to_width(rng.choice(pool), reg.width))
    n_outputs = rng.randint(1, 3)
    for i in range(n_outputs):
        c.output(f"o{i}", rng.choice(pool))
    c.finalize()
    return c, regs, inputs


def _formal_eval_one_frame(circuit, regs, inputs, input_values):
    """Outputs at frame 0 and register state at frame 1, read back from a
    SAT model of the unrolled circuit with frame-0 state pinned."""
    ctx = SatContext()
    unroller = Unroller(circuit, ctx.aig, init="symbolic")
    for reg in regs:
        bits = unroller.reg_bits(reg, 0)
        for i, lit in enumerate(bits):
            want = (reg.init >> i) & 1
            ctx.assert_lit(lit if want else lit ^ 1)
    for node in inputs:
        bits = unroller.expr_bits(node, 0)
        for i, lit in enumerate(bits):
            want = (input_values[node.name] >> i) & 1
            ctx.assert_lit(lit if want else lit ^ 1)
    out_bits = {
        name: unroller.expr_bits(expr, 0)
        for name, expr in circuit.outputs.items()
    }
    next_bits = {reg.name: unroller.reg_bits(reg, 1) for reg in regs}
    # Map every queried cone into the CNF so the model values are solver
    # facts rather than unmapped-node defaults.
    for bits in list(out_bits.values()) + list(next_bits.values()):
        for lit in bits:
            ctx.mapper.lit_to_solver(lit)
    assert ctx.solve() is True
    outputs = {name: ctx.word_value(bits)
               for name, bits in out_bits.items()}
    state = {name: ctx.word_value(bits)
             for name, bits in next_bits.items()}
    return outputs, state


def test_random_circuits_sim_compile_formal_agree():
    rng = random.Random(1234)
    for idx in range(30):
        circuit, regs, inputs = _build_random_circuit(rng, idx)
        input_values = {
            node.name: rng.randrange(1 << node.width) for node in inputs
        }
        interp = Simulator(circuit)
        fast = CompiledSimulator(circuit)
        out_i = interp.step(dict(input_values))
        out_c = fast.step(dict(input_values))
        assert out_i == out_c, f"circuit {idx}: interpreter != compiled"
        assert interp.snapshot() == fast.snapshot()
        out_f, state_f = _formal_eval_one_frame(
            circuit, regs, inputs, input_values
        )
        assert out_f == out_i, f"circuit {idx}: formal outputs differ"
        snapshot = interp.snapshot()
        state_i = {reg.name: snapshot[reg.name] for reg in regs}
        assert state_f == state_i, f"circuit {idx}: formal next state differs"


def test_cat_slice_shift_edge_widths_three_way():
    """Deterministic edge-width coverage: CAT mixing 1-bit and wide
    parts, slices at both ends, shifts at and beyond the width."""
    c = Circuit("edges")
    a = c.reg("a", 13, init=0x1234 & mask(13))
    b = c.reg("b", 1, init=1)
    x = c.input("x", 7)
    wide = cat(b, a, x[0], x)            # 1 + 13 + 1 + 7 = 22 bits
    c.output("cat_wide", wide)
    c.output("slice_lo", wide[0:1])
    c.output("slice_top", wide[21:22])
    c.output("slice_full", wide[0:22])
    c.output("slice_mid", wide[5:19])
    c.output("shl_w", a << 13)           # amount == width -> 0
    c.output("shl_w1", a << 14)          # amount > width -> 0
    c.output("shl_11", a << 12)
    c.output("lshr_w", a >> 13)
    c.output("lshr_12", a >> 12)
    c.output("sext_up", sext(x, 16))
    c.next(a, _to_width(wide, 13))
    c.next(b, wide.any())
    c.finalize()
    regs = [c.regs["a"], c.regs["b"]]
    inputs = [c.inputs["x"]]
    for xv in (0, 1, 0x55, 0x7F):
        interp = Simulator(c)
        fast = CompiledSimulator(c)
        out_i = interp.step({"x": xv})
        out_c = fast.step({"x": xv})
        assert out_i == out_c
        out_f, state_f = _formal_eval_one_frame(c, regs, inputs, {"x": xv})
        assert out_f == out_i
        snap = interp.snapshot()
        assert state_f == {name: snap[name] for name in ("a", "b")}
