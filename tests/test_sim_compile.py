"""Compiled simulator must agree exactly with the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hdl import Circuit, MemoryArray, cat, mux, select, sext
from repro.sim import Simulator
from repro.sim.compile import CompiledSimulator, compile_circuit


def build_mixed_circuit():
    c = Circuit("mixed")
    x = c.input("x", 8)
    a = c.reg("a", 8, init=3)
    b = c.reg("b", 4, init=0)
    mem = MemoryArray(c, "m", depth=4, width=8, init=[1, 2, 3, 4])
    rdata = mem.read(b[0:2])
    mem.write(b[0:2], a, x[0])
    c.next(a, mux(x[7], a + x, (a - 1) ^ rdata))
    c.next(b, cat(a[0], a.ult(x), b[0], a.any()))
    c.output("o1", sext(b, 8) + a)
    c.output("o2", rdata)
    return c.finalize()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=20))
def test_compiled_matches_interpreter(xs):
    circuit = build_mixed_circuit()
    interp = Simulator(circuit)
    fast = CompiledSimulator(circuit)
    for x in xs:
        out_i = interp.step({"x": x})
        out_c = fast.step({"x": x})
        assert out_i == out_c
        assert interp.snapshot() == fast.snapshot()


def test_compiled_soc_matches_interpreter():
    from repro.soc import SocConfig, build_soc
    from repro.soc import isa

    soc = build_soc(SocConfig.secure())
    program = [i.encode() for i in [
        isa.li(1, 7), isa.li(2, 3), isa.sb(1, 0, 2), isa.lb(3, 0, 2),
        isa.add(4, 3, 1), isa.bne(4, 0, 2), isa.li(5, 9), isa.jal(0, 0),
    ]]
    overrides = {f"imem[{i}]": w for i, w in enumerate(program)}
    interp = Simulator(soc.circuit, init_overrides=dict(overrides))
    fast = CompiledSimulator(soc.circuit, init_overrides=dict(overrides))
    for _ in range(80):
        out_i = interp.step()
        out_c = fast.step()
        assert out_i == out_c
    assert interp.snapshot() == fast.snapshot()


def test_compiled_init_overrides_and_peek():
    circuit = build_mixed_circuit()
    fast = CompiledSimulator(circuit, init_overrides={"a": 9})
    assert fast.peek("a") == 9
    with pytest.raises(SimulationError):
        fast.peek("zz")
    with pytest.raises(SimulationError):
        CompiledSimulator(circuit, init_overrides={"zz": 0})


def test_compiled_run_until():
    c = Circuit("cnt")
    r = c.reg("r", 8, init=0)
    c.next(r, r + 1)
    c.finalize()
    fast = CompiledSimulator(c)
    executed = fast.run(100, until=lambda s: s.peek("r") == 7)
    assert executed == 7


def test_compile_cache_reuses_function():
    circuit = build_mixed_circuit()
    s1 = CompiledSimulator(circuit)
    s2 = CompiledSimulator(circuit)
    assert s1._step is s2._step


def test_compile_function_direct():
    circuit = build_mixed_circuit()
    step, regs = compile_circuit(circuit)
    state = [r.init or 0 for r in regs]
    next_state, outputs = step(state, {"x": 0})
    assert len(next_state) == len(regs)
    assert set(outputs) == {"o1", "o2"}
