"""Cross-validation: UPEC counterexamples replay on the real simulator.

The strongest end-to-end check of the formal stack: every alert the SAT
engine produces is a pair of concrete initial states; loading them into
two cycle-accurate simulations of the same RTL must reproduce the
divergence at the reported cycle.  (Registers outside the query's cone of
influence are don't-cares in the witness; they default to 0 in both
instances and cannot affect the diffing registers by construction.)
"""

import pytest

from repro.core import UpecChecker, UpecModel, UpecScenario
from repro.sim import Simulator
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

SOC_ORC = build_soc(SocConfig.orc(**FORMAL_CONFIG_KWARGS))
SOC_MELTDOWN = build_soc(SocConfig.meltdown(**FORMAL_CONFIG_KWARGS))
SOC_SECURE = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))


def replay(soc, alert):
    """Two simulator instances initialized from the witness's frame 0."""
    init1 = {name: pair[0] for name, pair in alert.witness[0].items()}
    init2 = {name: pair[1] for name, pair in alert.witness[0].items()}
    sim1 = Simulator(soc.circuit, init_overrides=init1)
    sim2 = Simulator(soc.circuit, init_overrides=init2)
    for _ in range(alert.frame):
        sim1.step()
        sim2.step()
    return sim1, sim2


@pytest.mark.parametrize("soc", [SOC_ORC, SOC_MELTDOWN, SOC_SECURE],
                         ids=lambda s: s.config.name)
def test_alert_witness_replays_in_simulation(soc):
    model = UpecModel(soc, UpecScenario(secret_in_cache=True))
    result = UpecChecker(model).check(k=2)
    assert result.status == "alert"
    alert = result.alert
    sim1, sim2 = replay(soc, alert)
    for reg, v1, v2 in alert.diffs:
        assert sim1.peek(reg.name) == v1, reg.name
        assert sim2.peek(reg.name) == v2, reg.name
        assert sim1.peek(reg.name) != sim2.peek(reg.name)


def test_witness_initial_states_agree_outside_seed():
    """Instance states at t0 differ only in the secret-carrying words."""
    model = UpecModel(SOC_ORC, UpecScenario(secret_in_cache=True))
    result = UpecChecker(model).check(k=1)
    alert = result.alert
    seed_names = {r.name for r in model.diff_seed}
    for name, (v1, v2) in alert.witness[0].items():
        if name not in seed_names:
            assert v1 == v2, name


def test_witness_satisfies_scenario_assumptions():
    """The witnessed initial state respects the Fig.-4 constraints."""
    soc = SOC_ORC
    model = UpecModel(soc, UpecScenario(secret_in_cache=True))
    result = UpecChecker(model).check(k=1)
    alert = result.alert
    for instance in (0, 1):
        init = {n: pair[instance] for n, pair in alert.witness[0].items()}
        sim = Simulator(soc.circuit, init_overrides=init)
        assert sim.eval(soc.secret_data_protected()) == 1
        assert sim.eval(soc.no_ongoing_protected_access()) == 1
        assert sim.eval(soc.cache_monitor_ok()) == 1
        assert sim.eval(soc.secret_cached_expr()) == 1


def test_l_alert_witness_shows_architectural_divergence():
    """The methodology's L-alert replays with an architectural diff."""
    from repro.core import UpecMethodology

    result = UpecMethodology(
        SOC_ORC, UpecScenario(secret_in_cache=True)
    ).run(k=3)
    assert result.verdict == "insecure"
    alert = result.l_alert
    sim1, sim2 = replay(SOC_ORC, alert)
    arch = alert.arch_diffs()
    assert arch
    for reg, v1, v2 in arch:
        assert sim1.peek(reg.name) == v1
        assert sim2.peek(reg.name) == v2


def test_fixed_program_witness_replay():
    """Folded scenarios (fixed program, drained pipe) also replay."""
    from repro.soc import isa

    prog = [i.encode() for i in [
        isa.sb(3, 0, 2), isa.lb(4, 0, 1), isa.lb(5, 0, 4),
        isa.nop(), isa.nop(), isa.nop(), isa.nop(), isa.nop(),
    ]]
    scenario = UpecScenario(
        secret_in_cache=True, fixed_program=prog,
        no_inflight_branches=True, pipeline_drained=True, pin_pc=0,
    )
    model = UpecModel(SOC_ORC, scenario)
    result = UpecChecker(model).check(k=6)
    assert result.status == "alert"
    alert = result.alert
    sim1, sim2 = replay(SOC_ORC, alert)
    for reg, v1, v2 in alert.diffs:
        assert sim1.peek(reg.name) == v1
        assert sim2.peek(reg.name) == v2
