"""Tests for counterexample diagnosis."""

import networkx as nx
import pytest

from repro.core import UpecChecker, UpecModel, UpecScenario
from repro.core.alerts import Alert, P_ALERT
from repro.core.diagnosis import dependency_graph, diagnose
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS

SOC = build_soc(SocConfig.orc(**FORMAL_CONFIG_KWARGS))


def test_dependency_graph_structure():
    graph = dependency_graph(SOC.circuit)
    assert graph.has_node("resp_buf")
    # The response buffer is fed by the cache data array.
    assert any(
        graph.has_edge(f"dc_data[{i}]", "resp_buf")
        for i in range(SOC.config.cache_lines)
    )
    # And memory feeds the cache data through refills.
    assert nx.has_path(graph, SOC.secret_mem_reg.name, "resp_buf")


def test_diagnose_real_alert():
    model = UpecModel(SOC, UpecScenario(secret_in_cache=True))
    result = UpecChecker(model).check(k=2)
    alert = result.alert
    diagnosis = diagnose(SOC.circuit, alert)
    text = diagnosis.render()
    assert "diagnosis" in text
    assert "resp_buf" in diagnosis.suspects or "resp_buf" in text
    # The source (the cached secret) appears in the suspects, since it
    # differs at frame 0 and feeds the alerting register.
    assert any(s.startswith("dc_data") or s.startswith("dmem")
               for s in diagnosis.suspects)


def test_diagnose_steps_track_new_diffs():
    model = UpecModel(SOC, UpecScenario(secret_in_cache=True))
    result = UpecChecker(model).check(k=2)
    diagnosis = diagnose(SOC.circuit, result.alert)
    assert diagnosis.steps
    first = diagnosis.steps[result.alert.frame - 1]
    assert any(
        name in first.new_regs for name in result.alert.diff_reg_names()
    )
    # Every newly differing register names at least one differing feeder
    # (differences cannot appear from nowhere).
    for step in diagnosis.steps:
        for name in step.new_regs:
            assert step.feeders.get(name), (step.frame, name)


def test_diagnose_empty_witness():
    alert = Alert(kind=P_ALERT, frame=1, diffs=[])
    diagnosis = diagnose(SOC.circuit, alert)
    assert diagnosis.steps == []
    assert diagnosis.suspects == []
