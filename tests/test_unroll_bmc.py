"""Tests for sequential unrolling and the BMC/IPC engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormalError
from repro.formal import Aig, BmcEngine, SatContext, Unroller
from repro.hdl import Circuit, MemoryArray, const, mux


def build_counter(width=4):
    c = Circuit("counter")
    cnt = c.reg("cnt", width, init=0)
    c.next(cnt, cnt + 1)
    return c.finalize()


def test_unroller_reset_counter_values():
    """Unrolled counter from reset is fully constant-folded."""
    c = build_counter()
    aig = Aig()
    unroller = Unroller(c, aig, init="reset")
    cnt = c.regs["cnt"]
    for t in range(6):
        bits = unroller.reg_bits(cnt, t)
        # All bits must be constants (value t).
        value = sum((bit & 1 == 1) << i for i, bit in enumerate(bits))
        assert all(bit in (0, 1) for bit in bits)
        assert value == t % 16


def test_unroller_symbolic_initial_state():
    c = build_counter()
    aig = Aig()
    unroller = Unroller(c, aig, init="symbolic")
    bits0 = unroller.reg_bits(c.regs["cnt"], 0)
    assert all(aig.is_input(bit) for bit in bits0)


def test_unroller_explicit_init_bits():
    c = build_counter()
    aig = Aig()
    shared = aig.new_inputs(4)
    unroller = Unroller(c, aig, init_bits={c.regs["cnt"]: shared})
    assert unroller.reg_bits(c.regs["cnt"], 0) == shared
    with pytest.raises(FormalError):
        Unroller(c, Aig(), init_bits={c.regs["cnt"]: [0, 1]})


def test_unroller_bad_init_policy():
    with pytest.raises(FormalError):
        Unroller(build_counter(), Aig(), init="zeroes")


def test_unroller_expr_lit_width_check():
    c = build_counter()
    unroller = Unroller(c, Aig())
    with pytest.raises(FormalError):
        unroller.expr_lit(c.regs["cnt"] + 1, 0)


def test_unroller_input_sharing():
    """Two unrollers with a shared input provider see the same variables."""
    c = Circuit("t")
    x = c.input("x", 4)
    r = c.reg("r", 4, init=0)
    c.next(r, x)
    c.finalize()
    aig = Aig()
    pool = {}

    def provider(name, width, frame):
        key = (name, frame)
        if key not in pool:
            pool[key] = aig.new_inputs(width)
        return pool[key]

    u1 = Unroller(c, aig, input_provider=provider)
    u2 = Unroller(c, aig, input_provider=provider)
    assert u1.expr_bits(x, 0) == u2.expr_bits(x, 0)
    # Next state cones collapse structurally when inputs are shared,
    # but frame-0 registers differ (fresh symbolic states).
    assert u1.reg_bits(c.regs["r"], 1) == u2.reg_bits(c.regs["r"], 1)
    assert u1.reg_bits(c.regs["r"], 0) != u2.reg_bits(c.regs["r"], 0)


def test_bmc_counter_bound_holds_and_fails():
    c = build_counter()
    engine = BmcEngine(c, init="reset")
    cnt = c.regs["cnt"]
    # cnt != 5 holds up to cycle 4 ...
    result = engine.check_always(cnt.ne(5), k=4)
    assert result.holds
    assert result.stats["aig_nodes"] > 0
    # ... but a fresh check to cycle 6 finds the violation at cycle 5.
    engine2 = BmcEngine(c, init="reset")
    result2 = engine2.check_always(cnt.ne(5), k=6)
    assert not result2.holds
    assert result2.depth == 5
    assert result2.witness is not None
    assert result2.witness.value("cnt", 5) == 5


def test_bmc_symbolic_initial_state_finds_any_state_violation():
    """With a symbolic initial state, even 'unreachable from reset' states
    are explored — the IPC any-state semantics."""
    c = Circuit("t")
    r = c.reg("r", 4, init=0)
    c.next(r, r)  # holds forever; from reset it is always 0
    c.finalize()
    engine = BmcEngine(c, init="symbolic")
    result = engine.check_always(r.eq(0), k=0)
    assert not result.holds  # symbolic init allows r != 0


def test_bmc_initial_assumptions_constrain_frame0():
    c = Circuit("t")
    r = c.reg("r", 4, init=None)
    c.next(r, r)
    c.finalize()
    engine = BmcEngine(c, init="symbolic")
    result = engine.check_always(r.ult(8), k=3, initial_assumptions=[r.ult(8)])
    assert result.holds


def test_bmc_per_cycle_assumptions():
    c = Circuit("t")
    x = c.input("x", 1)
    r = c.reg("r", 4, init=0)
    c.next(r, mux(x, r + 1, r))
    c.finalize()
    engine = BmcEngine(c, init="reset")
    # If x is never asserted the counter stays at 0.
    result = engine.check_always(r.eq(0), k=5, assumptions=[x.eq(0)])
    assert result.holds


def test_bmc_assertion_width_check():
    c = build_counter()
    engine = BmcEngine(c, init="reset")
    with pytest.raises(FormalError):
        engine.check_always(c.regs["cnt"] + 1, k=1)


def test_bmc_witness_render():
    c = build_counter()
    engine = BmcEngine(c, init="reset")
    result = engine.check_always(c.regs["cnt"].ne(2), k=3)
    assert not result.holds
    text = result.witness.render(["cnt"])
    assert "cnt" in text


def test_bmc_memory_array():
    """A memory write becomes visible exactly one cycle later."""
    c = Circuit("m")
    mem = MemoryArray(c, "mem", depth=4, width=8, init=0)
    addr = c.input("addr", 2)
    data = c.input("data", 8)
    we = c.input("we", 1)
    mem.write(addr, data, we)
    c.finalize()
    engine = BmcEngine(c, init="reset")
    # With writes disabled every word stays 0.
    result = engine.check_always(
        mem[0].eq(0) & mem[1].eq(0) & mem[2].eq(0) & mem[3].eq(0),
        k=3,
        assumptions=[we.eq(0)],
    )
    assert result.holds
    engine2 = BmcEngine(c, init="reset")
    result2 = engine2.check_always(mem[2].eq(0), k=2)
    assert not result2.holds  # a write to word 2 violates it


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=15))
def test_bmc_agrees_with_simulation_on_reachability(target):
    """BMC finds value `target` reachable at exactly cycle `target`."""
    c = build_counter()
    engine = BmcEngine(c, init="reset")
    result = engine.check_always(c.regs["cnt"].ne(target), k=15)
    assert not result.holds
    assert result.depth == target


def test_sat_context_word_value():
    ctx = SatContext()
    bits = ctx.aig.new_inputs(4)
    # Force value 0b1010.
    for i, bit in enumerate(bits):
        ctx.assert_lit(bit if (0b1010 >> i) & 1 else bit ^ 1)
    assert ctx.solve() is True
    assert ctx.word_value(bits) == 0b1010
    stats = ctx.stats()
    assert stats["cnf_vars"] >= 4
