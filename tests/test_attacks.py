"""End-to-end covert-channel attack tests on the simulator (Sec. III /
Fig. 1 / Fig. 2 phenomenology).

These use a mid-sized geometry so each attack run stays fast; the full
paper-scale sweeps live in the benchmarks.
"""

import pytest

from repro.attacks import (
    TimingSeries,
    cache_footprint_difference,
    run_meltdown_attack,
    run_orc_attack,
)
from repro.soc import SocConfig, build_soc

ATTACK_KWARGS = dict(
    imem_words=64,
    dmem_words=32,
    cache_lines=8,
    write_pending_cycles=6,
    miss_latency=6,
    counter_width=16,
    secret_addr=20,
)

SOC_ORC = build_soc(SocConfig.orc(**ATTACK_KWARGS))
SOC_SECURE = build_soc(SocConfig.secure(**ATTACK_KWARGS))
SOC_MELTDOWN = build_soc(SocConfig.meltdown(**ATTACK_KWARGS))


# ----------------------------------------------------------------------
# TimingSeries
# ----------------------------------------------------------------------
def test_timing_series_outlier_detection():
    s = TimingSeries("t", [0, 1, 2, 3], [10, 10, 15, 10])
    assert s.outlier() == 2
    assert s.spread() == 5


def test_timing_series_flat_has_no_outlier():
    s = TimingSeries("t", [0, 1, 2], [10, 10, 10])
    assert s.outlier() is None
    assert s.spread() == 0


def test_timing_series_multiple_deviants_rejected():
    s = TimingSeries("t", [0, 1, 2, 3], [10, 15, 15, 10])
    assert s.outlier() is None


def test_timing_series_exclude():
    s = TimingSeries("t", [0, 1, 2], [15, 10, 10])
    assert s.outlier(exclude=[0]) is None
    assert s.outlier() == 0


def test_timing_series_render_and_rows():
    s = TimingSeries("orc", [0, 1], [10, 12])
    assert "orc" in s.render()
    assert s.as_rows() == [
        {"guess": 0, "cycles": 10}, {"guess": 1, "cycles": 12}
    ]


# ----------------------------------------------------------------------
# Orc attack (Fig. 2)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("secret", [0x33, 0x05, 0xFA])
def test_orc_attack_recovers_index_on_vulnerable_design(secret):
    result = run_orc_attack(SOC_ORC, secret)
    assert result.success, result.series.render()
    assert result.recovered_index == secret % SOC_ORC.config.cache_lines


def test_orc_attack_flat_on_secure_design():
    result = run_orc_attack(SOC_SECURE, 0x33)
    assert result.recovered_index is None
    assert result.series.spread() == 0


def test_orc_attack_flat_on_meltdown_design():
    """The Meltdown variant has no RAW-drain trap delay: the Orc timing
    loop sees nothing."""
    result = run_orc_attack(SOC_MELTDOWN, 0x33)
    assert result.series.spread() == 0


def test_orc_attack_excluded_guess_is_secret_line():
    result = run_orc_attack(SOC_ORC, 0x33)
    assert result.excluded_guess == SOC_ORC.secret_line_index
    assert result.excluded_guess not in result.series.guesses


# ----------------------------------------------------------------------
# Meltdown-style attack (Fig. 1)
# ----------------------------------------------------------------------
def test_meltdown_attack_recovers_address_on_vulnerable_design():
    secret = 0x0B  # effective address 11, outside prime region and PMP
    result = run_meltdown_attack(SOC_MELTDOWN, secret)
    assert result.success, result.series.render()


def test_meltdown_attack_flat_on_secure_design():
    result = run_meltdown_attack(SOC_SECURE, 0x0B)
    assert result.recovered_value is None
    assert result.series.spread() == 0


def test_meltdown_skips_protected_and_primed_addresses():
    result = run_meltdown_attack(SOC_MELTDOWN, 0x0B)
    assert SOC_MELTDOWN.secret_eff_addr in result.skipped
    assert all(g not in result.skipped for g in result.series.guesses)


# ----------------------------------------------------------------------
# Fig. 1: cache footprint of a squashed access
# ----------------------------------------------------------------------
def test_footprint_differs_on_meltdown_design():
    diff = cache_footprint_difference(SOC_MELTDOWN, 0x0B, 0x0D)
    assert diff  # the squashed refill left a secret-dependent footprint


def test_footprint_identical_on_secure_design():
    diff = cache_footprint_difference(SOC_SECURE, 0x0B, 0x0D)
    assert diff == []
