"""Mini-HDL: a word-level RTL intermediate representation.

The public surface mirrors what small RTL frameworks offer: expressions
(:mod:`repro.hdl.expr`), circuits (:mod:`repro.hdl.circuit`), memory arrays
(:mod:`repro.hdl.memory`) and structural analyses (:mod:`repro.hdl.analysis`).
"""

from repro.hdl.analysis import (
    circuit_roots,
    circuit_stats,
    iter_nodes,
    node_count,
    reg_fanin,
    sequential_cone,
    sequential_fanin_map,
    topo_order,
)
from repro.hdl.circuit import Circuit
from repro.hdl.expr import (
    Expr,
    Input,
    Reg,
    and_all,
    cat,
    const,
    implies,
    mask,
    mux,
    or_all,
    repl,
    resize,
    select,
    sext,
    truncate,
    zext,
)
from repro.hdl.memory import MemoryArray
from repro.hdl.pretty import format_expr
from repro.hdl.verilog import VerilogWriter, write_verilog

__all__ = [
    "Circuit",
    "VerilogWriter",
    "Expr",
    "Input",
    "MemoryArray",
    "Reg",
    "and_all",
    "cat",
    "circuit_roots",
    "circuit_stats",
    "const",
    "format_expr",
    "implies",
    "iter_nodes",
    "mask",
    "mux",
    "node_count",
    "or_all",
    "reg_fanin",
    "repl",
    "resize",
    "select",
    "sequential_cone",
    "sequential_fanin_map",
    "sext",
    "topo_order",
    "truncate",
    "write_verilog",
    "zext",
]
