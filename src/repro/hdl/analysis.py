"""Structural analyses over expression DAGs and circuits.

Provides iterative (stack-based, recursion-free) traversal, topological
ordering, cone-of-influence computation and simple statistics.  These are
shared by the simulator, the bit-blaster and the static taint baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set

from repro.hdl.circuit import Circuit
from repro.hdl.expr import OP_REG, Expr, Reg


def iter_nodes(roots: Sequence[Expr]) -> Iterator[Expr]:
    """Yield every node reachable from ``roots`` exactly once (post-order).

    Register leaves are yielded but not traversed *through*: a register's
    next-state expression belongs to the sequential boundary, not to the
    combinational cone.
    """
    seen: Set[int] = set()
    for root in roots:
        if id(root) in seen:
            continue
        stack: List[tuple] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            if node.op != OP_REG:
                for arg in node.args:
                    if id(arg) not in seen:
                        stack.append((arg, False))


def topo_order(roots: Sequence[Expr]) -> List[Expr]:
    """Topological order (children before parents) of the combinational
    cones of ``roots``."""
    return list(iter_nodes(roots))


def comb_leaves(roots: Sequence[Expr]) -> List[Expr]:
    """Registers and inputs feeding the combinational cones of ``roots``."""
    return [n for n in iter_nodes(roots) if not n.args and n.op != "const"]


def reg_fanin(expr: Expr) -> List[Reg]:
    """Registers appearing in the combinational cone of ``expr``."""
    return [n for n in iter_nodes([expr]) if isinstance(n, Reg)]


def node_count(roots: Sequence[Expr]) -> int:
    """Number of distinct DAG nodes reachable from ``roots``."""
    return sum(1 for _ in iter_nodes(roots))


def circuit_roots(circuit: Circuit) -> List[Expr]:
    """All expression roots of a circuit: next-states and outputs."""
    roots: List[Expr] = []
    for reg in circuit.regs.values():
        if reg.next is not None:
            roots.append(reg.next)
    roots.extend(circuit.outputs.values())
    return roots


def sequential_fanin_map(circuit: Circuit) -> Dict[Reg, List[Reg]]:
    """For each register, the registers its next-state depends on.

    This is the one-cycle dependency relation used by the static taint
    baseline and by cone-of-influence reduction.
    """
    result: Dict[Reg, List[Reg]] = {}
    for reg in circuit.regs.values():
        if reg.next is None:
            result[reg] = [reg]
        else:
            result[reg] = reg_fanin(reg.next)
    return result


def sequential_cone(circuit: Circuit, targets: Iterable[Reg]) -> Set[Reg]:
    """Registers that can influence ``targets`` over any number of cycles."""
    fanin = sequential_fanin_map(circuit)
    cone: Set[Reg] = set(targets)
    frontier = list(cone)
    while frontier:
        reg = frontier.pop()
        for dep in fanin.get(reg, ()):
            if dep not in cone:
                cone.add(dep)
                frontier.append(dep)
    return cone


def circuit_stats(circuit: Circuit) -> Dict[str, int]:
    """Summary statistics used for reporting model sizes."""
    roots = circuit_roots(circuit)
    return {
        "inputs": len(circuit.inputs),
        "registers": len(circuit.regs),
        "state_bits": circuit.state_bits(),
        "logic_state_bits": sum(r.width for r in circuit.logic_regs()),
        "arch_state_bits": sum(r.width for r in circuit.arch_regs()),
        "outputs": len(circuit.outputs),
        "dag_nodes": node_count(roots),
    }
