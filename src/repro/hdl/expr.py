"""Word-level expression IR for the mini-HDL.

Expressions form an immutable DAG.  Leaves are constants, module inputs and
registers; interior nodes are the usual word-level RTL operators.  Widths are
checked strictly at construction time so that malformed hardware is rejected
as early as possible.

Bit ordering convention: bit 0 is the least significant bit.  ``x[i]``
extracts a single bit, ``x[lo:hi]`` extracts bits ``lo .. hi-1`` (a Python
range over bit indices, LSB first).  ``cat(a, b, c)`` concatenates with ``a``
in the least significant position.

Python's ``==`` is kept as object identity (expressions are DAG nodes used as
dictionary keys); use :meth:`Expr.eq` / :meth:`Expr.ne` to build comparison
hardware.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import HdlError, WidthError

# Operator mnemonics.  Kept as plain strings for cheap dispatch in the
# simulator and bit-blaster.
OP_CONST = "const"
OP_INPUT = "input"
OP_REG = "reg"
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_XOR = "xor"
OP_ADD = "add"
OP_SUB = "sub"
OP_EQ = "eq"
OP_NE = "ne"
OP_ULT = "ult"
OP_ULE = "ule"
OP_MUX = "mux"
OP_CAT = "cat"
OP_SLICE = "slice"
OP_SHL = "shl"
OP_LSHR = "lshr"
OP_REDOR = "redor"
OP_REDAND = "redand"

_BINARY_SAME_WIDTH = frozenset({OP_AND, OP_OR, OP_XOR, OP_ADD, OP_SUB})
_COMPARE = frozenset({OP_EQ, OP_NE, OP_ULT, OP_ULE})


def mask(width: int) -> int:
    """Return the all-ones value of the given bit width."""
    return (1 << width) - 1


class Expr:
    """A node of the word-level expression DAG.

    Instances are immutable after construction.  ``args`` holds child
    expressions, ``params`` holds non-expression attributes (constant value,
    slice bounds, shift amounts, names).
    """

    __slots__ = ("op", "args", "params", "width")

    def __init__(
        self,
        op: str,
        args: Sequence["Expr"] = (),
        params: Tuple = (),
        width: int = 1,
    ) -> None:
        if width <= 0:
            raise WidthError(f"expression width must be positive, got {width}")
        self.op = op
        self.args = tuple(args)
        self.params = tuple(params)
        self.width = width

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _coerce(self, other: "Expr | int") -> "Expr":
        """Turn a Python int into a constant of this expression's width."""
        if isinstance(other, Expr):
            return other
        if isinstance(other, bool):
            other = int(other)
        if isinstance(other, int):
            return const(other, self.width)
        raise HdlError(f"cannot use {other!r} as an expression")

    def _binary(self, op: str, other: "Expr | int") -> "Expr":
        rhs = self._coerce(other)
        if rhs.width != self.width:
            raise WidthError(
                f"{op}: operand widths differ ({self.width} vs {rhs.width})"
            )
        return Expr(op, (self, rhs), width=self.width)

    def _compare(self, op: str, other: "Expr | int") -> "Expr":
        rhs = self._coerce(other)
        if rhs.width != self.width:
            raise WidthError(
                f"{op}: operand widths differ ({self.width} vs {rhs.width})"
            )
        return Expr(op, (self, rhs), width=1)

    # Arithmetic / bitwise operators --------------------------------------
    def __add__(self, other: "Expr | int") -> "Expr":
        return self._binary(OP_ADD, other)

    def __radd__(self, other: int) -> "Expr":
        return self._coerce(other)._binary(OP_ADD, self)

    def __sub__(self, other: "Expr | int") -> "Expr":
        return self._binary(OP_SUB, other)

    def __rsub__(self, other: int) -> "Expr":
        return self._coerce(other)._binary(OP_SUB, self)

    def __and__(self, other: "Expr | int") -> "Expr":
        return self._binary(OP_AND, other)

    def __rand__(self, other: int) -> "Expr":
        return self._coerce(other)._binary(OP_AND, self)

    def __or__(self, other: "Expr | int") -> "Expr":
        return self._binary(OP_OR, other)

    def __ror__(self, other: int) -> "Expr":
        return self._coerce(other)._binary(OP_OR, self)

    def __xor__(self, other: "Expr | int") -> "Expr":
        return self._binary(OP_XOR, other)

    def __rxor__(self, other: int) -> "Expr":
        return self._coerce(other)._binary(OP_XOR, self)

    def __invert__(self) -> "Expr":
        return Expr(OP_NOT, (self,), width=self.width)

    def __lshift__(self, amount: int) -> "Expr":
        if not isinstance(amount, int) or amount < 0:
            raise HdlError("shift amount must be a non-negative constant")
        return Expr(OP_SHL, (self,), params=(amount,), width=self.width)

    def __rshift__(self, amount: int) -> "Expr":
        if not isinstance(amount, int) or amount < 0:
            raise HdlError("shift amount must be a non-negative constant")
        return Expr(OP_LSHR, (self,), params=(amount,), width=self.width)

    # Comparisons (as methods; __eq__ stays identity) ----------------------
    def eq(self, other: "Expr | int") -> "Expr":
        """Hardware equality: 1-bit result."""
        return self._compare(OP_EQ, other)

    def ne(self, other: "Expr | int") -> "Expr":
        """Hardware inequality: 1-bit result."""
        return self._compare(OP_NE, other)

    def ult(self, other: "Expr | int") -> "Expr":
        """Unsigned less-than: 1-bit result."""
        return self._compare(OP_ULT, other)

    def ule(self, other: "Expr | int") -> "Expr":
        """Unsigned less-or-equal: 1-bit result."""
        return self._compare(OP_ULE, other)

    def ugt(self, other: "Expr | int") -> "Expr":
        """Unsigned greater-than: 1-bit result."""
        return self._coerce(other)._compare(OP_ULT, self)

    def uge(self, other: "Expr | int") -> "Expr":
        """Unsigned greater-or-equal: 1-bit result."""
        return self._coerce(other)._compare(OP_ULE, self)

    # Bit selection --------------------------------------------------------
    def __getitem__(self, index: "int | slice") -> "Expr":
        if isinstance(index, int):
            if index < 0:
                index += self.width
            if not 0 <= index < self.width:
                raise WidthError(
                    f"bit index {index} out of range for width {self.width}"
                )
            return Expr(OP_SLICE, (self,), params=(index, index + 1), width=1)
        if isinstance(index, slice):
            if index.step is not None:
                raise HdlError("strided bit slices are not supported")
            lo = 0 if index.start is None else index.start
            hi = self.width if index.stop is None else index.stop
            if lo < 0:
                lo += self.width
            if hi < 0:
                hi += self.width
            if not (0 <= lo < hi <= self.width):
                raise WidthError(
                    f"slice [{lo}:{hi}] out of range for width {self.width}"
                )
            return Expr(OP_SLICE, (self,), params=(lo, hi), width=hi - lo)
        raise HdlError(f"invalid bit index {index!r}")

    # Reductions -----------------------------------------------------------
    def any(self) -> "Expr":
        """Reduction OR: 1 iff any bit is set."""
        return Expr(OP_REDOR, (self,), width=1)

    def all(self) -> "Expr":
        """Reduction AND: 1 iff all bits are set."""
        return Expr(OP_REDAND, (self,), width=1)

    def bool(self) -> "Expr":
        """Alias of :meth:`any` — nonzero test."""
        return self.any()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return self.op == OP_CONST

    @property
    def value(self) -> int:
        """Constant value (only valid for constant expressions)."""
        if self.op != OP_CONST:
            raise HdlError("value is only defined for constants")
        return self.params[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.hdl.pretty import format_expr

        return f"<Expr {format_expr(self, max_depth=3)} :{self.width}>"


class Input(Expr):
    """A free input of a circuit."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int) -> None:
        super().__init__(OP_INPUT, params=(name,), width=width)
        self.name = name


class Reg(Expr):
    """A state-holding register.

    ``init`` is the reset value, or ``None`` for a register whose initial
    value is symbolic (unconstrained) — the essential ingredient of interval
    property checking with a symbolic initial state.

    ``arch`` marks architectural state variables (Def. 2 of the paper);
    ``tags`` carries free-form labels such as ``"memory"`` (content of main
    memory, excluded from *micro_soc_state*) or ``"cache_data"``.
    """

    __slots__ = ("name", "init", "arch", "tags", "next")

    def __init__(
        self,
        name: str,
        width: int,
        init: Optional[int] = 0,
        arch: bool = False,
        tags: Iterable[str] = (),
    ) -> None:
        super().__init__(OP_REG, params=(name,), width=width)
        if init is not None:
            if not isinstance(init, int):
                raise HdlError(f"register init must be int or None, got {init!r}")
            if not 0 <= init <= mask(width):
                raise WidthError(
                    f"init {init} does not fit in {width} bits for reg {name!r}"
                )
        self.name = name
        self.init = init
        self.arch = arch
        self.tags = frozenset(tags)
        self.next: Optional[Expr] = None


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def const(value: int, width: int) -> Expr:
    """Build a constant of the given width; the value must fit."""
    if isinstance(value, bool):
        value = int(value)
    if not isinstance(value, int):
        raise HdlError(f"constant value must be int, got {value!r}")
    if value < 0:
        value &= mask(width)
    if value > mask(width):
        raise WidthError(f"constant {value} does not fit in {width} bits")
    return Expr(OP_CONST, params=(value,), width=width)


def mux(sel: Expr, if_true: "Expr | int", if_false: "Expr | int") -> Expr:
    """2-way multiplexer: ``sel ? if_true : if_false`` (sel is 1 bit)."""
    if sel.width != 1:
        raise WidthError(f"mux select must be 1 bit, got {sel.width}")
    if isinstance(if_true, int) and isinstance(if_false, int):
        raise HdlError("mux needs at least one Expr arm to infer the width")
    if isinstance(if_true, int):
        if_true = const(if_true, if_false.width)
    if isinstance(if_false, int):
        if_false = const(if_false, if_true.width)
    if if_true.width != if_false.width:
        raise WidthError(
            f"mux arm widths differ ({if_true.width} vs {if_false.width})"
        )
    return Expr(OP_MUX, (sel, if_true, if_false), width=if_true.width)


def cat(*parts: Expr) -> Expr:
    """Concatenate, first argument in the least significant position."""
    if not parts:
        raise HdlError("cat needs at least one operand")
    if len(parts) == 1:
        return parts[0]
    width = sum(p.width for p in parts)
    return Expr(OP_CAT, parts, width=width)


def repl(bit: Expr, count: int) -> Expr:
    """Replicate a 1-bit expression ``count`` times."""
    if bit.width != 1:
        raise WidthError("repl expects a 1-bit expression")
    if count <= 0:
        raise HdlError("repl count must be positive")
    return cat(*([bit] * count))


def zext(x: Expr, width: int) -> Expr:
    """Zero-extend ``x`` to ``width`` bits."""
    if width < x.width:
        raise WidthError(f"cannot zero-extend width {x.width} down to {width}")
    if width == x.width:
        return x
    return cat(x, const(0, width - x.width))


def sext(x: Expr, width: int) -> Expr:
    """Sign-extend ``x`` to ``width`` bits."""
    if width < x.width:
        raise WidthError(f"cannot sign-extend width {x.width} down to {width}")
    if width == x.width:
        return x
    return cat(x, repl(x[x.width - 1], width - x.width))


def truncate(x: Expr, width: int) -> Expr:
    """Keep the low ``width`` bits of ``x``."""
    if width > x.width:
        raise WidthError(f"cannot truncate width {x.width} up to {width}")
    if width == x.width:
        return x
    return x[0:width]


def resize(x: Expr, width: int) -> Expr:
    """Zero-extend or truncate ``x`` to exactly ``width`` bits."""
    if width == x.width:
        return x
    if width > x.width:
        return zext(x, width)
    return truncate(x, width)


def and_all(terms: Sequence[Expr]) -> Expr:
    """Conjunction of 1-bit terms (1 for the empty sequence)."""
    result: Optional[Expr] = None
    for term in terms:
        if term.width != 1:
            raise WidthError("and_all expects 1-bit terms")
        result = term if result is None else result & term
    return result if result is not None else const(1, 1)


def or_all(terms: Sequence[Expr]) -> Expr:
    """Disjunction of 1-bit terms (0 for the empty sequence)."""
    result: Optional[Expr] = None
    for term in terms:
        if term.width != 1:
            raise WidthError("or_all expects 1-bit terms")
        result = term if result is None else result | term
    return result if result is not None else const(0, 1)


def implies(antecedent: Expr, consequent: Expr) -> Expr:
    """Logical implication over 1-bit expressions."""
    if antecedent.width != 1 or consequent.width != 1:
        raise WidthError("implies expects 1-bit expressions")
    return ~antecedent | consequent


def select(index: Expr, choices: Sequence["Expr | int"], width: Optional[int] = None) -> Expr:
    """Index into a list of choices with a mux tree.

    ``choices[i]`` is returned when ``index == i``.  Out-of-range index
    values return the last choice.  All choices must share one width (ints
    are coerced once a width is known).
    """
    if not choices:
        raise HdlError("select needs at least one choice")
    if width is None:
        widths = {c.width for c in choices if isinstance(c, Expr)}
        if len(widths) != 1:
            raise HdlError("select cannot infer a unique width; pass width=")
        width = widths.pop()
    exprs = [c if isinstance(c, Expr) else const(c, width) for c in choices]
    for e in exprs:
        if e.width != width:
            raise WidthError("select choices must share one width")

    def build(lo: int, hi: int, bit: int) -> Expr:
        if hi - lo == 1 or bit < 0:
            return exprs[lo]
        mid = min(lo + (1 << bit), hi)
        low_part = build(lo, mid, bit - 1)
        if mid >= hi:
            return low_part
        high_part = build(mid, hi, bit - 1)
        return mux(index[bit], high_part, low_part)

    top_bit = index.width - 1
    # Choices beyond 2**index.width can never be selected.
    usable = min(len(exprs), 1 << index.width)
    return build(0, usable, top_bit)
