"""Circuits: named collections of inputs, registers and outputs.

A :class:`Circuit` is a synchronous design with a single implicit clock.
Because expressions can only reference already-constructed nodes (plus
register leaves), combinational cycles are impossible by construction.

Registers default to *hold* behaviour: a register without an explicit next
expression keeps its value.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import HdlError, WidthError
from repro.hdl.expr import Expr, Input, Reg, const


class Circuit:
    """A synchronous word-level circuit."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: Dict[str, Input] = {}
        self.regs: Dict[str, Reg] = {}
        self.outputs: Dict[str, Expr] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._finalized:
            raise HdlError(f"circuit {self.name!r} is finalized")

    def _check_name(self, name: str) -> None:
        if name in self.inputs or name in self.regs:
            raise HdlError(f"duplicate signal name {name!r} in {self.name!r}")

    def input(self, name: str, width: int) -> Input:
        """Declare a free input."""
        self._check_open()
        self._check_name(name)
        node = Input(name, width)
        self.inputs[name] = node
        return node

    def reg(
        self,
        name: str,
        width: int,
        init: Optional[int] = 0,
        arch: bool = False,
        tags: Iterable[str] = (),
    ) -> Reg:
        """Declare a register.  ``init=None`` means symbolic initial value."""
        self._check_open()
        self._check_name(name)
        node = Reg(name, width, init=init, arch=arch, tags=tags)
        self.regs[name] = node
        return node

    def next(self, reg: Reg, expr: "Expr | int") -> None:
        """Assign the next-state expression of a register (once)."""
        self._check_open()
        if self.regs.get(reg.name) is not reg:
            raise HdlError(f"register {reg.name!r} does not belong to {self.name!r}")
        if reg.next is not None:
            raise HdlError(f"register {reg.name!r} already has a next expression")
        if isinstance(expr, int):
            expr = const(expr, reg.width)
        if expr.width != reg.width:
            raise WidthError(
                f"next of {reg.name!r}: width {expr.width} != reg width {reg.width}"
            )
        reg.next = expr

    def output(self, name: str, expr: Expr) -> Expr:
        """Expose an expression as a named output."""
        self._check_open()
        if name in self.outputs:
            raise HdlError(f"duplicate output name {name!r} in {self.name!r}")
        if not isinstance(expr, Expr):
            raise HdlError("output must be an Expr")
        self.outputs[name] = expr
        return expr

    def finalize(self) -> "Circuit":
        """Close the circuit: default missing next-exprs to hold, validate."""
        if self._finalized:
            return self
        for reg in self.regs.values():
            if reg.next is None:
                reg.next = reg
        self._validate()
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # Validation & queries
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        from repro.hdl.analysis import iter_nodes

        roots: List[Expr] = [r.next for r in self.regs.values() if r.next is not None]
        roots.extend(self.outputs.values())
        for node in iter_nodes(roots):
            if isinstance(node, Input) and self.inputs.get(node.name) is not node:
                raise HdlError(
                    f"foreign input {node.name!r} referenced in circuit {self.name!r}"
                )
            if isinstance(node, Reg) and self.regs.get(node.name) is not node:
                raise HdlError(
                    f"foreign register {node.name!r} referenced in circuit {self.name!r}"
                )

    @property
    def finalized(self) -> bool:
        return self._finalized

    def arch_regs(self) -> List[Reg]:
        """Architectural state variables (Def. 2)."""
        return [r for r in self.regs.values() if r.arch]

    def regs_with_tag(self, tag: str) -> List[Reg]:
        return [r for r in self.regs.values() if tag in r.tags]

    def logic_regs(self) -> List[Reg]:
        """Microarchitectural state variables (Def. 1): everything that is
        not memory content."""
        return [r for r in self.regs.values() if "memory" not in r.tags]

    def state_bits(self) -> int:
        """Total number of state bits."""
        return sum(r.width for r in self.regs.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Circuit {self.name!r}: {len(self.inputs)} inputs, "
            f"{len(self.regs)} regs ({self.state_bits()} bits), "
            f"{len(self.outputs)} outputs>"
        )
