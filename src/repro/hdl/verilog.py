"""Verilog export: emit a synthesizable module for a circuit.

The exporter produces plain synchronous Verilog-2001 — one ``always @``
block for the registers, continuous assignments for the combinational
DAG — so a design built with the mini-HDL (e.g. a SoC variant with an
injected vulnerability) can be handed to standard EDA flows, waveform
viewers or a commercial property checker for cross-validation.
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO

from repro.errors import HdlError
from repro.hdl.analysis import circuit_roots, topo_order
from repro.hdl.circuit import Circuit
from repro.hdl.expr import (
    OP_ADD,
    OP_AND,
    OP_CAT,
    OP_CONST,
    OP_EQ,
    OP_INPUT,
    OP_LSHR,
    OP_MUX,
    OP_NE,
    OP_NOT,
    OP_OR,
    OP_REDAND,
    OP_REDOR,
    OP_REG,
    OP_SHL,
    OP_SLICE,
    OP_SUB,
    OP_ULE,
    OP_ULT,
    OP_XOR,
    Expr,
)

_BINOPS = {
    OP_AND: "&", OP_OR: "|", OP_XOR: "^",
    OP_ADD: "+", OP_SUB: "-",
    OP_EQ: "==", OP_NE: "!=", OP_ULT: "<", OP_ULE: "<=",
}

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")


def _sanitize(name: str) -> str:
    """Make a legal Verilog identifier (memories: ``mem[3]`` -> ``mem_3``)."""
    clean = _IDENT_RE.sub("_", name).strip("_")
    if not clean or clean[0].isdigit():
        clean = "s_" + clean
    return clean


class VerilogWriter:
    """Emit one circuit as one Verilog module."""

    def __init__(self, circuit: Circuit) -> None:
        if not circuit.finalized:
            circuit.finalize()
        self.circuit = circuit
        self._names: Dict[int, str] = {}
        self._wire_decls: List[str] = []
        self._assigns: List[str] = []
        self._counter = 0
        self._used_names = set()

    # ------------------------------------------------------------------
    def _fresh(self, hint: str, width: int) -> str:
        name = f"w_{hint}_{self._counter}"
        self._counter += 1
        self._wire_decls.append(self._decl("wire", name, width))
        return name

    @staticmethod
    def _decl(kind: str, name: str, width: int) -> str:
        if width == 1:
            return f"{kind} {name};"
        return f"{kind} [{width - 1}:0] {name};"

    def _unique(self, name: str) -> str:
        base = name
        suffix = 0
        while name in self._used_names:
            suffix += 1
            name = f"{base}_{suffix}"
        self._used_names.add(name)
        return name

    # ------------------------------------------------------------------
    def _emit_expr(self, node: Expr) -> str:
        op = node.op
        if op == OP_CONST:
            return f"{node.width}'d{node.params[0]}"
        if op in (OP_REG, OP_INPUT):
            return self._names[id(node)]
        args = [self._names[id(a)] for a in node.args]
        if op == OP_NOT:
            return f"~{args[0]}"
        if op in _BINOPS:
            return f"{args[0]} {_BINOPS[op]} {args[1]}"
        if op == OP_MUX:
            return f"{args[0]} ? {args[1]} : {args[2]}"
        if op == OP_CAT:
            # Verilog concatenation is MSB-first; our cat() is LSB-first.
            return "{" + ", ".join(reversed(args)) + "}"
        if op == OP_SLICE:
            lo, hi = node.params
            if hi - lo == node.args[0].width:
                return args[0]
            if hi - lo == 1:
                return f"{args[0]}[{lo}]"
            return f"{args[0]}[{hi - 1}:{lo}]"
        if op == OP_SHL:
            return f"{args[0]} << {node.params[0]}"
        if op == OP_LSHR:
            return f"{args[0]} >> {node.params[0]}"
        if op == OP_REDOR:
            return f"|{args[0]}"
        if op == OP_REDAND:
            return f"&{args[0]}"
        raise HdlError(f"cannot export operator {op!r} to Verilog")

    def _walk(self, roots: List[Expr]) -> None:
        for node in topo_order(roots):
            key = id(node)
            if key in self._names:
                continue
            if node.op == OP_REG:
                self._names[key] = self._unique(_sanitize(node.params[0]))
                continue
            if node.op == OP_INPUT:
                self._names[key] = self._unique(_sanitize(node.params[0]))
                continue
            if node.op == OP_CONST:
                self._names[key] = self._emit_expr(node)
                continue
            name = self._fresh(node.op, node.width)
            self._assigns.append(f"assign {name} = {self._emit_expr(node)};")
            self._names[key] = name

    # ------------------------------------------------------------------
    def write(self, stream: TextIO) -> None:
        circuit = self.circuit
        # Pre-name registers and inputs so ports/decls come out stable.
        for node in circuit.inputs.values():
            self._names[id(node)] = self._unique(_sanitize(node.name))
        for reg in circuit.regs.values():
            self._names[id(reg)] = self._unique(_sanitize(reg.name))
        roots = circuit_roots(circuit)
        self._walk(roots)

        ports = ["clk", "rst"]
        ports += [self._names[id(n)] for n in circuit.inputs.values()]
        out_ports = {}
        for name, expr in circuit.outputs.items():
            port = self._unique(_sanitize(name))
            out_ports[port] = expr
            ports.append(port)

        stream.write(f"module {_sanitize(circuit.name)} (\n")
        stream.write(",\n".join(f"    {p}" for p in ports))
        stream.write("\n);\n\n")
        stream.write("input clk;\ninput rst;\n")
        for node in circuit.inputs.values():
            stream.write(
                "input " + self._decl("", self._names[id(node)],
                                      node.width).strip() + "\n"
            )
        for port, expr in out_ports.items():
            stream.write(
                "output " + self._decl("", port, expr.width).strip() + "\n"
            )
        stream.write("\n// registers\n")
        for reg in circuit.regs.values():
            stream.write(self._decl("reg", self._names[id(reg)], reg.width)
                         + "\n")
        stream.write("\n// combinational network\n")
        for decl in self._wire_decls:
            stream.write(decl + "\n")
        for assign in self._assigns:
            stream.write(assign + "\n")
        stream.write("\n// outputs\n")
        for port, expr in out_ports.items():
            stream.write(f"assign {port} = {self._names[id(expr)]};\n")
        stream.write("\n// state\nalways @(posedge clk) begin\n")
        stream.write("    if (rst) begin\n")
        for reg in circuit.regs.values():
            init = reg.init if reg.init is not None else 0
            stream.write(
                f"        {self._names[id(reg)]} <= {reg.width}'d{init};\n"
            )
        stream.write("    end else begin\n")
        for reg in circuit.regs.values():
            stream.write(
                f"        {self._names[id(reg)]} <= "
                f"{self._names[id(reg.next)]};\n"
            )
        stream.write("    end\nend\n\nendmodule\n")


def write_verilog(circuit: Circuit, stream: TextIO) -> None:
    """Convenience wrapper: export ``circuit`` as a Verilog module."""
    VerilogWriter(circuit).write(stream)
