"""Human-readable rendering of expressions (debugging & counterexamples)."""

from __future__ import annotations

from repro.hdl.expr import (
    OP_CAT,
    OP_CONST,
    OP_INPUT,
    OP_MUX,
    OP_NOT,
    OP_REG,
    OP_SLICE,
    Expr,
)

_INFIX = {
    "and": "&",
    "or": "|",
    "xor": "^",
    "add": "+",
    "sub": "-",
    "eq": "==",
    "ne": "!=",
    "ult": "<",
    "ule": "<=",
}


def format_expr(expr: Expr, max_depth: int = 8) -> str:
    """Render an expression as a compact infix string."""
    if max_depth < 0:
        return "…"
    op = expr.op
    if op == OP_CONST:
        return f"{expr.params[0]:#x}" if expr.width > 4 else str(expr.params[0])
    if op in (OP_INPUT, OP_REG):
        return expr.params[0]
    if op == OP_NOT:
        return f"~{format_expr(expr.args[0], max_depth - 1)}"
    if op in _INFIX:
        a = format_expr(expr.args[0], max_depth - 1)
        b = format_expr(expr.args[1], max_depth - 1)
        return f"({a} {_INFIX[op]} {b})"
    if op == OP_MUX:
        s = format_expr(expr.args[0], max_depth - 1)
        a = format_expr(expr.args[1], max_depth - 1)
        b = format_expr(expr.args[2], max_depth - 1)
        return f"({s} ? {a} : {b})"
    if op == OP_SLICE:
        lo, hi = expr.params
        inner = format_expr(expr.args[0], max_depth - 1)
        if hi - lo == 1:
            return f"{inner}[{lo}]"
        return f"{inner}[{lo}:{hi}]"
    if op == OP_CAT:
        parts = ", ".join(format_expr(a, max_depth - 1) for a in expr.args)
        return f"cat({parts})"
    if op in ("shl", "lshr"):
        sym = "<<" if op == "shl" else ">>"
        return f"({format_expr(expr.args[0], max_depth - 1)} {sym} {expr.params[0]})"
    if op in ("redor", "redand"):
        fn = "|" if op == "redor" else "&"
        return f"({fn}{format_expr(expr.args[0], max_depth - 1)})"
    parts = ", ".join(format_expr(a, max_depth - 1) for a in expr.args)
    return f"{op}({parts})"
