"""Register-file / memory arrays built from registers.

A :class:`MemoryArray` is a convenience wrapper that declares one register
per word, provides a combinational read port (mux tree) and a single
synchronous write port.  Small arrays only — every word is an individual
register, which is exactly what the formal engine wants (memory words can be
tagged, shared between miter instances, or excluded from commitments
individually).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import HdlError, WidthError
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Expr, Reg, const, mux, select


class MemoryArray:
    """An array of ``depth`` words of ``width`` bits inside a circuit."""

    def __init__(
        self,
        circuit: Circuit,
        name: str,
        depth: int,
        width: int,
        init: "Optional[int] | Sequence[Optional[int]]" = 0,
        arch: bool = False,
        tags: Iterable[str] = (),
    ) -> None:
        if depth <= 0:
            raise HdlError("memory depth must be positive")
        self.circuit = circuit
        self.name = name
        self.depth = depth
        self.width = width
        if init is None or isinstance(init, int):
            inits: List[Optional[int]] = [init] * depth
        else:
            inits = list(init)
            if len(inits) != depth:
                raise HdlError(
                    f"memory {name!r}: {len(inits)} init values for depth {depth}"
                )
        self.words: List[Reg] = [
            circuit.reg(f"{name}[{i}]", width, init=inits[i], arch=arch, tags=tags)
            for i in range(depth)
        ]
        self._written = False

    # ------------------------------------------------------------------
    def addr_width(self) -> int:
        """Number of address bits needed to index every word."""
        return max(1, (self.depth - 1).bit_length())

    def read(self, addr: Expr) -> Expr:
        """Combinational read of the current cycle's contents."""
        if addr.width < self.addr_width():
            raise WidthError(
                f"memory {self.name!r}: address width {addr.width} too narrow "
                f"for depth {self.depth}"
            )
        return select(addr, list(self.words), width=self.width)

    def write(self, addr: Expr, data: "Expr | int", enable: Expr) -> None:
        """Synchronous write port (at most one per memory).

        When ``enable`` is high, word ``addr`` is updated with ``data``;
        all other words hold.
        """
        if self._written:
            raise HdlError(f"memory {self.name!r} already has a write port")
        if enable.width != 1:
            raise WidthError("write enable must be 1 bit")
        if isinstance(data, int):
            data = const(data, self.width)
        if data.width != self.width:
            raise WidthError(
                f"memory {self.name!r}: write data width {data.width} != {self.width}"
            )
        for i, word in enumerate(self.words):
            hit = enable & addr.eq(const(i, addr.width))
            self.circuit.next(word, mux(hit, data, word))
        self._written = True

    def __len__(self) -> int:
        return self.depth

    def __getitem__(self, index: int) -> Reg:
        return self.words[index]
