"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class HdlError(ReproError):
    """Raised for malformed hardware descriptions (widths, names, wiring)."""


class WidthError(HdlError):
    """Raised when expression operand widths are inconsistent."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (bad inputs, missing state)."""


class FormalError(ReproError):
    """Raised by the formal engine (solver, bit-blaster, unroller)."""


class IsaError(ReproError):
    """Raised for malformed instructions or assembler input."""


class UpecError(ReproError):
    """Raised by the UPEC core for inconsistent model configuration."""


class DistError(ReproError):
    """Raised by the distributed proof service (broker, worker, remote
    pool) for protocol violations, lost connections and failed jobs."""


class UsageError(ReproError):
    """Raised for invalid command-line usage (bad flag combinations or
    out-of-range values); the CLI reports it and exits with code 64."""
