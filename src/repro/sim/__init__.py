"""Cycle-accurate simulation of mini-HDL circuits."""

from repro.sim.compile import CompiledSimulator, compile_circuit
from repro.sim.engine import Simulator
from repro.sim.trace import Trace, TracingSimulator
from repro.sim.vcd import VcdWriter, dump_vcd

__all__ = [
    "CompiledSimulator",
    "Simulator",
    "Trace",
    "TracingSimulator",
    "VcdWriter",
    "compile_circuit",
    "dump_vcd",
]
