"""Circuit-to-Python compilation for fast simulation.

The interpreting simulator walks the expression DAG with a dict per node;
for long-running workloads (the attack demos execute hundreds of programs)
this module instead emits one Python function per circuit that computes
the next state and outputs with plain local-variable arithmetic —
typically an order of magnitude faster, with identical semantics (the
property tests in ``tests/test_sim_compile.py`` enforce agreement).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import SimulationError
from repro.hdl.analysis import circuit_roots, topo_order
from repro.hdl.circuit import Circuit
from repro.hdl.expr import (
    OP_ADD,
    OP_AND,
    OP_CAT,
    OP_CONST,
    OP_EQ,
    OP_INPUT,
    OP_LSHR,
    OP_MUX,
    OP_NE,
    OP_NOT,
    OP_OR,
    OP_REDAND,
    OP_REDOR,
    OP_REG,
    OP_SHL,
    OP_SLICE,
    OP_SUB,
    OP_ULE,
    OP_ULT,
    OP_XOR,
    Expr,
    Reg,
    mask,
)

#: Compiled step: (state vector, inputs) -> (next state vector, outputs)
StepFunction = Callable[
    [List[int], Dict[str, int]], Tuple[List[int], Dict[str, int]]
]


def _emit_node(node: Expr, name_of: Dict[int, str]) -> str:
    op = node.op
    args = [name_of[id(a)] for a in node.args]
    w = mask(node.width)
    if op == OP_NOT:
        return f"{args[0]} ^ {w}"
    if op == OP_AND:
        return f"{args[0]} & {args[1]}"
    if op == OP_OR:
        return f"{args[0]} | {args[1]}"
    if op == OP_XOR:
        return f"{args[0]} ^ {args[1]}"
    if op == OP_ADD:
        return f"({args[0]} + {args[1]}) & {w}"
    if op == OP_SUB:
        return f"({args[0]} - {args[1]}) & {w}"
    if op == OP_EQ:
        return f"1 if {args[0]} == {args[1]} else 0"
    if op == OP_NE:
        return f"1 if {args[0]} != {args[1]} else 0"
    if op == OP_ULT:
        return f"1 if {args[0]} < {args[1]} else 0"
    if op == OP_ULE:
        return f"1 if {args[0]} <= {args[1]} else 0"
    if op == OP_MUX:
        return f"{args[1]} if {args[0]} else {args[2]}"
    if op == OP_CAT:
        parts = []
        shift = 0
        for child, arg in zip(node.args, args):
            parts.append(arg if shift == 0 else f"({arg} << {shift})")
            shift += child.width
        return " | ".join(parts)
    if op == OP_SLICE:
        lo, hi = node.params
        if lo == 0:
            return f"{args[0]} & {mask(hi)}"
        return f"({args[0]} >> {lo}) & {mask(hi - lo)}"
    if op == OP_SHL:
        return f"({args[0]} << {node.params[0]}) & {w}"
    if op == OP_LSHR:
        return f"{args[0]} >> {node.params[0]}"
    if op == OP_REDOR:
        return f"1 if {args[0]} else 0"
    if op == OP_REDAND:
        return f"1 if {args[0]} == {mask(node.args[0].width)} else 0"
    raise SimulationError(f"cannot compile operator {op!r}")


def compile_circuit(circuit: Circuit) -> Tuple[StepFunction, List[Reg]]:
    """Compile a finalized circuit; returns (step function, register
    order).  The state vector is indexed by the returned order."""
    if not circuit.finalized:
        circuit.finalize()
    regs = list(circuit.regs.values())
    reg_index = {id(reg): i for i, reg in enumerate(regs)}
    order = topo_order(circuit_roots(circuit))

    lines = ["def _step(state, inputs):"]
    name_of: Dict[int, str] = {}
    counter = 0
    for node in order:
        key = id(node)
        if key in name_of:
            continue
        if node.op == OP_REG:
            name_of[key] = f"state[{reg_index[key]}]"
            continue
        if node.op == OP_CONST:
            name_of[key] = repr(node.params[0])
            continue
        if node.op == OP_INPUT:
            name = f"v{counter}"
            counter += 1
            lines.append(
                f"    {name} = inputs[{node.params[0]!r}] & {mask(node.width)}"
            )
            name_of[key] = name
            continue
        name = f"v{counter}"
        counter += 1
        lines.append(f"    {name} = {_emit_node(node, name_of)}")
        name_of[key] = name
    next_exprs = ", ".join(name_of[id(reg.next)] for reg in regs)
    lines.append(f"    next_state = [{next_exprs}]")
    outputs = ", ".join(
        f"{name!r}: {name_of[id(expr)]}"
        for name, expr in circuit.outputs.items()
    )
    lines.append(f"    return next_state, {{{outputs}}}")
    source = "\n".join(lines)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<compiled {circuit.name}>", "exec"), namespace)
    return namespace["_step"], regs  # type: ignore[return-value]


class CompiledSimulator:
    """Drop-in fast simulator (registers and outputs only).

    For expression probing (``eval``/``peek`` of arbitrary expressions),
    use the interpreting :class:`repro.sim.Simulator`; this class trades
    that flexibility for speed.
    """

    def __init__(self, circuit: Circuit, init_overrides=None) -> None:
        self._step, self._regs = _compiled(circuit)
        self.circuit = circuit
        self.cycle = 0
        overrides = dict(init_overrides or {})
        self.state: List[int] = []
        self._index = {reg.name: i for i, reg in enumerate(self._regs)}
        for reg in self._regs:
            if reg.name in overrides:
                self.state.append(overrides.pop(reg.name) & mask(reg.width))
            else:
                self.state.append(reg.init if reg.init is not None else 0)
        if overrides:
            raise SimulationError(
                f"init override for unknown register(s): "
                f"{', '.join(sorted(overrides))}"
            )
        self.outputs: Dict[str, int] = {}

    def step(self, inputs: Dict[str, int] = None) -> Dict[str, int]:
        self.state, self.outputs = self._step(self.state, inputs or {})
        self.cycle += 1
        return self.outputs

    def run(self, cycles: int, inputs=None, until=None) -> int:
        executed = 0
        for _ in range(cycles):
            self.step(inputs)
            executed += 1
            if until is not None and until(self):
                break
        return executed

    def peek(self, name: str) -> int:
        try:
            return self.state[self._index[name]]
        except KeyError:
            raise SimulationError(f"unknown register {name!r}") from None

    def snapshot(self) -> Dict[str, int]:
        return {reg.name: v for reg, v in zip(self._regs, self.state)}


_CACHE: Dict[int, Tuple[StepFunction, List[Reg]]] = {}
_CACHE_KEEPALIVE: Dict[int, Circuit] = {}


def _compiled(circuit: Circuit) -> Tuple[StepFunction, List[Reg]]:
    key = id(circuit)
    if key not in _CACHE or _CACHE_KEEPALIVE.get(key) is not circuit:
        _CACHE[key] = compile_circuit(circuit)
        _CACHE_KEEPALIVE[key] = circuit
    return _CACHE[key]
