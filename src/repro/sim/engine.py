"""Cycle-accurate two-value simulator for circuits.

The simulator evaluates the combinational DAG once per cycle in topological
order, then commits all register next-values simultaneously — standard
synchronous semantics.  Values are Python ints masked to their width.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.hdl.analysis import circuit_roots, topo_order
from repro.hdl.circuit import Circuit
from repro.hdl.expr import (
    OP_ADD,
    OP_AND,
    OP_CAT,
    OP_CONST,
    OP_EQ,
    OP_INPUT,
    OP_LSHR,
    OP_MUX,
    OP_NE,
    OP_NOT,
    OP_OR,
    OP_REDAND,
    OP_REDOR,
    OP_REG,
    OP_SHL,
    OP_SLICE,
    OP_SUB,
    OP_ULE,
    OP_ULT,
    OP_XOR,
    Expr,
    Reg,
    mask,
)


def _eval_node(op: str, node: Expr, values: Dict[int, int]) -> int:
    """Evaluate one interior node given its children's values."""
    args = node.args
    w = node.width
    if op == OP_NOT:
        return values[id(args[0])] ^ mask(w)
    if op == OP_AND:
        return values[id(args[0])] & values[id(args[1])]
    if op == OP_OR:
        return values[id(args[0])] | values[id(args[1])]
    if op == OP_XOR:
        return values[id(args[0])] ^ values[id(args[1])]
    if op == OP_ADD:
        return (values[id(args[0])] + values[id(args[1])]) & mask(w)
    if op == OP_SUB:
        return (values[id(args[0])] - values[id(args[1])]) & mask(w)
    if op == OP_EQ:
        return int(values[id(args[0])] == values[id(args[1])])
    if op == OP_NE:
        return int(values[id(args[0])] != values[id(args[1])])
    if op == OP_ULT:
        return int(values[id(args[0])] < values[id(args[1])])
    if op == OP_ULE:
        return int(values[id(args[0])] <= values[id(args[1])])
    if op == OP_MUX:
        return values[id(args[1])] if values[id(args[0])] else values[id(args[2])]
    if op == OP_CAT:
        acc = 0
        shift = 0
        for part in args:
            acc |= values[id(part)] << shift
            shift += part.width
        return acc
    if op == OP_SLICE:
        lo, hi = node.params
        return (values[id(args[0])] >> lo) & mask(hi - lo)
    if op == OP_SHL:
        return (values[id(args[0])] << node.params[0]) & mask(w)
    if op == OP_LSHR:
        return values[id(args[0])] >> node.params[0]
    if op == OP_REDOR:
        return int(values[id(args[0])] != 0)
    if op == OP_REDAND:
        return int(values[id(args[0])] == mask(args[0].width))
    raise SimulationError(f"unknown operator {op!r}")


class Simulator:
    """Simulate a finalized circuit cycle by cycle.

    Registers with symbolic init (``init=None``) start from
    ``init_overrides`` when given, otherwise from 0.
    """

    def __init__(
        self,
        circuit: Circuit,
        init_overrides: Optional[Mapping[str, int]] = None,
    ) -> None:
        if not circuit.finalized:
            circuit.finalize()
        self.circuit = circuit
        self.cycle = 0
        self._order: List[Expr] = topo_order(circuit_roots(circuit))
        self.state: Dict[Reg, int] = {}
        overrides = dict(init_overrides or {})
        for name, reg in circuit.regs.items():
            if name in overrides:
                value = overrides.pop(name) & mask(reg.width)
            elif reg.init is not None:
                value = reg.init
            else:
                value = 0
            self.state[reg] = value
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise SimulationError(f"init override for unknown register(s): {unknown}")
        self._values: Dict[int, int] = {}
        self._last_inputs: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, inputs: Mapping[str, int]) -> Dict[int, int]:
        values: Dict[int, int] = {}
        circ_inputs = self.circuit.inputs
        for name, node in circ_inputs.items():
            if name not in inputs:
                raise SimulationError(f"missing value for input {name!r}")
            values[id(node)] = inputs[name] & mask(node.width)
        extra = set(inputs) - set(circ_inputs)
        if extra:
            raise SimulationError(f"unknown input(s): {', '.join(sorted(extra))}")
        for node in self._order:
            key = id(node)
            if key in values:
                continue
            op = node.op
            if op == OP_CONST:
                values[key] = node.params[0]
            elif op == OP_REG:
                values[key] = self.state[node]  # type: ignore[index]
            elif op == OP_INPUT:
                raise SimulationError(f"missing value for input {node.params[0]!r}")
            else:
                values[key] = _eval_node(op, node, values)
        return values

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle; returns the outputs sampled this cycle."""
        inputs = dict(inputs or {})
        values = self._evaluate(inputs)
        self._values = values
        self._last_inputs = inputs
        outputs = {
            name: values[id(expr)] for name, expr in self.circuit.outputs.items()
        }
        new_state: Dict[Reg, int] = {}
        for reg in self.circuit.regs.values():
            assert reg.next is not None
            new_state[reg] = values[id(reg.next)]
        self.state = new_state
        self.cycle += 1
        return outputs

    def run(
        self,
        cycles: int,
        inputs: Optional[Mapping[str, int]] = None,
        until: Optional[Callable[["Simulator"], bool]] = None,
    ) -> int:
        """Run for up to ``cycles`` cycles; stop early when ``until`` holds.

        Returns the number of cycles actually executed.
        """
        executed = 0
        for _ in range(cycles):
            self.step(inputs)
            executed += 1
            if until is not None and until(self):
                break
        return executed

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def peek(self, target: "Expr | str") -> int:
        """Current value of a register (pre-clock) or, for other
        expressions/output names, the value computed in the last step."""
        if isinstance(target, str):
            if target in self.circuit.regs:
                return self.state[self.circuit.regs[target]]
            if target in self.circuit.outputs:
                target = self.circuit.outputs[target]
                if id(target) in self._values:
                    return self._values[id(target)]
            else:
                raise SimulationError(f"unknown signal {target!r}")
        if isinstance(target, Reg):
            return self.state[target]
        if id(target) in self._values:
            return self._values[id(target)]
        return self.eval(target)

    def eval(self, expr: Expr, inputs: Optional[Mapping[str, int]] = None) -> int:
        """Evaluate an arbitrary expression against the *current* state.

        Inputs default to the values supplied in the last ``step``.
        """
        merged = dict(self._last_inputs)
        merged.update(inputs or {})
        values: Dict[int, int] = {}
        for name, node in self.circuit.inputs.items():
            if name in merged:
                values[id(node)] = merged[name] & mask(node.width)
        for node in topo_order([expr]):
            key = id(node)
            if key in values:
                continue
            op = node.op
            if op == OP_CONST:
                values[key] = node.params[0]
            elif op == OP_REG:
                values[key] = self.state[node]  # type: ignore[index]
            elif op == OP_INPUT:
                raise SimulationError(f"missing value for input {node.params[0]!r}")
            else:
                values[key] = _eval_node(op, node, values)
        return values[id(expr)]

    def poke(self, reg: "Reg | str", value: int) -> None:
        """Force a register to a value (testing aid)."""
        if isinstance(reg, str):
            if reg not in self.circuit.regs:
                raise SimulationError(f"unknown register {reg!r}")
            reg = self.circuit.regs[reg]
        self.state[reg] = value & mask(reg.width)

    def snapshot(self) -> Dict[str, int]:
        """Copy of the full register state, keyed by register name."""
        return {reg.name: value for reg, value in self.state.items()}
