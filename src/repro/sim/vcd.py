"""VCD (Value Change Dump) export for simulation traces.

Writes standard VCD files viewable in GTKWave & friends — handy when
diagnosing counterexamples or attack timing on the SoC.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, TextIO

from repro.errors import SimulationError
from repro.sim.engine import Simulator

_IDENT_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the index-th signal."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_IDENT_CHARS))
        chars.append(_IDENT_CHARS[rem])
    return "".join(chars)


class VcdWriter:
    """Stream register values of a simulation into a VCD file."""

    def __init__(
        self,
        stream: TextIO,
        signals: Mapping[str, int],
        timescale: str = "1 ns",
        module: str = "top",
    ) -> None:
        if not signals:
            raise SimulationError("VCD export needs at least one signal")
        self.stream = stream
        self.signals = dict(signals)  # name -> width
        self._idents = {
            name: _identifier(i) for i, name in enumerate(self.signals)
        }
        self._last: Dict[str, Optional[int]] = {n: None for n in self.signals}
        self._time = 0
        self._write_header(timescale, module)

    def _write_header(self, timescale: str, module: str) -> None:
        out = self.stream
        out.write(f"$timescale {timescale} $end\n")
        out.write(f"$scope module {module} $end\n")
        for name, width in self.signals.items():
            ident = self._idents[name]
            safe = name.replace("[", "(").replace("]", ")")
            out.write(f"$var wire {width} {ident} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

    def sample(self, values: Mapping[str, int]) -> None:
        """Record one cycle's values (only changes are emitted)."""
        changes = []
        for name in self.signals:
            value = values[name]
            if self._last[name] != value:
                self._last[name] = value
                width = self.signals[name]
                ident = self._idents[name]
                if width == 1:
                    changes.append(f"{value & 1}{ident}")
                else:
                    bits = format(value, "b")
                    changes.append(f"b{bits} {ident}")
        if changes:
            self.stream.write(f"#{self._time}\n")
            self.stream.write("\n".join(changes) + "\n")
        self._time += 1


def dump_vcd(
    simulator: Simulator,
    stream: TextIO,
    signals: Sequence[str],
    cycles: int,
    inputs: Optional[Mapping[str, int]] = None,
) -> None:
    """Run a simulation for ``cycles`` cycles, dumping ``signals``.

    ``signals`` must name registers of the simulated circuit.
    """
    regs = simulator.circuit.regs
    widths = {}
    for name in signals:
        if name not in regs:
            raise SimulationError(f"unknown register {name!r} for VCD dump")
        widths[name] = regs[name].width
    writer = VcdWriter(stream, widths)
    for _ in range(cycles):
        writer.sample({name: simulator.peek(name) for name in signals})
        simulator.step(inputs)
    writer.sample({name: simulator.peek(name) for name in signals})
