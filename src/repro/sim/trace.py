"""Waveform capture for simulations and counterexample rendering."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.sim.engine import Simulator


class Trace:
    """A table of signal values over cycles."""

    def __init__(self, signals: Sequence[str]) -> None:
        self.signals = list(signals)
        self.rows: List[Dict[str, int]] = []

    def record(self, values: Mapping[str, int]) -> None:
        self.rows.append({name: values[name] for name in self.signals})

    def column(self, signal: str) -> List[int]:
        return [row[signal] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def render(self, max_cycles: Optional[int] = None, base: str = "hex") -> str:
        """Render as an ASCII table (cycles as columns)."""
        rows = self.rows if max_cycles is None else self.rows[:max_cycles]
        if not rows:
            return "(empty trace)"

        def fmt(value: int) -> str:
            return f"{value:x}" if base == "hex" else str(value)

        name_w = max(len(s) for s in self.signals)
        cells = {
            s: [fmt(row[s]) for row in rows] for s in self.signals
        }
        col_w = [
            max(len(str(t)), max(len(cells[s][t]) for s in self.signals))
            for t in range(len(rows))
        ]
        header = " " * name_w + " | " + " ".join(
            str(t).rjust(col_w[t]) for t in range(len(rows))
        )
        lines = [header, "-" * len(header)]
        for s in self.signals:
            line = s.rjust(name_w) + " | " + " ".join(
                cells[s][t].rjust(col_w[t]) for t in range(len(rows))
            )
            lines.append(line)
        return "\n".join(lines)


class TracingSimulator:
    """Wrap a :class:`Simulator`, recording chosen registers every cycle."""

    def __init__(self, simulator: Simulator, signals: Sequence[str]) -> None:
        self.simulator = simulator
        self.trace = Trace(signals)
        self._record()

    def _record(self) -> None:
        values = {name: self.simulator.peek(name) for name in self.trace.signals}
        self.trace.record(values)

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        outputs = self.simulator.step(inputs)
        self._record()
        return outputs

    def run(self, cycles: int, inputs: Optional[Mapping[str, int]] = None) -> None:
        for _ in range(cycles):
            self.step(inputs)
