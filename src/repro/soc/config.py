"""SoC configuration and design variants.

The SoC is a parameterized single-core system: an in-order 5-stage pipeline
(IF, ID, EX, M, WB), a direct-mapped write-back/write-allocate data cache
with a pipelined core interface (pending-write RAW hazard handling), main
memory, and RISC-V-style physical memory protection (PMP) with TOR regions
and lock bits.

Four design variants mirror Sec. VII of the paper.  They differ in exactly
four microarchitectural decisions:

``mem_forward_bypass``
    Forward cache read data combinationally from the M stage to a dependent
    instruction in EX (the paper's 17-LoC "performance optimization" that
    removes the stall between consecutive dependent loads).  When off, load
    data is only forwarded from the WB-stage response buffer and a one-cycle
    load-use interlock is inserted.
``refill_cancel_on_flush``
    Abort an in-flight cache line refill when the pipeline is flushed by an
    exception.  Turning this off creates the Meltdown-style footprint
    channel of Fig. 1 (left).
``flush_waits_for_mem``
    Trap redirection waits for the memory stage to drain.  When the cache
    interface cannot cancel an accepted transaction (the Orc decision), a
    squashed dependent load serializes trap entry behind the RAW-hazard
    drain — the Orc timing channel of Sec. III.
``pmp_tor_lock``
    Implement the ISA rule that locking a TOR range's end entry implicitly
    locks the start-address register of the range.  RocketChip's omission
    of this rule is the real bug of Sec. VII-C.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class SocConfig:
    """Parameters of one SoC instance."""

    xlen: int = 8                 # data and address width
    imem_words: int = 32          # instruction memory depth (16-bit words)
    dmem_words: int = 16          # data memory depth (bytes)
    cache_lines: int = 4          # direct-mapped, one byte per line
    write_pending_cycles: int = 4  # store occupies the cache write pipe
    miss_latency: int = 4         # cycles from miss to line fill
    counter_width: int = 16       # cycle counter CSR width
    trap_vector: int = 1          # PC of the trap handler (word 0 = reset jump)
    secret_addr: int = 12         # protected location A (must be < 2**xlen)
    # --- variant knobs -------------------------------------------------
    mem_forward_bypass: bool = False
    refill_cancel_on_flush: bool = True
    flush_waits_for_mem: bool = False
    pmp_tor_lock: bool = True
    name: str = "secure"

    def __post_init__(self) -> None:
        if self.xlen != 8:
            raise ValueError("only xlen=8 is supported by the RV8 ISA")
        for field_name in ("imem_words", "dmem_words", "cache_lines"):
            if not _is_pow2(getattr(self, field_name)):
                raise ValueError(f"{field_name} must be a power of two")
        if self.cache_lines > self.dmem_words:
            raise ValueError("cache_lines must not exceed dmem_words")
        if self.cache_lines < 2:
            raise ValueError("cache_lines must be at least 2")
        if not 0 <= self.secret_addr < 2 ** self.xlen:
            raise ValueError("secret_addr out of address range")
        if self.write_pending_cycles < 2:
            raise ValueError("write_pending_cycles must be at least 2")
        if self.miss_latency < 1:
            raise ValueError("miss_latency must be at least 1")
        if self.counter_width < self.xlen:
            raise ValueError("counter_width must be at least xlen")

    # --- derived geometry ----------------------------------------------
    @property
    def index_bits(self) -> int:
        return (self.cache_lines - 1).bit_length()

    @property
    def tag_bits(self) -> int:
        """Tag width over *effective* addresses (the SoC's physical space
        is dmem_words bytes; high address bits are ignored consistently)."""
        return max(1, self.dmem_index_bits - self.index_bits)

    @property
    def pc_bits(self) -> int:
        return self.xlen

    @property
    def imem_index_bits(self) -> int:
        return (self.imem_words - 1).bit_length()

    @property
    def dmem_index_bits(self) -> int:
        return (self.dmem_words - 1).bit_length()

    def line_index(self, addr: int) -> int:
        """Cache line index of an address (its low bits)."""
        return addr & (self.cache_lines - 1)

    def with_variant(self, **kwargs) -> "SocConfig":
        return replace(self, **kwargs)

    # --- the four designs of the experiments ----------------------------
    @classmethod
    def secure(cls, **kwargs) -> "SocConfig":
        """The original-RocketChip analogue: no covert channel."""
        return cls(name="secure", **kwargs)

    @classmethod
    def orc(cls, **kwargs) -> "SocConfig":
        """Orc-vulnerable: response-buffer bypass + uncancellable cache
        transactions serialize trap entry behind the RAW-hazard drain."""
        return cls(
            name="orc",
            mem_forward_bypass=True,
            flush_waits_for_mem=True,
            **kwargs,
        )

    @classmethod
    def meltdown(cls, **kwargs) -> "SocConfig":
        """Meltdown-style vulnerable: refills of squashed loads complete."""
        return cls(
            name="meltdown",
            mem_forward_bypass=True,
            refill_cancel_on_flush=False,
            **kwargs,
        )

    @classmethod
    def pmp_bug(cls, **kwargs) -> "SocConfig":
        """ISA-incompliant PMP: TOR lock does not cover the start entry."""
        return cls(name="pmp_bug", pmp_tor_lock=False, **kwargs)


#: The design variants of the experiments, by constructor name (the CLI
#: and the scenario sweeps both enumerate this).
VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")


#: The small geometry used by the formal (UPEC) experiments — the SAT
#: problems grow with memory sizes and window length, so the formal runs
#: use the minimal geometry that still exhibits every covert channel.
FORMAL_CONFIG_KWARGS = dict(
    imem_words=8,
    dmem_words=16,
    cache_lines=4,
    write_pending_cycles=3,
    miss_latency=3,
    counter_width=8,
    secret_addr=12,
)

#: A larger geometry used by the simulation-level attack demos.
SIM_CONFIG_KWARGS = dict(
    imem_words=64,
    dmem_words=64,
    cache_lines=16,
    write_pending_cycles=6,
    miss_latency=8,
    counter_width=16,
    secret_addr=40,
)
