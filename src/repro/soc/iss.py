"""Instruction-set simulator (ISS): the golden architectural model.

Executes RV8 programs one instruction at a time with full ISA semantics —
PMP checks, traps, CSRs, privilege modes — but no microarchitectural timing.
The RTL pipeline is validated against this model (architectural trace
equivalence), and the PMP lock-compliance test of Sec. VII-C compares the
buggy RTL against this specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import IsaError
from repro.soc import isa
from repro.soc.config import SocConfig
from repro.soc.isa import (
    CAUSE_ECALL,
    CAUSE_LOAD_FAULT,
    CAUSE_STORE_FAULT,
    CSR_CYCLE,
    CSR_MCAUSE,
    CSR_MEPC,
    CSR_PMPADDR0,
    CSR_PMPADDR1,
    CSR_PMPCFG0,
    CSR_PMPCFG1,
    MODE_MACHINE,
    MODE_USER,
    NUM_REGS,
    OP_ADDI,
    OP_ALU,
    OP_BEQ,
    OP_BNE,
    OP_CSRR,
    OP_CSRW,
    OP_ECALL,
    OP_JAL,
    OP_LB,
    OP_LI,
    OP_MRET,
    OP_NOP,
    OP_SB,
    F_ADD,
    F_AND,
    F_OR,
    F_SLTU,
    F_SUB,
    F_XOR,
    PMP_A,
    PMP_L,
    PMP_R,
    PMP_W,
    Instruction,
    decode,
)

MASK8 = 0xFF


@dataclass
class ArchState:
    """A snapshot of the architectural state (for trace comparison)."""

    pc: int
    regs: List[int]
    mode: int
    mepc: int
    mcause: int
    pmpaddr0: int
    pmpcfg0: int
    pmpaddr1: int
    pmpcfg1: int

    def as_dict(self) -> Dict[str, int]:
        data = {f"x{i}": v for i, v in enumerate(self.regs)}
        data.update(
            pc=self.pc, mode=self.mode, mepc=self.mepc, mcause=self.mcause,
            pmpaddr0=self.pmpaddr0, pmpcfg0=self.pmpcfg0,
            pmpaddr1=self.pmpaddr1, pmpcfg1=self.pmpcfg1,
        )
        return data


class Iss:
    """Architectural simulator for one RV8 hart."""

    def __init__(
        self,
        config: SocConfig,
        program: Sequence[int],
        memory: Optional[Sequence[int]] = None,
        mode: int = MODE_MACHINE,
        tor_lock: Optional[bool] = None,
    ) -> None:
        self.config = config
        if len(program) > config.imem_words:
            raise IsaError(
                f"program of {len(program)} words exceeds imem "
                f"({config.imem_words} words)"
            )
        self.imem: List[int] = list(program) + [0] * (
            config.imem_words - len(program)
        )
        mem = list(memory or [])
        if len(mem) > config.dmem_words:
            raise IsaError("initial memory exceeds dmem size")
        self.dmem: List[int] = [v & MASK8 for v in mem] + [0] * (
            config.dmem_words - len(mem)
        )
        self.pc = 0
        self.regs = [0] * NUM_REGS
        self.mode = mode
        self.mepc = 0
        self.mcause = 0
        self.csr: Dict[int, int] = {
            CSR_PMPADDR0: 0, CSR_PMPCFG0: 0,
            CSR_PMPADDR1: 0, CSR_PMPCFG1: 0,
        }
        # ISA compliance knob: True = the specified TOR lock rule.  The
        # buggy-RTL equivalence tests set this to False deliberately.
        self.tor_lock = config.pmp_tor_lock if tor_lock is None else tor_lock
        self.retired = 0
        self.trap_count = 0

    # ------------------------------------------------------------------
    # Memory & protection
    # ------------------------------------------------------------------
    def _mem_index(self, addr: int) -> int:
        return addr & (self.config.dmem_words - 1)

    def pmp_allows(self, addr: int, is_store: bool) -> bool:
        """PMP check for the current mode.

        The region is TOR-style with an *inclusive* upper bound, compared
        on effective (wrapped) addresses so that memory aliasing cannot
        bypass protection — identical to the RTL.
        """
        if self.mode == MODE_MACHINE:
            return True
        cfg1 = self.csr[CSR_PMPCFG1]
        if not cfg1 & PMP_A:
            return True
        wrap = self.config.dmem_words - 1
        eff = addr & wrap
        lo = self.csr[CSR_PMPADDR0] & wrap
        hi = self.csr[CSR_PMPADDR1] & wrap
        if not lo <= eff <= hi:
            return True
        return bool(cfg1 & (PMP_W if is_store else PMP_R))

    def load(self, addr: int) -> int:
        return self.dmem[self._mem_index(addr)]

    def store(self, addr: int, value: int) -> None:
        self.dmem[self._mem_index(addr)] = value & MASK8

    # ------------------------------------------------------------------
    # CSRs
    # ------------------------------------------------------------------
    def csr_read(self, csr: int, cycle_value: int = 0) -> int:
        if csr == CSR_CYCLE:
            return cycle_value & ((1 << self.config.counter_width) - 1)
        if csr == CSR_MEPC:
            return self.mepc
        if csr == CSR_MCAUSE:
            return self.mcause
        return self.csr.get(csr, 0)

    def _pmp_write_allowed(self, csr: int) -> bool:
        cfg0 = self.csr[CSR_PMPCFG0]
        cfg1 = self.csr[CSR_PMPCFG1]
        if csr in (CSR_PMPADDR1, CSR_PMPCFG1):
            return not cfg1 & PMP_L
        if csr == CSR_PMPCFG0:
            return not cfg0 & PMP_L
        if csr == CSR_PMPADDR0:
            if cfg0 & PMP_L:
                return False
            # The ISA rule of Sec. VII-C: a locked TOR end entry locks the
            # start address register of its range.
            if self.tor_lock and (cfg1 & PMP_L) and (cfg1 & PMP_A):
                return False
            return True
        return True

    def csr_write(self, csr: int, value: int) -> None:
        """Machine-mode CSR write (user-mode writes are ignored upstream)."""
        value &= MASK8
        if csr == CSR_CYCLE:
            return  # read-only
        if csr == CSR_MEPC:
            self.mepc = value
            return
        if csr == CSR_MCAUSE:
            self.mcause = value & 0x7
            return
        if csr in (CSR_PMPCFG0, CSR_PMPCFG1):
            if self._pmp_write_allowed(csr):
                self.csr[csr] = value & 0xF
            return
        if csr in (CSR_PMPADDR0, CSR_PMPADDR1):
            if self._pmp_write_allowed(csr):
                self.csr[csr] = value
            return
        raise IsaError(f"unknown CSR {csr:#x}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _trap(self, cause: int, pc: int) -> None:
        self.mepc = pc
        self.mcause = cause & 0x7
        self.mode = MODE_MACHINE
        self.pc = self.config.trap_vector
        self.trap_count += 1

    def _write_reg(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd] = value & MASK8

    def fetch(self, pc: int) -> Instruction:
        return decode(self.imem[pc & (self.config.imem_words - 1)])

    def step(self, cycle_value: int = 0) -> Instruction:
        """Execute one instruction; returns the decoded instruction."""
        pc = self.pc
        instr = self.fetch(pc)
        next_pc = (pc + 1) & MASK8
        op = instr.opcode
        if op == OP_NOP:
            pass
        elif op == OP_LI:
            self._write_reg(instr.rd, instr.imm)
        elif op == OP_ADDI:
            self._write_reg(instr.rd, self.regs[instr.rs1] + instr.simm)
        elif op == OP_ALU:
            a, b = self.regs[instr.rs1], self.regs[instr.rs2]
            results = {
                F_ADD: a + b, F_SUB: a - b, F_AND: a & b,
                F_OR: a | b, F_XOR: a ^ b, F_SLTU: int(a < b),
            }
            self._write_reg(instr.rd, results.get(instr.funct, 0))
        elif op == OP_LB:
            addr = (self.regs[instr.rs1] + instr.simm) & MASK8
            if not self.pmp_allows(addr, is_store=False):
                self._trap(CAUSE_LOAD_FAULT, pc)
                self.retired += 1
                return instr
            self._write_reg(instr.rd, self.load(addr))
        elif op == OP_SB:
            addr = (self.regs[instr.rs1] + instr.simm) & MASK8
            if not self.pmp_allows(addr, is_store=True):
                self._trap(CAUSE_STORE_FAULT, pc)
                self.retired += 1
                return instr
            self.store(addr, self.regs[instr.rs2])
        elif op == OP_BEQ:
            if self.regs[instr.rs1] == self.regs[instr.rs2]:
                next_pc = (pc + instr.simm) & MASK8
        elif op == OP_BNE:
            if self.regs[instr.rs1] != self.regs[instr.rs2]:
                next_pc = (pc + instr.simm) & MASK8
        elif op == OP_JAL:
            self._write_reg(instr.rd, (pc + 1) & MASK8)
            next_pc = (pc + instr.simm) & MASK8
        elif op == OP_CSRR:
            self._write_reg(instr.rd, self.csr_read(instr.imm, cycle_value))
        elif op == OP_CSRW:
            if self.mode == MODE_MACHINE:
                self.csr_write(instr.imm, self.regs[instr.rs1])
            # user-mode CSR writes are silently ignored (design decision,
            # matched by the RTL)
        elif op == OP_MRET:
            if self.mode == MODE_MACHINE:
                self.pc = self.mepc
                self.mode = MODE_USER
                self.retired += 1
                return instr
            # MRET in user mode is a no-op (matches the RTL).
        elif op == OP_ECALL:
            self._trap(CAUSE_ECALL, pc)
            self.retired += 1
            return instr
        else:
            raise IsaError(f"unknown opcode {op:#x} at pc={pc}")
        self.pc = next_pc
        self.retired += 1
        return instr

    def run(self, max_steps: int, stop_pc: Optional[int] = None) -> int:
        """Run up to ``max_steps`` instructions; stop when pc hits
        ``stop_pc``.  Returns instructions retired."""
        steps = 0
        while steps < max_steps:
            if stop_pc is not None and self.pc == stop_pc:
                break
            self.step()
            steps += 1
        return steps

    def arch_state(self) -> ArchState:
        return ArchState(
            pc=self.pc,
            regs=list(self.regs),
            mode=self.mode,
            mepc=self.mepc,
            mcause=self.mcause,
            pmpaddr0=self.csr[CSR_PMPADDR0],
            pmpcfg0=self.csr[CSR_PMPCFG0],
            pmpaddr1=self.csr[CSR_PMPADDR1],
            pmpcfg1=self.csr[CSR_PMPCFG1],
        )
