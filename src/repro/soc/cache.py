"""Direct-mapped write-back/write-allocate data cache with a pipelined
core interface.

The cache mirrors the structure described in Sec. III of the paper:

* **Pending writes.**  An accepted store occupies the cache's write pipeline
  for ``write_pending_cycles`` cycles.  While a write is pending, a new
  request to the *same* line is a RAW hazard: the cache removes the request
  (deasserts ``done``) until the pending write has completed, stalling the
  core.  A new store while any write is pending stalls as well (single-slot
  store pipeline).
* **Refills.**  A miss starts a ``miss_latency``-cycle refill; the core is
  stalled (blocking cache).  On completion, a dirty victim is written back
  to memory and the line is filled (write-allocate merges the store data).
* **Kill semantics.**  ``kill`` aborts an in-flight refill *iff* the design
  variant cancels cache transactions on pipeline flushes
  (``refill_cancel_on_flush``).  The Meltdown-style variant completes the
  refill of a squashed load — the footprint covert channel.
* **Unconditional read port.**  ``line_rdata`` is the combinational read of
  the addressed line, available even when no transaction is issued — this
  is how the secret reaches the core's internal response buffer on a
  PMP-faulting hit (the paper's "cache forwards secret data" arrow in
  Fig. 1).

Addresses are *effective* addresses: the SoC's physical address space is
``dmem_words`` bytes and higher address bits are ignored consistently by
the cache, the memory and the PMP (no aliasing bypass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hdl import (
    Circuit,
    Expr,
    MemoryArray,
    Reg,
    cat,
    const,
    mux,
    or_all,
    select,
)
from repro.soc.config import SocConfig


@dataclass
class CacheHandles:
    """Registers and key expressions of the data cache."""

    valid: List[Reg]
    dirty: List[Reg]
    tags: List[Reg]
    data: List[Reg]
    wpend_v: Reg
    wpend_idx: Reg
    wpend_ctr: Reg
    refilling: Reg
    rf_ctr: Reg
    rf_addr: Reg
    rf_we: Reg
    rf_wdata: Reg
    # Combinational interface back to the core:
    done: Expr = None          # request completes this cycle
    rdata: Expr = None         # load data when done
    line_rdata: Expr = None    # unconditional combinational line read
    hit: Expr = None
    raw_conflict: Expr = None
    busy_refill: Expr = None

    def meta_regs(self) -> List[Reg]:
        """Cache bookkeeping state (valid/dirty/tag + controller)."""
        return (
            self.valid + self.dirty + self.tags
            + [self.wpend_v, self.wpend_idx, self.wpend_ctr,
               self.refilling, self.rf_ctr, self.rf_addr,
               self.rf_we, self.rf_wdata]
        )


def build_cache(
    c: Circuit,
    config: SocConfig,
    dmem: MemoryArray,
    req_valid: Expr,
    req_we: Expr,
    req_addr: Expr,
    req_wdata: Expr,
    kill: Expr,
) -> CacheHandles:
    """Instantiate the data cache inside circuit ``c``.

    ``req_addr`` is an effective address (``dmem_index_bits`` wide).
    ``kill`` is the pipeline-flush indication (trap commit).
    """
    ib = config.index_bits
    kb = config.dmem_index_bits
    tag_bits = max(1, kb - ib)
    lines = config.cache_lines
    pend_bits = max(1, config.write_pending_cycles.bit_length())
    rf_bits = max(1, config.miss_latency.bit_length())

    valid = [c.reg(f"dc_valid[{i}]", 1, init=0) for i in range(lines)]
    dirty = [c.reg(f"dc_dirty[{i}]", 1, init=0) for i in range(lines)]
    tags = [
        c.reg(f"dc_tag[{i}]", tag_bits, init=0) for i in range(lines)
    ]
    data = [
        c.reg(f"dc_data[{i}]", config.xlen, init=0, tags=("cache_data",))
        for i in range(lines)
    ]
    wpend_v = c.reg("dc_wpend_v", 1, init=0)
    wpend_idx = c.reg("dc_wpend_idx", ib, init=0)
    wpend_ctr = c.reg("dc_wpend_ctr", pend_bits, init=0)
    refilling = c.reg("dc_refilling", 1, init=0)
    rf_ctr = c.reg("dc_rf_ctr", rf_bits, init=0)
    rf_addr = c.reg("dc_rf_addr", kb, init=0)
    rf_we = c.reg("dc_rf_we", 1, init=0)
    rf_wdata = c.reg("dc_rf_wdata", config.xlen, init=0)

    handles = CacheHandles(
        valid=valid, dirty=dirty, tags=tags, data=data,
        wpend_v=wpend_v, wpend_idx=wpend_idx, wpend_ctr=wpend_ctr,
        refilling=refilling, rf_ctr=rf_ctr, rf_addr=rf_addr,
        rf_we=rf_we, rf_wdata=rf_wdata,
    )

    # ------------------------------------------------------------------
    # Request decode
    # ------------------------------------------------------------------
    idx = req_addr[0:ib] if ib < kb else req_addr
    tg = req_addr[ib:kb] if ib < kb else const(0, tag_bits)
    line_valid = select(idx, valid) if lines > 1 else valid[0]
    line_dirty = select(idx, dirty) if lines > 1 else dirty[0]
    line_tag = select(idx, tags) if lines > 1 else tags[0]
    line_data = select(idx, data) if lines > 1 else data[0]
    hit = line_valid & line_tag.eq(tg)

    # RAW hazard: a pending write blocks reads of the same line and any
    # further store (one store-pipeline slot).
    raw_read = wpend_v & wpend_idx.eq(idx) & ~req_we
    raw_write = wpend_v & req_we
    raw_conflict = req_valid & (raw_read | raw_write)

    # ------------------------------------------------------------------
    # Refill bookkeeping
    # ------------------------------------------------------------------
    rf_idx = rf_addr[0:ib] if ib < kb else rf_addr
    rf_tag = rf_addr[ib:kb] if ib < kb else const(0, tag_bits)
    refill_done = refilling & rf_ctr.eq(0)
    refill_mem_data = dmem.read(rf_addr)
    refill_fill_data = mux(rf_we, rf_wdata, refill_mem_data)
    if config.refill_cancel_on_flush:
        refill_aborted = kill & refilling
    else:
        refill_aborted = const(0, 1)
    refill_commits = refill_done & ~refill_aborted

    # Victim write-back to memory when the replaced line is dirty.
    victim_valid = select(rf_idx, valid) if lines > 1 else valid[0]
    victim_dirty = select(rf_idx, dirty) if lines > 1 else dirty[0]
    victim_tag = select(rf_idx, tags) if lines > 1 else tags[0]
    victim_data = select(rf_idx, data) if lines > 1 else data[0]
    wb_en = refill_commits & victim_valid & victim_dirty
    wb_addr = cat(rf_idx, victim_tag) if ib < kb else rf_idx
    dmem.write(wb_addr, victim_data, wb_en)

    # ------------------------------------------------------------------
    # Completion / acceptance
    # ------------------------------------------------------------------
    can_accept = req_valid & ~refilling & ~raw_conflict
    write_hit_accept = can_accept & req_we & hit
    read_hit_done = can_accept & ~req_we & hit
    miss_start = can_accept & ~hit
    refill_serves_req = (
        refill_commits & req_valid & req_addr.eq(rf_addr)
    )

    done = read_hit_done | write_hit_accept | refill_serves_req
    rdata = mux(refilling, refill_fill_data, line_data)

    handles.done = done
    handles.rdata = rdata
    handles.line_rdata = line_data
    handles.hit = hit
    handles.raw_conflict = raw_conflict
    handles.busy_refill = refilling

    # ------------------------------------------------------------------
    # State updates
    # ------------------------------------------------------------------
    for i in range(lines):
        sel_req = idx.eq(const(i, ib)) if ib > 0 else const(1, 1)
        sel_rf = rf_idx.eq(const(i, ib)) if ib > 0 else const(1, 1)
        fill_here = refill_commits & sel_rf
        write_here = write_hit_accept & sel_req
        c.next(
            valid[i],
            mux(fill_here, const(1, 1), valid[i]),
        )
        c.next(
            dirty[i],
            mux(fill_here, rf_we, mux(write_here, const(1, 1), dirty[i])),
        )
        c.next(tags[i], mux(fill_here, rf_tag, tags[i]))
        c.next(
            data[i],
            mux(fill_here, refill_fill_data,
                mux(write_here, req_wdata, data[i])),
        )

    # Pending-write slot: set on any accepted store (hit or allocate).
    store_accept = write_hit_accept | (refill_serves_req & rf_we)
    pend_init = const(config.write_pending_cycles - 1, pend_bits)
    pend_ticking = wpend_v & wpend_ctr.ne(0)
    c.next(
        wpend_v,
        mux(store_accept, const(1, 1),
            mux(wpend_v & wpend_ctr.eq(0), const(0, 1), wpend_v)),
    )
    c.next(wpend_idx, mux(store_accept, idx, wpend_idx))
    c.next(
        wpend_ctr,
        mux(store_accept, pend_init,
            mux(pend_ticking, wpend_ctr - 1, wpend_ctr)),
    )

    # Refill controller.
    rf_lat = const(config.miss_latency - 1, rf_bits)
    c.next(
        refilling,
        mux(refill_aborted, const(0, 1),
            mux(refill_done, const(0, 1),
                mux(miss_start, const(1, 1), refilling))),
    )
    rf_ctr_next = mux(miss_start, rf_lat,
                      mux(refilling & rf_ctr.ne(0), rf_ctr - 1, rf_ctr))
    # An aborted refill clears its countdown so the controller returns to
    # a clean idle state (keeps the protocol monitor a true invariant).
    c.next(rf_ctr, mux(refill_aborted, const(0, rf_bits), rf_ctr_next))
    c.next(rf_addr, mux(miss_start, req_addr, rf_addr))
    c.next(rf_we, mux(miss_start, req_we, rf_we))
    c.next(rf_wdata, mux(miss_start, req_wdata, rf_wdata))

    return handles
