"""The SoC substrate: ISA, assembler, ISS, RTL pipeline/cache/PMP, sim."""

from repro.soc.assembler import assemble, disassemble
from repro.soc.config import SocConfig
from repro.soc.iss import ArchState, Iss
from repro.soc.simulator import SocSim
from repro.soc.soc import Soc, build_soc

__all__ = [
    "ArchState",
    "Iss",
    "Soc",
    "SocConfig",
    "SocSim",
    "assemble",
    "build_soc",
    "disassemble",
]
