"""Physical memory protection (PMP) logic.

A single TOR-style region is implemented with two entries, mirroring the
slice of the RISC-V PMP scheme that the paper's experiments exercise:

* ``pmpaddr0`` — region start, ``pmpaddr1`` — region end (inclusive, on
  effective addresses).
* ``pmpcfg1`` carries the region's attributes: R (user loads allowed),
  W (user stores allowed), A (region enabled), L (entry locked).
* ``pmpcfg0`` only matters for its own lock bit.

Lock semantics (the subject of Sec. VII-C): a locked entry ignores writes
to its own address and config registers.  The ISA additionally requires
that a locked TOR end entry locks the *start address* register of its
range.  The ``pmp_tor_lock`` config knob selects the compliant
implementation or RocketChip's buggy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hdl import Circuit, Expr, Reg, const
from repro.soc.config import SocConfig
from repro.soc.isa import (
    CSR_PMPADDR0,
    CSR_PMPADDR1,
    CSR_PMPCFG0,
    CSR_PMPCFG1,
    MODE_MACHINE,
)

PMP_R_BIT = 0
PMP_W_BIT = 1
PMP_A_BIT = 2
PMP_L_BIT = 3


@dataclass
class PmpHandles:
    """PMP CSR registers (all architectural state)."""

    pmpaddr0: Reg
    pmpcfg0: Reg
    pmpaddr1: Reg
    pmpcfg1: Reg

    def regs(self) -> Dict[int, Reg]:
        return {
            CSR_PMPADDR0: self.pmpaddr0,
            CSR_PMPCFG0: self.pmpcfg0,
            CSR_PMPADDR1: self.pmpaddr1,
            CSR_PMPCFG1: self.pmpcfg1,
        }


def build_pmp_regs(c: Circuit, config: SocConfig) -> PmpHandles:
    """Declare the PMP CSR registers."""
    return PmpHandles(
        pmpaddr0=c.reg("pmpaddr0", config.xlen, init=0, arch=True),
        pmpcfg0=c.reg("pmpcfg0", 4, init=0, arch=True),
        pmpaddr1=c.reg("pmpaddr1", config.xlen, init=0, arch=True),
        pmpcfg1=c.reg("pmpcfg1", 4, init=0, arch=True),
    )


def pmp_access_ok(
    config: SocConfig,
    pmp: PmpHandles,
    eff_addr: Expr,
    is_store: Expr,
    mode: Expr,
) -> Expr:
    """1 iff the access is permitted.

    ``eff_addr`` is the effective (wrapped) address, ``dmem_index_bits``
    wide; the PMP compares effective addresses so that memory aliasing
    cannot bypass protection.
    """
    kb = config.dmem_index_bits
    lo = pmp.pmpaddr0[0:kb] if kb < config.xlen else pmp.pmpaddr0
    hi = pmp.pmpaddr1[0:kb] if kb < config.xlen else pmp.pmpaddr1
    enabled = pmp.pmpcfg1[PMP_A_BIT]
    in_range = lo.ule(eff_addr) & eff_addr.ule(hi)
    match = enabled & in_range
    from repro.hdl import mux

    perm = mux(is_store, pmp.pmpcfg1[PMP_W_BIT], pmp.pmpcfg1[PMP_R_BIT])
    machine = mode.eq(MODE_MACHINE)
    return machine | ~match | perm


def pmp_write_enables(
    config: SocConfig, pmp: PmpHandles
) -> Dict[int, Expr]:
    """Per-CSR effective write permission under the lock rules."""
    cfg0_locked = pmp.pmpcfg0[PMP_L_BIT]
    cfg1_locked = pmp.pmpcfg1[PMP_L_BIT]
    cfg1_tor = pmp.pmpcfg1[PMP_A_BIT]
    addr0_ok = ~cfg0_locked
    if config.pmp_tor_lock:
        # Compliant: a locked TOR end entry locks the range start address.
        addr0_ok = addr0_ok & ~(cfg1_locked & cfg1_tor)
    return {
        CSR_PMPADDR0: addr0_ok,
        CSR_PMPCFG0: ~cfg0_locked,
        CSR_PMPADDR1: ~cfg1_locked,
        CSR_PMPCFG1: ~cfg1_locked,
    }


def protection_invariant(
    config: SocConfig, pmp: PmpHandles, secret_addr: int
) -> Expr:
    """``secret_data_protected()``: the PMP configuration shields the
    protected location and is locked against reconfiguration.

    Used as the UPEC property's assumption at t (and, for the compliant
    design, an actual invariant of the system).
    """
    kb = config.dmem_index_bits
    eff_secret = secret_addr & (config.dmem_words - 1)
    lo = pmp.pmpaddr0[0:kb] if kb < config.xlen else pmp.pmpaddr0
    hi = pmp.pmpaddr1[0:kb] if kb < config.xlen else pmp.pmpaddr1
    secret = const(eff_secret, kb)
    covered = lo.ule(secret) & secret.ule(hi)
    cfg1 = pmp.pmpcfg1
    no_user_access = ~cfg1[PMP_R_BIT] & ~cfg1[PMP_W_BIT]
    enabled_locked = cfg1[PMP_A_BIT] & cfg1[PMP_L_BIT]
    return covered & no_user_access & enabled_locked
