"""Program templates: boot code, trap handler, and the attack sequences.

Memory-image layout used by the attack demonstrations::

    word 0                 jal  x0, boot       (reset enters here)
    word 1 (trap_vector)   trap handler: skip the faulting instruction
    ...
    boot:                  configure PMP, prime the secret's cache line,
                           set mepc to the user program, MRET
    user:                  attack sequence (caller-provided)
    halt:                  jal x0, 0

The trap handler implements the OS behaviour the paper assumes: it yields
control back to the attacker a fixed number of cycles after the exception
(``mepc <- mepc + 1; mret``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import IsaError
from repro.soc import isa
from repro.soc.config import SocConfig

TRAP_VECTOR = 1  # word 0 is the reset jump


@dataclass
class ProgramImage:
    """An assembled memory image plus the addresses of its landmarks."""

    words: List[int]
    user_start: int
    halt_pc: int
    trap_vector: int = TRAP_VECTOR


def trap_handler() -> List[isa.Instruction]:
    """Skip the faulting/ecall instruction and return to user mode."""
    return [
        isa.csrr(6, isa.CSR_MEPC),
        isa.addi(6, 6, 1),
        isa.csrw(isa.CSR_MEPC, 6),
        isa.mret(),
    ]


def boot_code(
    config: SocConfig,
    user_start: int,
    prime_secret: bool = True,
    lock: bool = True,
) -> List[isa.Instruction]:
    """Machine-mode boot: protect the secret, optionally prime its cache
    line (the paper's 'earlier execution of privileged code'), enter user
    mode at ``user_start``."""
    secret = config.secret_addr & (config.dmem_words - 1)
    cfg1 = isa.PMP_A | (isa.PMP_L if lock else 0)  # no R, no W for users
    code = [
        isa.li(1, secret),
        isa.csrw(isa.CSR_PMPADDR0, 1),
        isa.csrw(isa.CSR_PMPADDR1, 1),   # region = [secret, secret]
        isa.li(2, cfg1),
        isa.csrw(isa.CSR_PMPCFG1, 2),
    ]
    if prime_secret:
        code.append(isa.lb(3, 0, 1))     # machine-mode load caches the secret
    code += [
        isa.li(4, user_start),
        isa.csrw(isa.CSR_MEPC, 4),
        isa.mret(),
    ]
    return code


def build_image(
    config: SocConfig,
    user_code: Sequence[isa.Instruction],
    prime_secret: bool = True,
    lock: bool = True,
) -> ProgramImage:
    """Assemble reset jump + handler + boot + user code into one image."""
    if config.trap_vector != TRAP_VECTOR:
        raise IsaError(
            f"program images place the handler at word {TRAP_VECTOR}; "
            f"config.trap_vector is {config.trap_vector}"
        )
    handler = trap_handler()
    boot_start = TRAP_VECTOR + len(handler)
    # Boot length is independent of user_start's value (li is fixed-size).
    boot_len = len(boot_code(config, 0, prime_secret, lock))
    user_start = boot_start + boot_len
    boot = boot_code(config, user_start, prime_secret, lock)
    words = [isa.Instruction(isa.OP_JAL, rd=0, imm=boot_start & 0x3F).encode()]
    words += [i.encode() for i in handler]
    words += [i.encode() for i in boot]
    user_words = [i.encode() for i in user_code]
    words += user_words
    halt_pc = None
    for offset, instr in enumerate(user_code):
        if instr.opcode == isa.OP_JAL and instr.rd == 0 and instr.simm == 0:
            halt_pc = user_start + offset
            break
    if halt_pc is None:
        raise IsaError("user code must contain a halt loop (jal x0, 0)")
    if len(words) > config.imem_words:
        raise IsaError(
            f"image of {len(words)} words exceeds imem "
            f"({config.imem_words} words)"
        )
    return ProgramImage(words=words, user_start=user_start, halt_pc=halt_pc)


def orc_sequence(config: SocConfig, guess: int, array_base: int = 0) -> List[isa.Instruction]:
    """One iteration of the Orc attack (Fig. 2 of the paper).

    ``array_base`` must be cache-line aligned; ``guess`` selects the cache
    line whose RAW hazard is probed (the paper's ``#test_value``).
    """
    if array_base & (config.cache_lines - 1):
        raise IsaError("array_base must be cache-line aligned")
    if not 0 <= guess < config.cache_lines:
        raise IsaError("guess out of cache-line range")
    protected = config.secret_addr & 0xFF
    return [
        isa.li(2, array_base),          # x2 <- #accessible_addr
        isa.addi(2, 2, guess),          # x2 <- x2 + #test_value
        isa.li(1, protected),           # x1 <- #protected_addr
        isa.lb(3, 0, 2),                # prime the guessed line
        # Park x4 on the primed line: when the illegal load is squashed,
        # the *resumed* dependent load hits this line for every guess, so
        # the only guess-dependent timing is the covert RAW hazard itself.
        isa.add(4, 2, 0),
        isa.sb(3, 0, 2),                # pending write to the guessed line
        isa.csrr(3, isa.CSR_CYCLE),     # t0 (x3 is free after the store)
        isa.lb(4, 0, 1),                # illegal load of the secret (traps)
        isa.lb(5, 0, 4),                # dependent load, address = secret
        isa.csrr(7, isa.CSR_CYCLE),     # t1 (resumed here by the handler)
        isa.jal(0, 0),                  # halt
    ]


def meltdown_sequence(
    config: SocConfig,
    probe_addr: int,
    prime_base: int,
) -> List[isa.Instruction]:
    """One Meltdown-style attack run probing a single address.

    ``prime_base`` selects a tag-distinct region used to fill all cache
    lines except the secret's own, so that the probe only hits if the
    squashed dependent load refilled its line.
    """
    secret_line = config.line_index(config.secret_addr)
    protected = config.secret_addr & 0xFF
    code: List[isa.Instruction] = []
    # Prime every line except the secret's with prime_base-region data.
    if config.cache_lines > 32:
        raise IsaError("meltdown_sequence primes via imm6 offsets (<= 32 lines)")
    code.append(isa.li(2, prime_base))
    for line in range(config.cache_lines):
        if line == secret_line:
            continue
        code.append(isa.lb(3, line, 2))
    code += [
        isa.li(1, protected),
        # Park x4 on the protected address: the handler-resumed re-run of
        # the dependent load faults and is skipped, so it can never touch
        # the cache and pollute the footprint left by the squashed run.
        isa.li(4, protected),
        isa.lb(4, 0, 1),                # illegal load of the secret (traps)
        isa.lb(5, 0, 4),                # squashed dependent load -> refill
        # resumed here by the handler: probe one candidate address
        isa.li(2, probe_addr),
        isa.csrr(6, isa.CSR_CYCLE),     # t0
        isa.lb(3, 0, 2),                # probe load
        isa.csrr(7, isa.CSR_CYCLE),     # t1
        isa.jal(0, 0),                  # halt
    ]
    return code
