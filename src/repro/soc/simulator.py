"""Simulation wrapper for the SoC: program loading, running, observation.

:class:`SocSim` drives the RTL through :class:`repro.sim.Simulator`,
providing program/memory loading, architectural state extraction (for
lock-step comparison against the ISS) and cache-coherent memory reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.soc import isa
from repro.soc.soc import Soc, build_soc
from repro.soc.config import SocConfig


class SocSim:
    """A running SoC instance."""

    def __init__(
        self,
        soc: Soc,
        program: Sequence[int],
        memory: Optional[Sequence[int]] = None,
        init_overrides: Optional[Dict[str, int]] = None,
        fast: bool = False,
    ) -> None:
        self.soc = soc
        config = soc.config
        if len(program) > config.imem_words:
            raise SimulationError(
                f"program of {len(program)} words exceeds imem size"
            )
        overrides: Dict[str, int] = {}
        for i, word in enumerate(program):
            overrides[f"imem[{i}]"] = word
        for i, value in enumerate(memory or []):
            overrides[f"dmem[{i}]"] = value
        overrides.update(init_overrides or {})
        if fast:
            from repro.sim.compile import CompiledSimulator

            self.sim = CompiledSimulator(soc.circuit,
                                         init_overrides=overrides)
        else:
            self.sim = Simulator(soc.circuit, init_overrides=overrides)

    @classmethod
    def from_config(
        cls,
        config: SocConfig,
        program: Sequence[int],
        memory: Optional[Sequence[int]] = None,
        init_overrides: Optional[Dict[str, int]] = None,
    ) -> "SocSim":
        return cls(build_soc(config), program, memory, init_overrides)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.sim.cycle

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self.sim.step()

    def run_until_pc(self, target_pc: int, max_cycles: int = 10_000) -> int:
        """Run until the fetch PC reaches ``target_pc``.

        Returns cycles executed; raises if the bound is exhausted.
        """
        executed = self.sim.run(
            max_cycles, until=lambda s: s.peek("pc") == target_pc
        )
        if self.sim.peek("pc") != target_pc:
            raise SimulationError(
                f"pc did not reach {target_pc} within {max_cycles} cycles"
            )
        return executed

    def run_until_halt(self, halt_pc: int, max_cycles: int = 10_000) -> int:
        """Run until the pipeline spins at a ``jal x0, 0`` halt loop and all
        younger stages have drained."""
        def halted(sim) -> bool:
            # The halt loop (jal x0, 0) keeps re-executing; it has settled
            # once the instance in WB is the halt jal itself.
            return (
                sim.peek("memwb_valid") == 1
                and sim.peek("memwb_pc") == halt_pc
            )

        executed = self.sim.run(max_cycles, until=halted)
        if not halted(self.sim):
            raise SimulationError(
                f"did not reach halt at pc={halt_pc} within {max_cycles} cycles"
            )
        return executed

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def reg(self, index: int) -> int:
        if index == 0:
            return 0
        return self.sim.peek(f"x{index}")

    def arch_state(self) -> Dict[str, int]:
        """Architectural state in the ISS's dictionary format."""
        state = {f"x{i}": self.reg(i) for i in range(isa.NUM_REGS)}
        for name in ("pc", "mode", "mepc", "pmpaddr0", "pmpaddr1"):
            state[name] = self.sim.peek(name)
        state["mcause"] = self.sim.peek("mcause")
        state["pmpcfg0"] = self.sim.peek("pmpcfg0")
        state["pmpcfg1"] = self.sim.peek("pmpcfg1")
        return state

    def mem_read(self, addr: int) -> int:
        """Cache-coherent memory read (architectural memory view)."""
        config = self.soc.config
        eff = addr & (config.dmem_words - 1)
        idx = eff & (config.cache_lines - 1)
        tag = eff >> config.index_bits
        if (
            self.sim.peek(f"dc_valid[{idx}]") == 1
            and self.sim.peek(f"dc_tag[{idx}]") == tag
        ):
            return self.sim.peek(f"dc_data[{idx}]")
        return self.sim.peek(f"dmem[{eff}]")

    def cache_line(self, idx: int) -> Dict[str, int]:
        return {
            "valid": self.sim.peek(f"dc_valid[{idx}]"),
            "dirty": self.sim.peek(f"dc_dirty[{idx}]"),
            "tag": self.sim.peek(f"dc_tag[{idx}]"),
            "data": self.sim.peek(f"dc_data[{idx}]"),
        }

    def cache_snapshot(self) -> List[Dict[str, int]]:
        return [
            self.cache_line(i) for i in range(self.soc.config.cache_lines)
        ]
