"""RV8: a compact RISC-V-flavoured ISA for the reproduction SoC.

16-bit instructions, 8-bit data, eight registers (x0 hardwired to zero).
The instruction set mirrors the subset of RV32I that the paper's attack
programs need (Fig. 2), plus machine-mode CSR access, ECALL and MRET for
the PMP / trap experiments.

Encoding (bit 0 = LSB)::

    [15:12] opcode
    [11:9]  rd      (rs2 for SB/BEQ/BNE)
    [8:6]   rs1
    [5:0]   imm6    (two's complement where signed)

    R-type (ALU): [5:3] rs2, [2:0] funct
    LI:           [7:0] imm8 (rd in [11:9])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import IsaError

XLEN = 8
NUM_REGS = 8
INSTR_BITS = 16

# Opcodes ---------------------------------------------------------------
OP_NOP = 0x0
OP_LI = 0x1
OP_ADDI = 0x2
OP_ALU = 0x3
OP_LB = 0x4
OP_SB = 0x5
OP_BEQ = 0x6
OP_BNE = 0x7
OP_JAL = 0x8
OP_CSRR = 0x9
OP_CSRW = 0xA
OP_MRET = 0xB
OP_ECALL = 0xC

OPCODE_NAMES: Dict[int, str] = {
    OP_NOP: "nop",
    OP_LI: "li",
    OP_ADDI: "addi",
    OP_ALU: "alu",
    OP_LB: "lb",
    OP_SB: "sb",
    OP_BEQ: "beq",
    OP_BNE: "bne",
    OP_JAL: "jal",
    OP_CSRR: "csrr",
    OP_CSRW: "csrw",
    OP_MRET: "mret",
    OP_ECALL: "ecall",
}

# ALU functs ------------------------------------------------------------
F_ADD = 0
F_SUB = 1
F_AND = 2
F_OR = 3
F_XOR = 4
F_SLTU = 5

FUNCT_NAMES = {F_ADD: "add", F_SUB: "sub", F_AND: "and",
               F_OR: "or", F_XOR: "xor", F_SLTU: "sltu"}

# CSR addresses ---------------------------------------------------------
CSR_CYCLE = 0x00     # read-only cycle counter (user readable)
CSR_MEPC = 0x01
CSR_MCAUSE = 0x02
CSR_PMPADDR0 = 0x08
CSR_PMPCFG0 = 0x09
CSR_PMPADDR1 = 0x0A
CSR_PMPCFG1 = 0x0B

CSR_NAMES = {
    CSR_CYCLE: "cycle",
    CSR_MEPC: "mepc",
    CSR_MCAUSE: "mcause",
    CSR_PMPADDR0: "pmpaddr0",
    CSR_PMPCFG0: "pmpcfg0",
    CSR_PMPADDR1: "pmpaddr1",
    CSR_PMPCFG1: "pmpcfg1",
}

# PMP configuration bits (4-bit cfg registers) --------------------------
PMP_R = 1 << 0   # user loads allowed inside the region
PMP_W = 1 << 1   # user stores allowed inside the region
PMP_A = 1 << 2   # region enabled (TOR address matching)
PMP_L = 1 << 3   # entry locked

# Trap causes ------------------------------------------------------------
CAUSE_LOAD_FAULT = 5
CAUSE_STORE_FAULT = 7
CAUSE_ECALL = 2   # fits in 3 bits alongside the fault causes

# Privilege modes --------------------------------------------------------
MODE_USER = 0
MODE_MACHINE = 1


def sign_extend(value: int, bits: int, out_bits: int = XLEN) -> int:
    """Two's-complement sign extension to ``out_bits`` (masked)."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & ((1 << out_bits) - 1)


def _check_reg(reg: int, role: str) -> int:
    if not 0 <= reg < NUM_REGS:
        raise IsaError(f"{role} register x{reg} out of range")
    return reg


def _check_simm6(imm: int) -> int:
    if not -32 <= imm <= 31:
        raise IsaError(f"signed 6-bit immediate {imm} out of range")
    return imm & 0x3F


@dataclass(frozen=True)
class Instruction:
    """A decoded RV8 instruction."""

    opcode: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    funct: int = 0
    imm: int = 0   # raw field value (imm6 or imm8, unsigned container)

    # ------------------------------------------------------------------
    def encode(self) -> int:
        word = (self.opcode & 0xF) << 12
        if self.opcode == OP_LI:
            word |= (self.rd & 0x7) << 9
            word |= self.imm & 0xFF
            return word
        word |= (self.rd & 0x7) << 9
        word |= (self.rs1 & 0x7) << 6
        if self.opcode == OP_ALU:
            word |= (self.rs2 & 0x7) << 3
            word |= self.funct & 0x7
        else:
            word |= self.imm & 0x3F
        return word

    @property
    def simm(self) -> int:
        """Sign-extended 6-bit immediate as a Python int in [-32, 31]."""
        value = self.imm & 0x3F
        return value - 64 if value & 0x20 else value

    def __str__(self) -> str:
        name = OPCODE_NAMES.get(self.opcode, f"op{self.opcode}")
        if self.opcode == OP_NOP:
            return "nop"
        if self.opcode == OP_LI:
            return f"li x{self.rd}, {self.imm}"
        if self.opcode == OP_ALU:
            return (
                f"{FUNCT_NAMES.get(self.funct, '?')} "
                f"x{self.rd}, x{self.rs1}, x{self.rs2}"
            )
        if self.opcode in (OP_LB, OP_SB):
            reg = "rd" if self.opcode == OP_LB else "rs2"
            target = self.rd
            return f"{name} x{target}, {self.simm}(x{self.rs1})"
        if self.opcode in (OP_BEQ, OP_BNE):
            return f"{name} x{self.rs1}, x{self.rd}, {self.simm}"
        if self.opcode == OP_JAL:
            return f"jal x{self.rd}, {self.simm}"
        if self.opcode == OP_CSRR:
            return f"csrr x{self.rd}, {CSR_NAMES.get(self.imm, hex(self.imm))}"
        if self.opcode == OP_CSRW:
            return f"csrw {CSR_NAMES.get(self.imm, hex(self.imm))}, x{self.rs1}"
        return name


def decode(word: int) -> Instruction:
    """Decode a 16-bit instruction word."""
    if not 0 <= word < (1 << INSTR_BITS):
        raise IsaError(f"instruction word {word:#x} out of range")
    opcode = (word >> 12) & 0xF
    rd = (word >> 9) & 0x7
    rs1 = (word >> 6) & 0x7
    if opcode == OP_LI:
        return Instruction(opcode=OP_LI, rd=rd, imm=word & 0xFF)
    if opcode == OP_ALU:
        return Instruction(
            opcode=OP_ALU, rd=rd, rs1=rs1,
            rs2=(word >> 3) & 0x7, funct=word & 0x7,
        )
    return Instruction(opcode=opcode, rd=rd, rs1=rs1, rs2=rd, imm=word & 0x3F)


# ----------------------------------------------------------------------
# Instruction constructors (the assembler's primitives)
# ----------------------------------------------------------------------
def nop() -> Instruction:
    return Instruction(OP_NOP)


def li(rd: int, imm8: int) -> Instruction:
    _check_reg(rd, "destination")
    if not -128 <= imm8 <= 255:
        raise IsaError(f"8-bit immediate {imm8} out of range")
    return Instruction(OP_LI, rd=rd, imm=imm8 & 0xFF)


def addi(rd: int, rs1: int, imm: int) -> Instruction:
    return Instruction(
        OP_ADDI, rd=_check_reg(rd, "destination"),
        rs1=_check_reg(rs1, "source"), imm=_check_simm6(imm),
    )


def _alu(funct: int, rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(
        OP_ALU, rd=_check_reg(rd, "destination"),
        rs1=_check_reg(rs1, "source 1"), rs2=_check_reg(rs2, "source 2"),
        funct=funct,
    )


def add(rd: int, rs1: int, rs2: int) -> Instruction:
    return _alu(F_ADD, rd, rs1, rs2)


def sub(rd: int, rs1: int, rs2: int) -> Instruction:
    return _alu(F_SUB, rd, rs1, rs2)


def and_(rd: int, rs1: int, rs2: int) -> Instruction:
    return _alu(F_AND, rd, rs1, rs2)


def or_(rd: int, rs1: int, rs2: int) -> Instruction:
    return _alu(F_OR, rd, rs1, rs2)


def xor(rd: int, rs1: int, rs2: int) -> Instruction:
    return _alu(F_XOR, rd, rs1, rs2)


def sltu(rd: int, rs1: int, rs2: int) -> Instruction:
    return _alu(F_SLTU, rd, rs1, rs2)


def lb(rd: int, offset: int, rs1: int) -> Instruction:
    return Instruction(
        OP_LB, rd=_check_reg(rd, "destination"),
        rs1=_check_reg(rs1, "base"), imm=_check_simm6(offset),
    )


def sb(rs2: int, offset: int, rs1: int) -> Instruction:
    return Instruction(
        OP_SB, rd=_check_reg(rs2, "store source"),
        rs1=_check_reg(rs1, "base"), imm=_check_simm6(offset),
    )


def beq(rs1: int, rs2: int, offset: int) -> Instruction:
    return Instruction(
        OP_BEQ, rd=_check_reg(rs2, "source 2"),
        rs1=_check_reg(rs1, "source 1"), imm=_check_simm6(offset),
    )


def bne(rs1: int, rs2: int, offset: int) -> Instruction:
    return Instruction(
        OP_BNE, rd=_check_reg(rs2, "source 2"),
        rs1=_check_reg(rs1, "source 1"), imm=_check_simm6(offset),
    )


def jal(rd: int, offset: int) -> Instruction:
    return Instruction(
        OP_JAL, rd=_check_reg(rd, "link"), imm=_check_simm6(offset)
    )


def csrr(rd: int, csr: int) -> Instruction:
    if csr not in CSR_NAMES:
        raise IsaError(f"unknown CSR {csr:#x}")
    return Instruction(OP_CSRR, rd=_check_reg(rd, "destination"), imm=csr)


def csrw(csr: int, rs1: int) -> Instruction:
    if csr not in CSR_NAMES:
        raise IsaError(f"unknown CSR {csr:#x}")
    return Instruction(OP_CSRW, rs1=_check_reg(rs1, "source"), imm=csr)


def mret() -> Instruction:
    return Instruction(OP_MRET)


def ecall() -> Instruction:
    return Instruction(OP_ECALL)
