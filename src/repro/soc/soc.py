"""The SoC: in-order 5-stage pipeline + data cache + PMP + memories.

Pipeline stages: IF, ID, EX, M, WB.

* Branches resolve in EX (two squashed slots on taken branches).
* Loads/stores issue to the data cache in M; the PMP check happens in M in
  parallel with the cache access.  A PMP-faulting *hit* still places the
  line's data in the core's response buffer (``resp_buf``) — the internal,
  program-invisible buffer of Sec. III — but never initiates a cache/memory
  transaction, so an uncached secret cannot be pulled in by user code.
* Exceptions, ECALL and MRET commit at WB and flush the pipeline.
* Forwarding: EX receives results from M (ALU results always; load data
  only in the ``mem_forward_bypass`` variants — the Orc "optimization")
  and from WB (gated by a faulting instruction's cancelled write-back).
  A write-back bypass feeds the register read in ID.  Without the bypass,
  a two-cycle load-use interlock covers the response-buffer latency.
* Trap redirection waits for the memory stage to drain when
  ``flush_waits_for_mem`` (the Orc covert channel: an uncancellable
  squashed transaction serializes trap entry behind the RAW-hazard drain).

The module exposes every register the UPEC analysis needs, plus the
constraint expressions of the paper's interval property (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hdl import (
    Circuit,
    Expr,
    MemoryArray,
    Reg,
    and_all,
    cat,
    const,
    mux,
    or_all,
    select,
    sext,
    zext,
)
from repro.soc import isa
from repro.soc.cache import CacheHandles, build_cache
from repro.soc.config import SocConfig
from repro.soc.pmp import (
    PmpHandles,
    build_pmp_regs,
    pmp_access_ok,
    pmp_write_enables,
    protection_invariant,
)

XLEN = isa.XLEN


@dataclass
class Soc:
    """A built SoC: circuit plus handles for analysis and simulation."""

    config: SocConfig
    circuit: Circuit
    # Architectural state
    pc: Reg = None
    regs: List[Reg] = field(default_factory=list)  # x1..x7
    mode: Reg = None
    mepc: Reg = None
    mcause: Reg = None
    cyc: Reg = None
    pmp: PmpHandles = None
    # Memories
    imem: MemoryArray = None
    dmem: MemoryArray = None
    # Microarchitectural state
    ifid_valid: Reg = None
    ifid_pc: Reg = None
    ifid_instr: Reg = None
    idex: Dict[str, Reg] = field(default_factory=dict)
    exmem: Dict[str, Reg] = field(default_factory=dict)
    memwb: Dict[str, Reg] = field(default_factory=dict)
    resp_buf: Reg = None
    cache: CacheHandles = None
    # Key probes (combinational expressions)
    probes: Dict[str, Expr] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived facts about the protected location
    # ------------------------------------------------------------------
    @property
    def secret_eff_addr(self) -> int:
        return self.config.secret_addr & (self.config.dmem_words - 1)

    @property
    def secret_line_index(self) -> int:
        return self.config.line_index(self.config.secret_addr)

    @property
    def secret_line_tag(self) -> int:
        return self.secret_eff_addr >> self.config.index_bits

    @property
    def secret_mem_reg(self) -> Reg:
        """The dmem word holding the secret data D."""
        return self.dmem[self.secret_eff_addr]

    @property
    def secret_cache_data_reg(self) -> Reg:
        """The cache data word that can hold the cached copy of D."""
        return self.cache.data[self.secret_line_index]

    # ------------------------------------------------------------------
    # Register classification for UPEC
    # ------------------------------------------------------------------
    def arch_regs(self) -> List[Reg]:
        return self.circuit.arch_regs()

    def memory_regs(self) -> List[Reg]:
        return self.circuit.regs_with_tag("memory")

    def cache_data_regs(self) -> List[Reg]:
        return self.circuit.regs_with_tag("cache_data")

    def micro_regs(self) -> List[Reg]:
        """micro_soc_state (Def. 1): all logic state (memory excluded)."""
        return [
            r for r in self.circuit.regs.values() if "memory" not in r.tags
        ]

    # ------------------------------------------------------------------
    # UPEC constraint expressions (Fig. 4)
    # ------------------------------------------------------------------
    def secret_data_protected(self) -> Expr:
        """The PMP shields the protected location and is locked."""
        return protection_invariant(self.config, self.pmp, self.config.secret_addr)

    def no_ongoing_protected_access(self) -> Expr:
        """Constraint 1: no in-flight refill reads the protected location."""
        secret = const(self.secret_eff_addr, self.config.dmem_index_bits)
        cache = self.cache
        ongoing_load = cache.refilling & ~cache.rf_we & cache.rf_addr.eq(secret)
        return ~ongoing_load

    def secure_system_software(self) -> Expr:
        """Constraint 3: system software never loads the secret — unless
        the load is invalid at the ISA level (the paper's case split: a
        squashed kernel load, e.g. in the shadow of an exception or MRET,
        is real microarchitectural behaviour and stays in the model).

        In this in-order pipeline an instruction in M is squashed exactly
        when an older trap is pending in WB (``trap_req``), so the
        exclusion applies to M-stage kernel loads of the secret without a
        concurrent pending trap.
        """
        secret = const(self.secret_eff_addr, self.config.dmem_index_bits)
        kernel_load = (
            self.mode.eq(isa.MODE_MACHINE)
            & self.probes["m_valid"]
            & self.probes["m_is_load"]
            & self.probes["m_eff_addr"].eq(secret)
            & ~self.probes["trap_req"]
        )
        return ~kernel_load

    def cache_monitor_ok(self) -> Expr:
        """Constraint 2: the cache controller is in a protocol-compliant
        state (built by :mod:`repro.core.monitor`)."""
        from repro.core.monitor import cache_protocol_ok

        return cache_protocol_ok(self)

    def secret_cached_expr(self) -> Expr:
        """The cache holds a valid copy of the secret (scenario 'D in cache')."""
        idx = self.secret_line_index
        return self.cache.valid[idx] & self.cache.tags[idx].eq(
            const(self.secret_line_tag, self.config.tag_bits)
        )


def _bubble(c: Circuit, valid_reg: Reg) -> Expr:
    return const(0, 1)


def build_soc(config: SocConfig) -> Soc:
    """Construct the SoC circuit for a configuration/variant."""
    c = Circuit(f"soc_{config.name}")
    soc = Soc(config=config, circuit=c)
    kb = config.dmem_index_bits

    # ------------------------------------------------------------------
    # State declaration
    # ------------------------------------------------------------------
    pc = c.reg("pc", XLEN, init=0, arch=True)
    xregs = [
        c.reg(f"x{i}", XLEN, init=0, arch=True) for i in range(1, isa.NUM_REGS)
    ]
    mode = c.reg("mode", 1, init=isa.MODE_MACHINE, arch=True)
    mepc = c.reg("mepc", XLEN, init=0, arch=True)
    mcause = c.reg("mcause", 3, init=0, arch=True)
    cyc = c.reg("cyc", config.counter_width, init=0, arch=True)
    pmp = build_pmp_regs(c, config)

    imem = MemoryArray(
        c, "imem", depth=config.imem_words, width=isa.INSTR_BITS,
        init=0, tags=("memory", "imem"),
    )
    dmem = MemoryArray(
        c, "dmem", depth=config.dmem_words, width=XLEN,
        init=0, tags=("memory", "dmem"),
    )

    ifid_valid = c.reg("ifid_valid", 1, init=0)
    ifid_pc = c.reg("ifid_pc", XLEN, init=0)
    ifid_instr = c.reg("ifid_instr", isa.INSTR_BITS, init=0)

    idex = {
        "valid": c.reg("idex_valid", 1, init=0),
        "pc": c.reg("idex_pc", XLEN, init=0),
        "op": c.reg("idex_op", 4, init=0),
        "rd": c.reg("idex_rd", 3, init=0),
        "rs1": c.reg("idex_rs1", 3, init=0),
        "rs2": c.reg("idex_rs2", 3, init=0),
        "funct": c.reg("idex_funct", 3, init=0),
        "imm6": c.reg("idex_imm6", 6, init=0),
        "imm8": c.reg("idex_imm8", 8, init=0),
        "csr": c.reg("idex_csr", 6, init=0),
        "rs1_val": c.reg("idex_rs1_val", XLEN, init=0),
        "rs2_val": c.reg("idex_rs2_val", XLEN, init=0),
    }
    exmem = {
        "valid": c.reg("exmem_valid", 1, init=0),
        "pc": c.reg("exmem_pc", XLEN, init=0),
        "op": c.reg("exmem_op", 4, init=0),
        "rd": c.reg("exmem_rd", 3, init=0),
        "csr": c.reg("exmem_csr", 6, init=0),
        "result": c.reg("exmem_result", XLEN, init=0),
        "sdata": c.reg("exmem_sdata", XLEN, init=0),
    }
    memwb = {
        "valid": c.reg("memwb_valid", 1, init=0),
        "pc": c.reg("memwb_pc", XLEN, init=0),
        "op": c.reg("memwb_op", 4, init=0),
        "rd": c.reg("memwb_rd", 3, init=0),
        "csr": c.reg("memwb_csr", 6, init=0),
        "result": c.reg("memwb_result", XLEN, init=0),
        "sdata": c.reg("memwb_sdata", XLEN, init=0),
        "exc": c.reg("memwb_exc", 1, init=0),
        "cause": c.reg("memwb_cause", 3, init=0),
    }
    resp_buf = c.reg("resp_buf", XLEN, init=0)

    soc.pc, soc.regs, soc.mode, soc.mepc, soc.mcause, soc.cyc = (
        pc, xregs, mode, mepc, mcause, cyc,
    )
    soc.pmp, soc.imem, soc.dmem = pmp, imem, dmem
    soc.ifid_valid, soc.ifid_pc, soc.ifid_instr = ifid_valid, ifid_pc, ifid_instr
    soc.idex, soc.exmem, soc.memwb, soc.resp_buf = idex, exmem, memwb, resp_buf

    # ------------------------------------------------------------------
    # WB stage (oldest instruction): trap/commit decisions
    # ------------------------------------------------------------------
    def op_is(reg: Reg, opcode: int) -> Expr:
        return reg.eq(const(opcode, 4))

    wb_valid = memwb["valid"]
    wb_is_load = op_is(memwb["op"], isa.OP_LB)
    wb_is_csrw = op_is(memwb["op"], isa.OP_CSRW)
    wb_is_mret = op_is(memwb["op"], isa.OP_MRET) & mode.eq(isa.MODE_MACHINE)
    wb_is_ecall = op_is(memwb["op"], isa.OP_ECALL)
    wb_writes_rd = or_all([
        op_is(memwb["op"], o)
        for o in (isa.OP_LI, isa.OP_ADDI, isa.OP_ALU, isa.OP_LB,
                  isa.OP_JAL, isa.OP_CSRR)
    ]) & memwb["rd"].ne(0)
    trap_exc = wb_valid & memwb["exc"]
    trap_ecall = wb_valid & ~memwb["exc"] & wb_is_ecall
    trap_mret = wb_valid & ~memwb["exc"] & wb_is_mret
    trap_req = trap_exc | trap_ecall | trap_mret

    rf_we = wb_valid & ~memwb["exc"] & wb_writes_rd
    wb_data = mux(wb_is_load, resp_buf, memwb["result"])

    # ------------------------------------------------------------------
    # M stage: PMP check + cache transaction
    # ------------------------------------------------------------------
    m_valid = exmem["valid"]
    m_is_load = op_is(exmem["op"], isa.OP_LB)
    m_is_store = op_is(exmem["op"], isa.OP_SB)
    m_is_mem = m_is_load | m_is_store
    m_eff_addr = exmem["result"][0:kb] if kb < XLEN else exmem["result"]
    m_pmp_ok = pmp_access_ok(config, pmp, m_eff_addr, m_is_store, mode)
    m_exc = m_valid & m_is_mem & ~m_pmp_ok

    # The secure design withdraws the request of a squashed instruction;
    # the bypass variants have already committed it (Sec. III).
    req_gate = const(1, 1) if config.mem_forward_bypass else ~trap_req
    req_valid = m_valid & m_is_mem & m_pmp_ok & req_gate
    cache_kill = (
        const(0, 1) if config.flush_waits_for_mem else trap_req
    )
    cache = build_cache(
        c, config, dmem,
        req_valid=req_valid,
        req_we=m_is_store,
        req_addr=m_eff_addr,
        req_wdata=exmem["sdata"],
        kill=cache_kill,
    )
    soc.cache = cache

    stall_mem = req_valid & ~cache.done
    if config.flush_waits_for_mem:
        stall_eff = stall_mem              # Orc: trap waits for the drain
    else:
        stall_eff = stall_mem & ~trap_req  # flush cancels the core-side wait
    do_trap = trap_req & ~stall_eff

    # Load value observed by the core this cycle: a completing legal load
    # reads the cache response; a PMP-faulting hit still exposes the line
    # (the covert-channel source).
    m_load_value = mux(m_exc, cache.line_rdata, cache.rdata)
    m_load_done = m_valid & m_is_load & (m_exc | cache.done)

    # ------------------------------------------------------------------
    # EX stage: forwarding, ALU, branches, CSR read
    # ------------------------------------------------------------------
    ex_valid = idex["valid"]
    ex_op = idex["op"]

    def ex_op_is(opcode: int) -> Expr:
        return ex_op.eq(const(opcode, 4))

    exmem_writes_rd = or_all([
        op_is(exmem["op"], o)
        for o in (isa.OP_LI, isa.OP_ADDI, isa.OP_ALU, isa.OP_JAL, isa.OP_CSRR)
    ])

    def forward(idx_reg: Reg, base: Reg) -> Expr:
        value = base
        # Farthest first; the nearest (M-stage) match overrides below.
        wb_hit = rf_we & memwb["rd"].eq(idx_reg) & idx_reg.ne(0)
        value = mux(wb_hit, wb_data, value)
        m_alu_hit = (
            m_valid & exmem_writes_rd
            & exmem["rd"].eq(idx_reg) & idx_reg.ne(0)
        )
        value = mux(m_alu_hit, exmem["result"], value)
        if config.mem_forward_bypass:
            # The Orc bypass: forward cache read data straight from M,
            # not gated by the (about-to-fire) exception.
            m_load_hit = (
                m_valid & m_is_load & exmem["rd"].eq(idx_reg) & idx_reg.ne(0)
            )
            value = mux(m_load_hit, m_load_value, value)
        return value

    ex_a = forward(idex["rs1"], idex["rs1_val"])
    ex_b = forward(idex["rs2"], idex["rs2_val"])
    imm_s = sext(idex["imm6"], XLEN)

    alu_results = [
        ex_a + ex_b,            # F_ADD
        ex_a - ex_b,            # F_SUB
        ex_a & ex_b,            # F_AND
        ex_a | ex_b,            # F_OR
        ex_a ^ ex_b,            # F_XOR
        zext(ex_a.ult(ex_b), XLEN),  # F_SLTU
        const(0, XLEN),
        const(0, XLEN),
    ]
    alu_out = select(idex["funct"], alu_results)

    def csr_read_value() -> Expr:
        csr = idex["csr"]
        value = const(0, XLEN)
        value = mux(csr.eq(isa.CSR_CYCLE), cyc[0:XLEN], value)
        value = mux(csr.eq(isa.CSR_MEPC), mepc, value)
        value = mux(csr.eq(isa.CSR_MCAUSE), zext(mcause, XLEN), value)
        value = mux(csr.eq(isa.CSR_PMPADDR0), pmp.pmpaddr0, value)
        value = mux(csr.eq(isa.CSR_PMPCFG0), zext(pmp.pmpcfg0, XLEN), value)
        value = mux(csr.eq(isa.CSR_PMPADDR1), pmp.pmpaddr1, value)
        value = mux(csr.eq(isa.CSR_PMPCFG1), zext(pmp.pmpcfg1, XLEN), value)
        return value

    addr_calc = ex_a + imm_s
    link = idex["pc"] + 1
    ex_result = const(0, XLEN)
    ex_result = mux(ex_op_is(isa.OP_LI), idex["imm8"], ex_result)
    ex_result = mux(ex_op_is(isa.OP_ADDI), addr_calc, ex_result)
    ex_result = mux(ex_op_is(isa.OP_ALU), alu_out, ex_result)
    ex_result = mux(ex_op_is(isa.OP_LB) | ex_op_is(isa.OP_SB), addr_calc, ex_result)
    ex_result = mux(ex_op_is(isa.OP_JAL), link, ex_result)
    ex_result = mux(ex_op_is(isa.OP_CSRR), csr_read_value(), ex_result)

    ex_sdata = mux(ex_op_is(isa.OP_SB), ex_b,
                   mux(ex_op_is(isa.OP_CSRW), ex_a, const(0, XLEN)))

    br_taken = ex_valid & (
        (ex_op_is(isa.OP_BEQ) & ex_a.eq(ex_b))
        | (ex_op_is(isa.OP_BNE) & ex_a.ne(ex_b))
        | ex_op_is(isa.OP_JAL)
    )
    br_target = idex["pc"] + imm_s

    # ------------------------------------------------------------------
    # ID stage: decode, register read, hazards
    # ------------------------------------------------------------------
    instr = ifid_instr
    id_op = instr[12:16]
    id_rd = instr[9:12]
    id_rs1 = instr[6:9]
    id_rs2 = mux(id_op.eq(isa.OP_ALU), instr[3:6], instr[9:12])
    id_funct = instr[0:3]
    id_imm6 = instr[0:6]
    id_imm8 = instr[0:8]
    id_csr = instr[0:6]

    def rf_read(idx: Expr) -> Expr:
        raw = select(idx, [const(0, XLEN)] + list(xregs))
        # Write-back bypass: a value retiring this cycle is visible to ID.
        bypass = rf_we & memwb["rd"].eq(idx) & idx.ne(0)
        return mux(bypass, wb_data, raw)

    id_rs1_val = rf_read(id_rs1)
    id_rs2_val = rf_read(id_rs2)

    def id_op_is(opcode: int) -> Expr:
        return id_op.eq(const(opcode, 4))

    id_uses_rs1 = or_all([
        id_op_is(o) for o in (isa.OP_ADDI, isa.OP_ALU, isa.OP_LB, isa.OP_SB,
                              isa.OP_BEQ, isa.OP_BNE, isa.OP_CSRW)
    ])
    id_uses_rs2 = or_all([
        id_op_is(o) for o in (isa.OP_ALU, isa.OP_SB, isa.OP_BEQ, isa.OP_BNE)
    ])

    def load_dep(stage_valid: Expr, stage_op: Reg, stage_rd: Reg) -> Expr:
        is_load = stage_op.eq(const(isa.OP_LB, 4))
        dep1 = id_uses_rs1 & stage_rd.eq(id_rs1)
        dep2 = id_uses_rs2 & stage_rd.eq(id_rs2)
        return stage_valid & is_load & stage_rd.ne(0) & (dep1 | dep2)

    if config.mem_forward_bypass:
        interlock = const(0, 1)
    else:
        interlock = ifid_valid & (
            load_dep(idex["valid"], idex["op"], idex["rd"])
            | load_dep(exmem["valid"], exmem["op"], exmem["rd"])
        )
    csrw_in_flight = (
        (idex["valid"] & ex_op_is(isa.OP_CSRW))
        | (exmem["valid"] & op_is(exmem["op"], isa.OP_CSRW))
        | (memwb["valid"] & wb_is_csrw)
    )
    csr_stall = ifid_valid & id_op_is(isa.OP_CSRR) & csrw_in_flight
    id_stall = interlock | csr_stall

    # ------------------------------------------------------------------
    # IF stage
    # ------------------------------------------------------------------
    fetch_instr = imem.read(pc[0:config.imem_index_bits])

    # ------------------------------------------------------------------
    # Next-state logic
    # ------------------------------------------------------------------
    trap_target = mux(trap_mret, mepc, const(config.trap_vector, XLEN))
    pc_plus1 = pc + 1
    pc_next = pc_plus1
    pc_next = mux(id_stall, pc, pc_next)
    pc_next = mux(br_taken, br_target, pc_next)
    pc_next = mux(stall_eff, pc, pc_next)
    pc_next = mux(do_trap, trap_target, pc_next)
    c.next(pc, pc_next)

    # IF/ID
    ifid_valid_next = const(1, 1)
    ifid_valid_next = mux(id_stall, ifid_valid, ifid_valid_next)
    ifid_valid_next = mux(br_taken, const(0, 1), ifid_valid_next)
    ifid_valid_next = mux(stall_eff, ifid_valid, ifid_valid_next)
    ifid_valid_next = mux(do_trap, const(0, 1), ifid_valid_next)
    c.next(ifid_valid, ifid_valid_next)
    hold_if = stall_eff | id_stall
    c.next(ifid_pc, mux(hold_if, ifid_pc, pc))
    c.next(ifid_instr, mux(hold_if, ifid_instr, fetch_instr))

    # ID/EX
    idex_valid_next = ifid_valid
    idex_valid_next = mux(id_stall, const(0, 1), idex_valid_next)
    idex_valid_next = mux(br_taken, const(0, 1), idex_valid_next)
    idex_valid_next = mux(stall_eff, idex["valid"], idex_valid_next)
    idex_valid_next = mux(do_trap, const(0, 1), idex_valid_next)
    c.next(idex["valid"], idex_valid_next)
    for name, value in [
        ("pc", ifid_pc), ("op", id_op), ("rd", id_rd), ("rs1", id_rs1),
        ("rs2", id_rs2), ("funct", id_funct), ("imm6", id_imm6),
        ("imm8", id_imm8), ("csr", id_csr),
    ]:
        c.next(idex[name], mux(stall_eff, idex[name], value))
    # While the pipeline is frozen by the memory stage, the instruction in
    # EX captures its forwarded operands — its producers may retire before
    # the stall clears and the forwarding paths would go stale.
    c.next(idex["rs1_val"], mux(stall_eff, ex_a, id_rs1_val))
    c.next(idex["rs2_val"], mux(stall_eff, ex_b, id_rs2_val))

    # EX/M
    exmem_valid_next = idex["valid"]
    exmem_valid_next = mux(stall_eff, exmem["valid"], exmem_valid_next)
    exmem_valid_next = mux(do_trap, const(0, 1), exmem_valid_next)
    c.next(exmem["valid"], exmem_valid_next)
    for name, value in [
        ("pc", idex["pc"]), ("op", ex_op), ("rd", idex["rd"]),
        ("csr", idex["csr"]), ("result", ex_result), ("sdata", ex_sdata),
    ]:
        c.next(exmem[name], mux(stall_eff, exmem[name], value))

    # M/WB
    memwb_valid_next = m_valid
    memwb_valid_next = mux(stall_eff, memwb["valid"] & trap_req, memwb_valid_next)
    memwb_valid_next = mux(do_trap, const(0, 1), memwb_valid_next)
    c.next(memwb["valid"], memwb_valid_next)
    m_cause = mux(m_is_store, const(isa.CAUSE_STORE_FAULT, 3),
                  const(isa.CAUSE_LOAD_FAULT, 3))
    hold_wb = stall_eff  # while the M stage drains, WB holds the trap
    for name, value in [
        ("pc", exmem["pc"]), ("op", exmem["op"]), ("rd", exmem["rd"]),
        ("csr", exmem["csr"]), ("result", exmem["result"]),
        ("sdata", exmem["sdata"]), ("exc", m_exc), ("cause", m_cause),
    ]:
        c.next(memwb[name], mux(hold_wb, memwb[name], value))

    # Response buffer (the internal buffer of Sec. III).
    c.next(resp_buf, mux(m_load_done, m_load_value, resp_buf))

    # Register file
    for i, reg in enumerate(xregs, start=1):
        hit = rf_we & memwb["rd"].eq(const(i, 3))
        c.next(reg, mux(hit, wb_data, reg))

    # CSRs / trap state
    csr_commit = wb_valid & ~memwb["exc"] & wb_is_csrw & mode.eq(
        isa.MODE_MACHINE
    )
    csr_wdata = memwb["sdata"]

    def csr_write_en(addr: int) -> Expr:
        return csr_commit & memwb["csr"].eq(const(addr, 6))

    take_trap = do_trap & (trap_exc | trap_ecall)
    mepc_next = mux(csr_write_en(isa.CSR_MEPC), csr_wdata, mepc)
    mepc_next = mux(take_trap, memwb["pc"], mepc_next)
    c.next(mepc, mepc_next)
    trap_cause = mux(trap_exc, memwb["cause"], const(isa.CAUSE_ECALL, 3))
    mcause_next = mux(csr_write_en(isa.CSR_MCAUSE), csr_wdata[0:3], mcause)
    mcause_next = mux(take_trap, trap_cause, mcause_next)
    c.next(mcause, mcause_next)
    mode_next = mux(do_trap & trap_mret, const(isa.MODE_USER, 1), mode)
    mode_next = mux(take_trap, const(isa.MODE_MACHINE, 1), mode_next)
    c.next(mode, mode_next)

    pmp_we = pmp_write_enables(config, pmp)
    for addr, reg in pmp.regs().items():
        enable = csr_write_en(addr) & pmp_we[addr]
        value = csr_wdata[0:4] if reg.width == 4 else csr_wdata
        c.next(reg, mux(enable, value, reg))

    c.next(cyc, cyc + 1)

    # ------------------------------------------------------------------
    # Probes & outputs
    # ------------------------------------------------------------------
    soc.probes = {
        "m_valid": m_valid,
        "m_is_load": m_is_load,
        "m_is_store": m_is_store,
        "m_eff_addr": m_eff_addr,
        "m_pmp_ok": m_pmp_ok,
        "m_exc": m_exc,
        "req_valid": req_valid,
        "cache_done": cache.done,
        "stall_mem": stall_mem,
        "stall_eff": stall_eff,
        "trap_req": trap_req,
        "do_trap": do_trap,
        "br_taken": br_taken,
        "interlock": interlock,
        "rf_we": rf_we,
        "wb_data": wb_data,
        "m_load_value": m_load_value,
    }
    c.output("pc_out", pc)
    c.output("mode_out", mode)
    c.output("cyc_out", cyc)
    c.output("do_trap", do_trap)
    c.output("stall_mem", stall_mem)
    c.finalize()
    return soc
