"""A tiny two-pass assembler for RV8 programs.

Programs are lists whose elements are :class:`Instruction` objects, label
strings (``"loop:"``) or ``(mnemonic, operands...)`` tuples referencing
labels for branch/jump targets.  The assembler resolves label offsets
(PC-relative, in instruction words) and emits the final word list.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro.errors import IsaError
from repro.soc import isa
from repro.soc.isa import Instruction

Item = Union[Instruction, str, tuple]

_BRANCH_MNEMONICS = {"beq": isa.beq, "bne": isa.bne}


def assemble(items: Sequence[Item], base: int = 0) -> List[int]:
    """Assemble a program into 16-bit instruction words.

    ``base`` is the word address of the first instruction (used for
    PC-relative label resolution).
    """
    labels: Dict[str, int] = {}
    placed: List[Union[Instruction, tuple]] = []
    pc = base
    for item in items:
        if isinstance(item, str):
            if not item.endswith(":"):
                raise IsaError(f"label {item!r} must end with ':'")
            name = item[:-1]
            if name in labels:
                raise IsaError(f"duplicate label {name!r}")
            labels[name] = pc
            continue
        placed.append(item)
        pc += 1

    words: List[int] = []
    pc = base
    for item in placed:
        if isinstance(item, Instruction):
            words.append(item.encode())
        elif isinstance(item, tuple):
            words.append(_resolve(item, pc, labels).encode())
        else:
            raise IsaError(f"cannot assemble item {item!r}")
        pc += 1
    return words


def _resolve(item: tuple, pc: int, labels: Dict[str, int]) -> Instruction:
    mnemonic = item[0]
    if mnemonic in _BRANCH_MNEMONICS:
        _, rs1, rs2, label = item
        offset = _label_offset(label, pc, labels)
        return _BRANCH_MNEMONICS[mnemonic](rs1, rs2, offset)
    if mnemonic == "jal":
        _, rd, label = item
        offset = _label_offset(label, pc, labels)
        return isa.jal(rd, offset)
    raise IsaError(f"unknown label-form mnemonic {mnemonic!r}")


def _label_offset(label: str, pc: int, labels: Dict[str, int]) -> int:
    if label not in labels:
        raise IsaError(f"undefined label {label!r}")
    offset = labels[label] - pc
    if not -32 <= offset <= 31:
        raise IsaError(f"branch to {label!r} out of range ({offset} words)")
    return offset


def disassemble(words: Sequence[int]) -> List[str]:
    """Human-readable listing of a program."""
    return [f"{i:3d}: {isa.decode(w)}" for i, w in enumerate(words)]
