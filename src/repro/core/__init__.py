"""UPEC: Unique Program Execution Checking — the paper's contribution.

* :mod:`repro.core.model` — the two-instance computational model (Fig. 3),
* :mod:`repro.core.upec` — the interval property checker (Fig. 4 / Eq. 1),
* :mod:`repro.core.alerts` — P-alert / L-alert classification (Defs. 6, 7),
* :mod:`repro.core.methodology` — the iterative flow (Fig. 5),
* :mod:`repro.core.closure` — inductive diff-closure proofs (Sec. VI),
* :mod:`repro.core.monitor` — the cache protocol monitor (Constraint 2).
"""

from repro.core.alerts import Alert, classify
from repro.core.closure import (
    ClosureObligation,
    ClosureResult,
    CondEq,
    InductiveDiffProof,
)
from repro.core.methodology import (
    INSECURE,
    SECURE_BOUNDED,
    UNDECIDED,
    MethodologyResult,
    UpecMethodology,
)
from repro.core.diagnosis import Diagnosis, dependency_graph, diagnose
from repro.core.model import UpecModel, UpecScenario
from repro.core.monitor import cache_protocol_ok
from repro.core.upec import (
    ALERT,
    INCONCLUSIVE,
    PROVED,
    UpecChecker,
    UpecCheckResult,
)

__all__ = [
    "ALERT",
    "Alert",
    "ClosureObligation",
    "ClosureResult",
    "CondEq",
    "Diagnosis",
    "INCONCLUSIVE",
    "INSECURE",
    "InductiveDiffProof",
    "MethodologyResult",
    "PROVED",
    "SECURE_BOUNDED",
    "UNDECIDED",
    "UpecChecker",
    "UpecCheckResult",
    "UpecMethodology",
    "UpecModel",
    "UpecScenario",
    "cache_protocol_ok",
    "classify",
    "dependency_graph",
    "diagnose",
]
