"""Counterexample diagnosis: locate the hardware carrying a covert channel.

UPEC's selling point over attack-centric analyses is that a counterexample
*points the designer to the HW components that may be involved in the
creation of a covert channel* (Sec. I).  This module turns an alert into:

* the **propagation chain** — which registers carried a difference at each
  cycle of the witness, annotated with the structural one-cycle dependency
  that fed each newly-differing register, and
* a **suspect set** — the microarchitectural registers on any structural
  path from the secret to the first architectural divergence (computed
  with networkx over the sequential dependency graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.alerts import Alert
from repro.hdl.analysis import sequential_fanin_map
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Reg


@dataclass
class PropagationStep:
    """Differences appearing at one cycle of the witness."""

    frame: int
    new_regs: List[str]
    carried_regs: List[str]
    feeders: Dict[str, List[str]] = field(default_factory=dict)


@dataclass
class Diagnosis:
    """A structured explanation of an alert."""

    alert: Alert
    steps: List[PropagationStep]
    suspects: List[str]

    def render(self) -> str:
        lines = [f"diagnosis of {self.alert.describe()}"]
        for step in self.steps:
            if not step.new_regs and not step.carried_regs:
                continue
            lines.append(f"  cycle t+{step.frame}:")
            for name in step.new_regs:
                feeders = step.feeders.get(name, [])
                via = f"  (fed by {', '.join(feeders)})" if feeders else ""
                lines.append(f"    + {name}{via}")
            if step.carried_regs:
                lines.append(
                    "    = still differing: " + ", ".join(step.carried_regs)
                )
        lines.append("  suspect components: " + ", ".join(self.suspects))
        return "\n".join(lines)


def dependency_graph(circuit: Circuit) -> "nx.DiGraph":
    """The one-cycle register dependency graph (edge a->b: a feeds b)."""
    graph = nx.DiGraph()
    for reg in circuit.regs.values():
        graph.add_node(reg.name)
    for reg, deps in sequential_fanin_map(circuit).items():
        for dep in deps:
            graph.add_edge(dep.name, reg.name)
    return graph


def _diff_sets(alert: Alert) -> List[Set[str]]:
    sets: List[Set[str]] = []
    for frame in alert.witness:
        sets.append({
            name for name, (v1, v2) in frame.items() if v1 != v2
        })
    return sets


def diagnose(circuit: Circuit, alert: Alert,
             sources: Optional[List[Reg]] = None) -> Diagnosis:
    """Explain an alert over its witness.

    ``sources`` (default: the registers differing at frame 0) anchor the
    suspect-path computation.
    """
    if not alert.witness:
        return Diagnosis(alert=alert, steps=[], suspects=[])
    graph = dependency_graph(circuit)
    fanin = {
        reg.name: [d.name for d in deps]
        for reg, deps in sequential_fanin_map(circuit).items()
    }
    diff_sets = _diff_sets(alert)
    steps: List[PropagationStep] = []
    for frame in range(1, len(diff_sets)):
        previous, current = diff_sets[frame - 1], diff_sets[frame]
        new = sorted(current - previous)
        carried = sorted(current & previous)
        feeders = {}
        for name in new:
            feeders[name] = sorted(
                dep for dep in fanin.get(name, []) if dep in previous
            )
        steps.append(PropagationStep(
            frame=frame, new_regs=new, carried_regs=carried,
            feeders=feeders,
        ))

    source_names = (
        [r.name for r in sources] if sources else sorted(diff_sets[0])
    )
    target_names = sorted(
        {reg.name for reg, _, _ in alert.diffs}
    )
    suspects: Set[str] = set()
    for src in source_names:
        for dst in target_names:
            if src in graph and dst in graph and nx.has_path(graph, src, dst):
                for path in nx.all_simple_paths(
                    graph, src, dst, cutoff=len(alert.witness)
                ):
                    suspects.update(path)
    # Only registers that actually differed somewhere are suspects.
    observed = set().union(*diff_sets) if diff_sets else set()
    suspects &= observed
    return Diagnosis(
        alert=alert, steps=steps, suspects=sorted(suspects),
    )
