"""Alert classification (Defs. 6 and 7 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hdl.expr import Reg

P_ALERT = "P"
L_ALERT = "L"


@dataclass
class Alert:
    """A counterexample to the UPEC property.

    ``kind`` is ``"L"`` when any differing state bit belongs to an
    architectural state variable (a proven security violation), else
    ``"P"`` (propagation into program-invisible state — a necessary but
    not sufficient indicator of a covert channel).
    """

    kind: str
    frame: int
    diffs: List[Tuple[Reg, int, int]]
    #: Register values of both instances per frame (name -> (v1, v2)).
    witness: List[Dict[str, Tuple[int, int]]] = field(default_factory=list)

    @property
    def is_l_alert(self) -> bool:
        return self.kind == L_ALERT

    @property
    def is_p_alert(self) -> bool:
        return self.kind == P_ALERT

    def diff_reg_names(self) -> List[str]:
        return [reg.name for reg, _, _ in self.diffs]

    def arch_diffs(self) -> List[Tuple[Reg, int, int]]:
        return [(r, a, b) for r, a, b in self.diffs if r.arch]

    def describe(self) -> str:
        kind = "L-alert" if self.is_l_alert else "P-alert"
        regs = ", ".join(
            f"{reg.name}({v1:#x}/{v2:#x})" for reg, v1, v2 in self.diffs
        )
        return f"{kind} at t+{self.frame}: {regs}"

    def to_dict(self, include_witness: bool = True) -> Dict:
        """JSON-serializable form (register objects flatten to names)."""
        data = {
            "kind": self.kind,
            "frame": self.frame,
            "diffs": [
                {"reg": reg.name, "arch": bool(reg.arch),
                 "v1": v1, "v2": v2}
                for reg, v1, v2 in self.diffs
            ],
        }
        if include_witness:
            data["witness"] = [
                {name: list(pair) for name, pair in frame.items()}
                for frame in self.witness
            ]
        return data

    def render_witness(self, signals: List[str] = None) -> str:
        """Side-by-side trace of both instances for the differing signals."""
        if not self.witness:
            return "(no witness recorded)"
        names = signals or self.diff_reg_names()
        lines = []
        for name in names:
            pairs = [frame.get(name, (0, 0)) for frame in self.witness]
            row1 = " ".join(f"{a:3x}" for a, _ in pairs)
            row2 = " ".join(f"{b:3x}" for _, b in pairs)
            marker = "" if all(a == b for a, b in pairs) else "   <- differs"
            lines.append(f"{name:>16}  I1: {row1}")
            lines.append(f"{'':>16}  I2: {row2}{marker}")
        return "\n".join(lines)


def classify(frame: int, diffs, witness=None) -> Alert:
    """Build an alert from the differing registers at a frame."""
    kind = L_ALERT if any(reg.arch for reg, _, _ in diffs) else P_ALERT
    return Alert(kind=kind, frame=frame, diffs=list(diffs),
                 witness=witness or [])
