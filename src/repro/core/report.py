"""Textual reporting for UPEC runs — the tables the benchmarks print."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an ASCII table (the benches' paper-style output)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(len(headers))
    ]
    def fmt_row(row):
        return " | ".join(str(c).ljust(w) for c, w in zip(row, widths))

    lines = [fmt_row(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_kv_block(title: str, data: Dict[str, object]) -> str:
    width = max(len(k) for k in data) if data else 0
    lines = [title, "=" * len(title)]
    lines += [f"{k.ljust(width)} : {v}" for k, v in data.items()]
    return "\n".join(lines)


def paper_vs_measured(
    title: str,
    rows: Sequence[Dict[str, object]],
) -> str:
    """Standard layout for EXPERIMENTS.md entries: each row carries
    'metric', 'paper', 'measured' keys."""
    table = format_table(
        ["metric", "paper (RocketChip/OneSpin)", "measured (this repro)"],
        [[r["metric"], r["paper"], r["measured"]] for r in rows],
    )
    return f"{title}\n{table}"
