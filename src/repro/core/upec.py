"""The UPEC interval property checker (Fig. 4, Eq. 1 on a bounded model).

For a window of length ``k`` the checker proves, cycle by cycle::

    assume at t:        secret_data_protected, micro-state equality
                        (variable sharing), no_ongoing_protected_access
    assume t..t+k:      cache_monitor_valid_IO, secure_system_software
    prove  at t+j:      soc_state_1 = soc_state_2      (j = 1..k)

A SAT result is a counterexample, classified as a P- or L-alert.  The
commitment set (which registers make up *soc_state*) is a parameter: the
methodology of Fig. 5 shrinks it as P-alerts are inspected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import UpecError
from repro.core.alerts import Alert, classify
from repro.core.model import UpecModel
from repro.hdl.expr import Reg

PROVED = "proved"
ALERT = "alert"
INCONCLUSIVE = "inconclusive"


@dataclass
class UpecCheckResult:
    """Outcome of one bounded UPEC property check."""

    status: str                     # proved | alert | inconclusive
    k: int
    alert: Optional[Alert] = None
    runtime_s: float = 0.0
    checked_frames: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    #: Why an INCONCLUSIVE check stopped: "conflict limit", "wall budget
    #: exhausted (timeout)" or "obligation poisoned (...)" — callers can
    #: tell a budget expiry (raise the budget, retry) from a poisoned
    #: obligation (inspect the failure reports) without re-solving.
    reason: str = ""

    @property
    def proved(self) -> bool:
        return self.status == PROVED

    def describe(self) -> str:
        if self.status == PROVED:
            return f"proved up to k={self.k} ({self.runtime_s:.2f}s)"
        if self.status == INCONCLUSIVE:
            return (f"inconclusive at k={self.k} "
                    f"({self.reason or 'conflict limit'})")
        return f"{self.alert.describe()} ({self.runtime_s:.2f}s)"

    def to_dict(self) -> Dict:
        return {
            "status": self.status,
            "k": self.k,
            "alert": self.alert.to_dict() if self.alert is not None else None,
            "runtime_s": self.runtime_s,
            "checked_frames": self.checked_frames,
            "stats": dict(self.stats),
            "reason": self.reason,
        }


def _inconclusive_reason(verdict) -> str:
    """Human-readable cause of a non-definite engine verdict."""
    from repro.engine.obligation import POISONED, TIMEOUT

    if verdict.status == TIMEOUT:
        return "wall budget exhausted (timeout)"
    if verdict.status == POISONED:
        return "obligation poisoned (repeated worker failures)"
    return "conflict limit"


class UpecChecker:
    """Checks the UPEC property over one miter model.

    Without an ``engine`` the frames are solved incrementally on the
    model's in-process solver.  With an ``engine``
    (:class:`repro.engine.ProofEngine`) each frame becomes a
    self-contained proof obligation: frames are solved on the engine's
    worker pool (all siblings in flight at once, cancelled as soon as an
    earlier frame alerts) and verdicts may come from its persistent
    cache.  Both modes report the lowest alerting frame, so verdicts are
    identical; an unset engine falls back to the environment default
    (``REPRO_ENGINE_JOBS`` / ``REPRO_ENGINE_CACHE``).

    With ``split=True`` (or ``REPRO_ENGINE_SPLIT=1``) each frame's
    commitment check is further split into independent per-register(-
    group) obligations so the deepest frame alone can saturate a worker
    pool or the distributed fleet (see :mod:`repro.engine.split`).  The
    frame is UNSAT iff every group is; any SAT group reports the alert
    through the frame's canonical *unsplit* obligation, so status, k,
    alert register set and witness trace are bit-identical to an unsplit
    run at any ``jobs`` setting (splitting requires an engine: the
    engine-less incremental path ignores the knob, which is sound — it
    solves the same unsplit query).
    """

    def __init__(self, model: UpecModel, engine=None,
                 slice: Optional[bool] = None,
                 split: Optional[bool] = None) -> None:
        self.model = model
        self.slice = slice
        self.split = split
        from repro.engine.pool import resolve_engine

        self.engine = resolve_engine(engine)

    def _slice_enabled(self) -> bool:
        from repro.engine.slice import env_slice

        return env_slice() if self.slice is None else bool(self.slice)

    def _split_enabled(self) -> bool:
        from repro.engine.split import env_split

        return env_split() if self.split is None else bool(self.split)

    def _frame_split(self, regs: Sequence[Reg], t: int,
                     conflict_limit: Optional[int], split: bool,
                     slice: Optional[bool] = None,
                     wall_budget: Optional[float] = None):
        """One frame's check as a FrameSplit (or None when structurally
        proved) — a single-obligation degenerate split in unsplit mode,
        so the engine paths walk one uniform shape."""
        from repro.engine.split import FrameSplit

        model = self.model
        if split:
            return model.frame_split_obligations(
                regs, t, conflict_limit, slice=slice,
                wall_budget=wall_budget,
            )
        obligation = model.frame_obligation(regs, t, conflict_limit,
                                            slice=slice,
                                            wall_budget=wall_budget)
        if obligation is None:
            return None
        return FrameSplit(
            obligations=[obligation],
            groups=[[reg.name for reg in regs]],
            full_obligation=obligation,
            full=True,
        )

    def check(
        self,
        k: int,
        commitment: Optional[Sequence[Reg]] = None,
        start_frame: int = 1,
        conflict_limit: Optional[int] = None,
        witness_signals: bool = True,
        wall_budget: Optional[float] = None,
    ) -> UpecCheckResult:
        """Check frames ``start_frame``..``k`` against the commitment.

        ``wall_budget`` bounds each frame's solve in wall-clock seconds
        (per obligation, the same unit the distributed broker enforces);
        an exhausted budget yields a distinguishable INCONCLUSIVE result
        (``reason`` says "timeout") instead of an open-ended solve.
        """
        if k < start_frame:
            raise UpecError("window must include at least one frame")
        model = self.model
        regs = list(commitment) if commitment is not None \
            else model.default_commitment()
        start = time.perf_counter()
        if self.engine is not None:
            return self._check_engine(
                k, regs, start_frame, conflict_limit, witness_signals,
                start, wall_budget,
            )
        checked = 0
        for t in range(start_frame, k + 1):
            model.assume_window(t)
            target = model.commitment_diff_lit(regs, t)
            if target == 0:
                # Structural hashing folded every pair to equality: the
                # commitment cannot differ at this frame (no SAT needed).
                checked += 1
                continue
            deadline = None
            if wall_budget is not None and wall_budget > 0:
                deadline = time.monotonic() + wall_budget
            outcome = model.context.solve(
                assumptions=[target], conflict_limit=conflict_limit,
                deadline=deadline,
            )
            checked += 1
            if outcome is None:
                timed_out = getattr(model.context.solver, "stop_reason",
                                    None) == "deadline"
                return UpecCheckResult(
                    status=INCONCLUSIVE, k=t,
                    runtime_s=time.perf_counter() - start,
                    checked_frames=checked, stats=model.stats(),
                    reason="wall budget exhausted (timeout)" if timed_out
                    else "conflict limit",
                )
            if outcome:
                diffs = model.differing_regs(t, regs)
                witness = model.witness_frames(t) if witness_signals else []
                alert = classify(t, diffs, witness)
                return UpecCheckResult(
                    status=ALERT, k=t, alert=alert,
                    runtime_s=time.perf_counter() - start,
                    checked_frames=checked, stats=model.stats(),
                )
        return UpecCheckResult(
            status=PROVED, k=k, runtime_s=time.perf_counter() - start,
            checked_frames=checked, stats=model.stats(),
        )

    def _engine_stats(self, since: Dict[str, int]) -> Dict[str, int]:
        stats = dict(self.model.stats())
        stats.update(self.engine.stats(since=since))
        return stats

    def _check_engine(
        self,
        k: int,
        regs: Sequence[Reg],
        start_frame: int,
        conflict_limit: Optional[int],
        witness_signals: bool,
        start: float,
        wall_budget: Optional[float] = None,
    ) -> UpecCheckResult:
        """Obligation-based frame checks via the scheduler/cache engine.

        With slicing (the default) an obligation's content is canonical
        — it depends only on the commitment and the frame, not on how
        far the shared CNF mapper happened to grow — so at ``jobs=1``
        frames are exported *lazily*, one at a time, and an early alert
        stops the walk before later frames are ever unrolled.  At
        ``jobs>1`` the window's frames are exported up front so all
        siblings can be in flight at once; both schedules produce
        bit-identical obligation streams, hence bit-identical verdicts
        and counterexample models.

        Without slicing, obligation content *does* depend on the shared
        mapper's emission history, so every frame of the window is
        exported eagerly at any jobs setting (the pre-slicing behaviour)
        to keep jobs=1 and jobs=N obligation streams identical.

        With splitting, each frame contributes its register-group
        obligations to the flattened batch (frame-major, group-minor);
        the ordered scheduler's early-stop then cancels both later
        frames *and* a SAT group's in-frame siblings network-wide, and
        first-non-UNSAT selection stays canonical at any jobs setting.
        """
        since = self.engine.stats()
        split = self._split_enabled()
        if self.engine.jobs == 1 and self._slice_enabled():
            return self._check_engine_lazy(
                k, regs, start_frame, conflict_limit, witness_signals,
                start, since, split, wall_budget,
            )
        frames = list(range(start_frame, k + 1))
        batches = [
            self._frame_split(regs, t, conflict_limit, split,
                              slice=self.slice, wall_budget=wall_budget)
            for t in frames
        ]
        pending = [ob for fs in batches if fs is not None
                   for ob in fs.obligations]
        verdicts = iter(self.engine.solve_ordered(
            pending, early_stop=lambda v: not v.unsat
        ))
        checked = 0
        for t, fs in zip(frames, batches):
            checked += 1
            if fs is None:
                # Structural hashing folded every pair to equality: the
                # commitment cannot differ at this frame (no SAT needed).
                continue
            for obligation in fs.obligations:
                verdict = next(verdicts)
                if verdict is None or verdict.unsat:
                    continue
                if not verdict.sat:
                    return UpecCheckResult(
                        status=INCONCLUSIVE, k=t,
                        runtime_s=time.perf_counter() - start,
                        checked_frames=checked,
                        stats=self._engine_stats(since),
                        reason=_inconclusive_reason(verdict),
                    )
                if fs.full:
                    return self._alert_result(
                        obligation, verdict, t, regs, witness_signals,
                        checked, start, since,
                    )
                return self._alert_via_full(
                    fs, t, regs, witness_signals, checked, start, since,
                )
        return UpecCheckResult(
            status=PROVED, k=k, runtime_s=time.perf_counter() - start,
            checked_frames=checked, stats=self._engine_stats(since),
        )

    def _check_engine_lazy(
        self,
        k: int,
        regs: Sequence[Reg],
        start_frame: int,
        conflict_limit: Optional[int],
        witness_signals: bool,
        start: float,
        since: Dict[str, int],
        split: bool = False,
        wall_budget: Optional[float] = None,
    ) -> UpecCheckResult:
        """Frame-at-a-time export and solve: an alert at frame ``t``
        means frames ``t+1..k`` are never unrolled or exported.

        In split mode each frame's group obligations still go through
        the ordered scheduler (a per-frame batch), so the first
        non-UNSAT group is the same one an eager jobs=N run selects."""
        checked = 0
        for t in range(start_frame, k + 1):
            fs = self._frame_split(regs, t, conflict_limit, split,
                                   slice=True, wall_budget=wall_budget)
            checked += 1
            if fs is None:
                continue
            verdicts = self.engine.solve_ordered(
                fs.obligations, early_stop=lambda v: not v.unsat
            )
            for obligation, verdict in zip(fs.obligations, verdicts):
                if verdict is None or verdict.unsat:
                    continue
                if not verdict.sat:
                    return UpecCheckResult(
                        status=INCONCLUSIVE, k=t,
                        runtime_s=time.perf_counter() - start,
                        checked_frames=checked,
                        stats=self._engine_stats(since),
                        reason=_inconclusive_reason(verdict),
                    )
                if fs.full:
                    return self._alert_result(
                        obligation, verdict, t, regs, witness_signals,
                        checked, start, since,
                    )
                return self._alert_via_full(
                    fs, t, regs, witness_signals, checked, start, since,
                )
        return UpecCheckResult(
            status=PROVED, k=k, runtime_s=time.perf_counter() - start,
            checked_frames=checked, stats=self._engine_stats(since),
        )

    def _alert_via_full(
        self,
        fs,
        t: int,
        regs: Sequence[Reg],
        witness_signals: bool,
        checked: int,
        start: float,
        since: Dict[str, int],
    ) -> UpecCheckResult:
        """A split register group is SAT at frame ``t``: re-solve the
        frame's canonical *unsplit* obligation (pre-exported alongside
        the groups, so its bytes match an unsplit run's) and report the
        alert from its model — the alert register set and witness trace
        are then bit-identical to unsplit mode, regardless of which
        group fired or what partial model its solver found."""
        verdict = self.engine.solve(fs.full_obligation)
        if verdict.unsat:
            raise UpecError(
                f"split consistency violation at frame {t}: a register "
                "group is SAT but the frame's full obligation is UNSAT"
            )
        if not verdict.sat:
            return UpecCheckResult(
                status=INCONCLUSIVE, k=t,
                runtime_s=time.perf_counter() - start,
                checked_frames=checked, stats=self._engine_stats(since),
                reason=_inconclusive_reason(verdict),
            )
        return self._alert_result(
            fs.full_obligation, verdict, t, regs, witness_signals,
            checked, start, since,
        )

    def _alert_result(
        self,
        obligation,
        verdict,
        t: int,
        regs: Sequence[Reg],
        witness_signals: bool,
        checked: int,
        start: float,
        since: Dict[str, int],
    ) -> UpecCheckResult:
        model = self.model
        model.context.adopt_verdict(obligation, verdict)
        diffs = model.differing_regs(t, regs)
        witness = model.witness_frames(t) if witness_signals else []
        alert = classify(t, diffs, witness)
        return UpecCheckResult(
            status=ALERT, k=t, alert=alert,
            runtime_s=time.perf_counter() - start,
            checked_frames=checked, stats=self._engine_stats(since),
        )

    def find_first_alert_window(
        self,
        max_k: int,
        commitment: Optional[Sequence[Reg]] = None,
        conflict_limit: Optional[int] = None,
    ) -> UpecCheckResult:
        """Increase the window until the first counterexample appears —
        the 'window length for alert' measurements of Tab. II."""
        return self.check(
            max_k, commitment=commitment, conflict_limit=conflict_limit
        )

    def feasible_k(
        self,
        time_budget_s: float,
        max_k: int = 64,
        commitment: Optional[Sequence[Reg]] = None,
    ) -> UpecCheckResult:
        """Extend the window frame by frame until the time budget runs out
        or an alert appears — the 'feasible k' measurement of Tab. I.

        Returns the result of the deepest completed check (its ``k`` is
        the feasible window length).
        """
        start = time.perf_counter()
        last: Optional[UpecCheckResult] = None
        frame = 1
        while frame <= max_k:
            result = self.check(frame, commitment=commitment,
                                start_frame=frame)
            if result.status != PROVED:
                return result
            elapsed = time.perf_counter() - start
            last = UpecCheckResult(
                status=PROVED, k=frame, runtime_s=elapsed,
                checked_frames=frame, stats=self.model.stats(),
            )
            if elapsed > time_budget_s:
                break
            frame += 1
        if last is None:
            raise UpecError("time budget too small for a single frame")
        return last
