"""The UPEC interval property checker (Fig. 4, Eq. 1 on a bounded model).

For a window of length ``k`` the checker proves, cycle by cycle::

    assume at t:        secret_data_protected, micro-state equality
                        (variable sharing), no_ongoing_protected_access
    assume t..t+k:      cache_monitor_valid_IO, secure_system_software
    prove  at t+j:      soc_state_1 = soc_state_2      (j = 1..k)

A SAT result is a counterexample, classified as a P- or L-alert.  The
commitment set (which registers make up *soc_state*) is a parameter: the
methodology of Fig. 5 shrinks it as P-alerts are inspected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import UpecError
from repro.core.alerts import Alert, classify
from repro.core.model import UpecModel
from repro.hdl.expr import Reg

PROVED = "proved"
ALERT = "alert"
INCONCLUSIVE = "inconclusive"


@dataclass
class UpecCheckResult:
    """Outcome of one bounded UPEC property check."""

    status: str                     # proved | alert | inconclusive
    k: int
    alert: Optional[Alert] = None
    runtime_s: float = 0.0
    checked_frames: int = 0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def proved(self) -> bool:
        return self.status == PROVED

    def describe(self) -> str:
        if self.status == PROVED:
            return f"proved up to k={self.k} ({self.runtime_s:.2f}s)"
        if self.status == INCONCLUSIVE:
            return f"inconclusive at k={self.k} (conflict limit)"
        return f"{self.alert.describe()} ({self.runtime_s:.2f}s)"


class UpecChecker:
    """Incrementally checks the UPEC property over one miter model."""

    def __init__(self, model: UpecModel) -> None:
        self.model = model

    def check(
        self,
        k: int,
        commitment: Optional[Sequence[Reg]] = None,
        start_frame: int = 1,
        conflict_limit: Optional[int] = None,
        witness_signals: bool = True,
    ) -> UpecCheckResult:
        """Check frames ``start_frame``..``k`` against the commitment."""
        if k < start_frame:
            raise UpecError("window must include at least one frame")
        model = self.model
        regs = list(commitment) if commitment is not None \
            else model.default_commitment()
        start = time.perf_counter()
        checked = 0
        for t in range(start_frame, k + 1):
            model.assume_window(t)
            target = model.commitment_diff_lit(regs, t)
            if target == 0:
                # Structural hashing folded every pair to equality: the
                # commitment cannot differ at this frame (no SAT needed).
                checked += 1
                continue
            outcome = model.context.solve(
                assumptions=[target], conflict_limit=conflict_limit
            )
            checked += 1
            if outcome is None:
                return UpecCheckResult(
                    status=INCONCLUSIVE, k=t,
                    runtime_s=time.perf_counter() - start,
                    checked_frames=checked, stats=model.stats(),
                )
            if outcome:
                diffs = model.differing_regs(t, regs)
                witness = model.witness_frames(t) if witness_signals else []
                alert = classify(t, diffs, witness)
                return UpecCheckResult(
                    status=ALERT, k=t, alert=alert,
                    runtime_s=time.perf_counter() - start,
                    checked_frames=checked, stats=model.stats(),
                )
        return UpecCheckResult(
            status=PROVED, k=k, runtime_s=time.perf_counter() - start,
            checked_frames=checked, stats=model.stats(),
        )

    def find_first_alert_window(
        self,
        max_k: int,
        commitment: Optional[Sequence[Reg]] = None,
        conflict_limit: Optional[int] = None,
    ) -> UpecCheckResult:
        """Increase the window until the first counterexample appears —
        the 'window length for alert' measurements of Tab. II."""
        return self.check(
            max_k, commitment=commitment, conflict_limit=conflict_limit
        )

    def feasible_k(
        self,
        time_budget_s: float,
        max_k: int = 64,
        commitment: Optional[Sequence[Reg]] = None,
    ) -> UpecCheckResult:
        """Extend the window frame by frame until the time budget runs out
        or an alert appears — the 'feasible k' measurement of Tab. I.

        Returns the result of the deepest completed check (its ``k`` is
        the feasible window length).
        """
        start = time.perf_counter()
        last: Optional[UpecCheckResult] = None
        frame = 1
        while frame <= max_k:
            result = self.check(frame, commitment=commitment,
                                start_frame=frame)
            if result.status != PROVED:
                return result
            elapsed = time.perf_counter() - start
            last = UpecCheckResult(
                status=PROVED, k=frame, runtime_s=elapsed,
                checked_frames=frame, stats=self.model.stats(),
            )
            if elapsed > time_budget_s:
                break
            frame += 1
        if last is None:
            raise UpecError("time budget too small for a single frame")
        return last
