"""Cache protocol monitor (Constraint 2 of the paper).

The IPC proof starts from a symbolic initial state that includes unreachable
cache-controller states.  Rather than hand-deriving invariants of the
controller, the paper instruments the RTL with a monitor that flags
protocol-violating I/O behaviour; assuming the monitor's ``ok`` output
during the proof window excludes exactly those spurious states.

Our monitor checks the controller's value ranges and handshake coherence:

* counters stay within their architected ranges,
* a pending-write slot with a zero counter is about to clear (not stuck),
* the refill address register points at a real transaction only while a
  refill is in flight (otherwise its value is ignored by construction).
"""

from __future__ import annotations

from repro.hdl import Expr, and_all, const, implies


def cache_protocol_ok(soc) -> Expr:
    """1-bit expression: the cache controller state is protocol-compliant.

    Assumed at every cycle of the UPEC window (Fig. 4,
    ``cache_monitor_valid_IO``).
    """
    cache = soc.cache
    config = soc.config
    pend_max = const(config.write_pending_cycles - 1, cache.wpend_ctr.width)
    rf_max = const(config.miss_latency - 1, cache.rf_ctr.width)
    checks = [
        # Counter ranges (unreachable counter values would stretch stalls
        # beyond any architected transaction length d_MEM).
        cache.wpend_ctr.ule(pend_max),
        cache.rf_ctr.ule(rf_max),
        # An idle write slot must not carry a live countdown.
        implies(~cache.wpend_v, cache.wpend_ctr.eq(0)),
        # No refill countdown while the controller is idle.
        implies(~cache.refilling, cache.rf_ctr.eq(0)),
    ]
    return and_all(checks)
