"""The UPEC computational model (Fig. 3): a two-instance miter.

Two identical instances of the SoC's logic are unrolled into **one** AIG.
Registers whose initial values are constrained equal *share AIG variables*
between the instances; only the secret-carrying locations (and, in closure
proofs, the allowed-difference set) receive independent variables.
Structural hashing then automatically collapses all logic outside the
secret's cone of influence — this realizes the complexity mitigation of
Sec. V-B at the bit level, and the black-boxing of cache data fields
corresponds to excluding them from the proof's commitment.

Assumptions (Fig. 4):

* ``secret_data_protected()`` at t,
* equality of the microarchitectural state at t (variable sharing),
* ``no_ongoing_protected_access()`` at t (Constraint 1),
* ``cache_monitor_valid_IO()`` during t..t+k (Constraint 2),
* ``secure_system_software()`` during t..t+k (Constraint 3),
* equality of non-protected memory, including the conditional equality of
  the cache's copy of the secret (Constraint 4), via variable sharing and
  the scenario's cache-state assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import UpecError
from repro.formal.aig import Aig
from repro.formal.bmc import SatContext
from repro.formal.unroll import Unroller
from repro.hdl.expr import Expr, Reg
from repro.soc.soc import Soc


@dataclass
class UpecScenario:
    """One verification setting of the experiments (Tab. I columns)."""

    secret_in_cache: bool = True
    #: Exclude the cache data fields from the commitment (Sec. V-B
    #: black-boxing).  The ablation bench turns this off.
    blackbox_cache_data: bool = True
    #: Concrete instruction memory; ``None`` leaves the program symbolic —
    #: the solver searches over all attacker programs.
    fixed_program: Optional[Sequence[int]] = None
    #: Restrict the initial privilege mode to user code (optional
    #: strengthening used in some benches to shrink the search).
    user_mode_at_t0: bool = False
    #: Reachability constraint for *branch-free* fixed programs: no branch
    #: or jump may sit in the decode/execute stages at t.  Without it, the
    #: symbolic initial state contains in-flight instructions that the
    #: fixed program can never produce (spurious counterexamples, Sec. V-A).
    no_inflight_branches: bool = False
    #: Stronger reachability constraint: the pipeline is drained at t (all
    #: stage valid bits clear).  Alert windows then count from instruction
    #: fetch, mirroring the paper's Tab. II measurements.
    pipeline_drained: bool = False
    #: Pin the program counter at t (useful with ``pipeline_drained`` and a
    #: fixed program: execution is then deterministic, and the unrolled
    #: model constant-folds massively).
    pin_pc: Optional[int] = None

    def describe(self) -> str:
        parts = [
            "D in cache" if self.secret_in_cache else "D not in cache",
            "symbolic program" if self.fixed_program is None else "fixed program",
        ]
        if self.blackbox_cache_data:
            parts.append("cache data black-boxed")
        return ", ".join(parts)


class UpecModel:
    """Two unrolled SoC instances over a shared SAT context."""

    def __init__(
        self,
        soc: Soc,
        scenario: UpecScenario,
        extra_diff_regs: Iterable[Reg] = (),
        cond_eq: Optional[Dict[Reg, Optional[Expr]]] = None,
        simplify: bool = True,
    ) -> None:
        self.soc = soc
        self.scenario = scenario
        self.context = SatContext(simplify=simplify)
        self.cond_eq = dict(cond_eq or {})

        diff_seed = {soc.secret_mem_reg}
        if scenario.secret_in_cache:
            diff_seed.add(soc.secret_cache_data_reg)
        diff_seed.update(extra_diff_regs)
        diff_seed.update(self.cond_eq)
        for reg in diff_seed:
            if reg.name not in soc.circuit.regs:
                raise UpecError(f"diff reg {reg.name!r} not in the SoC")
        self.diff_seed = diff_seed

        aig = self.context.aig
        # Scenario constraints with concrete values are applied as constant
        # initial bits rather than CNF assumptions: the unrolled model then
        # constant-folds structurally (deterministic fetch and decode for
        # fixed programs), which shrinks every SAT query.
        const_init = self._constant_initial_bits(aig)
        self.u1 = Unroller(soc.circuit, aig, init="symbolic",
                           init_bits=const_init)
        shared_bits = {
            reg: self.u1.reg_bits(reg, 0)
            for reg in soc.circuit.regs.values()
            if reg not in diff_seed
        }
        self.u2 = Unroller(soc.circuit, aig, init="symbolic",
                           init_bits=shared_bits)
        self._frames_assumed = -1
        self._apply_initial_assumptions()

    # ------------------------------------------------------------------
    # Assumptions
    # ------------------------------------------------------------------
    def _constant_initial_bits(self, aig) -> Dict[Reg, list]:
        """Frame-0 constants implied by the scenario (shared by both
        instances; none of these registers may be in the diff seed)."""
        from repro.formal.bitblast import const_bits

        soc = self.soc
        scenario = self.scenario
        const_init: Dict[Reg, list] = {}
        if scenario.fixed_program is not None:
            words = list(scenario.fixed_program)
            if len(words) > soc.config.imem_words:
                raise UpecError("fixed program exceeds instruction memory")
            words += [0] * (soc.config.imem_words - len(words))
            for reg, word in zip(soc.imem.words, words):
                const_init[reg] = const_bits(aig, word, reg.width)
        if scenario.pipeline_drained:
            for reg in (soc.ifid_valid, soc.idex["valid"],
                        soc.exmem["valid"], soc.memwb["valid"]):
                const_init[reg] = const_bits(aig, 0, reg.width)
        if scenario.pin_pc is not None:
            const_init[soc.pc] = const_bits(aig, scenario.pin_pc,
                                            soc.pc.width)
        overlap = set(const_init) & self.diff_seed
        if overlap:
            raise UpecError(
                "scenario constants overlap the difference seed: "
                + ", ".join(r.name for r in overlap)
            )
        return const_init

    def _assert_both(self, expr: Expr, frame: int) -> None:
        """Assert a 1-bit circuit expression in both instances.

        The units are frame-tagged so that a sliced frame-``t``
        obligation carries only the assumptions of frames ``0..t``."""
        self.context.assert_lit(self.u1.expr_lit(expr, frame), frame=frame)
        self.context.assert_lit(self.u2.expr_lit(expr, frame), frame=frame)

    def _apply_initial_assumptions(self) -> None:
        soc = self.soc
        self._assert_both(soc.secret_data_protected(), 0)
        self._assert_both(soc.no_ongoing_protected_access(), 0)
        cached = soc.secret_cached_expr()
        if self.scenario.secret_in_cache:
            self._assert_both(cached, 0)
        else:
            self._assert_both(~cached, 0)
        if self.scenario.user_mode_at_t0:
            from repro.soc.isa import MODE_USER

            self._assert_both(soc.mode.eq(MODE_USER), 0)
        if self.scenario.no_inflight_branches:
            from repro.soc.isa import OP_BEQ, OP_BNE, OP_JAL

            for op_expr in (soc.idex["op"], soc.ifid_instr[12:16]):
                for opcode in (OP_BEQ, OP_BNE, OP_JAL):
                    self._assert_both(op_expr.ne(opcode), 0)
        # fixed_program / pipeline_drained / pin_pc are applied as constant
        # initial bits in _constant_initial_bits (structural folding).
        # Conditional-equality seeds (inductive closure proofs): a register
        # pair may differ at t only under its blocking condition.
        for reg, cond in self.cond_eq.items():
            if cond is None:
                continue
            eq = self.pair_equal_lit(reg, 0)
            cond1 = self.u1.expr_lit(cond, 0)
            cond2 = self.u2.expr_lit(cond, 0)
            aig = self.context.aig
            self.context.assert_lit(aig.or_(eq, aig.and_(cond1, cond2)),
                                    frame=0)

    def assume_window(self, up_to_frame: int) -> None:
        """Apply the 'during t..t+k' assumptions (Constraints 2 and 3)."""
        soc = self.soc
        monitor = soc.cache_monitor_ok()
        syssw = soc.secure_system_software()
        for t in range(self._frames_assumed + 1, up_to_frame + 1):
            self._assert_both(monitor, t)
            self._assert_both(syssw, t)
        self._frames_assumed = max(self._frames_assumed, up_to_frame)

    # ------------------------------------------------------------------
    # Miter queries
    # ------------------------------------------------------------------
    def pair_diff_lit(self, reg: Reg, frame: int) -> int:
        """AIG literal: the register pair differs at ``frame``."""
        aig = self.context.aig
        bits1 = self.u1.reg_bits(reg, frame)
        bits2 = self.u2.reg_bits(reg, frame)
        diff = aig.or_all(aig.xor_(a, b) for a, b in zip(bits1, bits2))
        if diff not in (0, 1):
            # The register pair is witness state: keep its bits out of
            # variable elimination so alert diffs reflect search values.
            mapper = self.context.mapper
            for bit in bits1 + bits2:
                if bit not in (0, 1):
                    mapper.freeze_lit(bit)
        return diff

    def pair_equal_lit(self, reg: Reg, frame: int) -> int:
        return self.pair_diff_lit(reg, frame) ^ 1

    def commitment_diff_lit(self, regs: Sequence[Reg], frame: int) -> int:
        """soc_state_1 != soc_state_2 restricted to a commitment set."""
        aig = self.context.aig
        return aig.or_all(self.pair_diff_lit(reg, frame) for reg in regs)

    def frame_obligation(
        self,
        regs: Sequence[Reg],
        frame: int,
        conflict_limit: Optional[int] = None,
        slice: Optional[bool] = None,
        wall_budget: Optional[float] = None,
    ):
        """Export the frame's commitment check as a self-contained
        :class:`repro.engine.obligation.ProofObligation`.

        Returns None when structural hashing already folded every pair to
        equality (the frame is proved without a SAT call).

        With slicing (the default), the obligation is the frame's cone
        of influence only — frame-tagged window assumptions of later
        frames, other commitments and any other unrelated growth of the
        shared context are excluded, so the same ``(commitment, frame)``
        query always fingerprints identically (cross-window and
        cross-run cache hits).
        """
        self.assume_window(frame)
        target = self.commitment_diff_lit(regs, frame)
        if target == 0:
            return None
        return self.context.export_obligation(
            name=f"upec[{self.soc.config.name}]@t{frame}",
            assumptions=[target],
            conflict_limit=conflict_limit,
            wall_budget=wall_budget,
            meta={
                "kind": "upec-frame",
                "design": self.soc.config.name,
                "scenario": self.scenario.describe(),
                "frame": frame,
                "commitment": [reg.name for reg in regs],
            },
            slice=slice,
            frame=frame,
        )

    def frame_split_obligations(
        self,
        regs: Sequence[Reg],
        frame: int,
        conflict_limit: Optional[int] = None,
        slice: Optional[bool] = None,
        wall_budget: Optional[float] = None,
    ):
        """Export the frame's commitment check as independent
        per-register(-group) obligations (see :mod:`repro.engine.split`).

        Returns a :class:`~repro.engine.split.FrameSplit` — the frame is
        UNSAT iff every obligation in it is UNSAT — or None when
        structural hashing already folded every pair to equality.

        The canonical *unsplit* obligation is exported first, which (a)
        emits the full commitment-OR cone into the shared CNF exactly as
        an unsplit run would, so the ``split=`` setting never perturbs
        any other obligation's canonical slice or cache fingerprint, and
        (b) rides along on the result so an alerting frame's model and
        witness come from the very obligation an unsplit run solves.
        The split obligations themselves add no gates: each register
        group's already-mapped diff literals become one appended
        disjunctive root clause.  Registers whose definition cones
        overlap near-identically share a group.
        """
        from repro.engine.split import FrameSplit, cone_vars, group_cones

        full = self.frame_obligation(regs, frame, conflict_limit,
                                     slice=slice, wall_budget=wall_budget)
        if full is None:
            return None
        context = self.context
        target = self.commitment_diff_lit(regs, frame)
        #: (diff literal, register names) in commitment order; distinct
        #: registers that hash to the same diff literal share an entry so
        #: no disjunct is duplicated.
        members: List[Tuple[int, List[str]]] = []
        by_lit: Dict[int, int] = {}
        if target != 1:
            for reg in regs:
                lit = self.pair_diff_lit(reg, frame)
                if lit == 0:
                    continue
                if lit in by_lit:
                    members[by_lit[lit]][1].append(reg.name)
                else:
                    by_lit[lit] = len(members)
                    members.append((lit, [reg.name]))
        if target == 1 or len(members) < 2:
            # Constant-true target, or a single distinct diff literal:
            # splitting buys nothing — solve the unsplit obligation.
            return FrameSplit(
                obligations=[full],
                groups=[[reg.name for reg in regs]],
                full_obligation=full,
                full=True,
            )
        log = context.solver
        cones = [
            cone_vars(abs(context.mapper.assumption(lit)),
                      log.definitions, log.clauses)
            for lit, _ in members
        ]
        groups = group_cones(cones)
        obligations = []
        group_names: List[List[str]] = []
        for index, group in enumerate(groups):
            names = [name for i in group for name in members[i][1]]
            obligations.append(context.export_obligation(
                name=f"upec[{self.soc.config.name}]@t{frame}#g{index}",
                assumptions=[members[i][0] for i in group],
                disjunction=True,
                conflict_limit=conflict_limit,
                wall_budget=wall_budget,
                meta={
                    "kind": "upec-frame-split",
                    "design": self.soc.config.name,
                    "scenario": self.scenario.describe(),
                    "frame": frame,
                    "commitment": [reg.name for reg in regs],
                    "group": names,
                    "group_index": index,
                    "groups": len(groups),
                },
                slice=slice,
                frame=frame,
            ))
            group_names.append(names)
        context.bump_stat("split_frames")
        context.bump_stat("split_registers", len(members))
        context.bump_stat("split_obligations", len(obligations))
        context.bump_stat("split_groups_fused",
                          len(members) - len(obligations))
        return FrameSplit(obligations=obligations, groups=group_names,
                          full_obligation=full)

    # ------------------------------------------------------------------
    # Witness extraction
    # ------------------------------------------------------------------
    def pair_values(self, reg: Reg, frame: int) -> Tuple[int, int]:
        """Model values of a register pair (after a SAT result)."""
        v1 = self.context.word_value(self.u1.reg_bits(reg, frame))
        v2 = self.context.word_value(self.u2.reg_bits(reg, frame))
        return v1, v2

    def differing_regs(
        self, frame: int, regs: Optional[Sequence[Reg]] = None
    ) -> List[Tuple[Reg, int, int]]:
        """Registers whose two instances differ in the current model."""
        result = []
        for reg in regs if regs is not None else self.soc.circuit.regs.values():
            v1, v2 = self.pair_values(reg, frame)
            if v1 != v2:
                result.append((reg, v1, v2))
        return result

    def witness_frames(self, up_to: int) -> List[Dict[str, Tuple[int, int]]]:
        """Both instances' register values for frames 0..up_to."""
        frames = []
        for t in range(up_to + 1):
            frames.append({
                reg.name: self.pair_values(reg, t)
                for reg in self.soc.circuit.regs.values()
            })
        return frames

    # ------------------------------------------------------------------
    def default_commitment(self) -> List[Reg]:
        """The initial proof obligation: all microarchitectural state
        variables (memory excluded; cache data excluded when black-boxed)."""
        commitment = list(self.soc.micro_regs())
        if self.scenario.blackbox_cache_data:
            cache_data = set(self.soc.cache_data_regs())
            commitment = [r for r in commitment if r not in cache_data]
        return commitment

    def stats(self) -> Dict[str, int]:
        return self.context.stats()
