"""The UPEC methodology loop (Fig. 5 of the paper).

Starting from the full microarchitectural commitment, the loop checks the
UPEC property; every P-alert is recorded, its differing registers are
removed from the commitment (the paper's "remove corresponding state bits
from commitment"), and the check repeats.  The process terminates with

* an **L-alert** — the design is proven insecure (a covert channel exists),
* **no more alerts** — the design is secure within the bounded window; the
  recorded P-alerts are then the obligations for the inductive proofs of
  :mod:`repro.core.closure`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.alerts import Alert
from repro.core.model import UpecModel, UpecScenario
from repro.core.upec import ALERT, INCONCLUSIVE, UpecChecker
from repro.hdl.expr import Reg
from repro.soc.soc import Soc

SECURE_BOUNDED = "secure_bounded"
INSECURE = "insecure"
UNDECIDED = "undecided"


@dataclass
class MethodologyResult:
    """Outcome of the iterative Fig.-5 analysis."""

    verdict: str                       # secure_bounded | insecure | undecided
    k: int
    p_alerts: List[Alert] = field(default_factory=list)
    l_alert: Optional[Alert] = None
    iterations: int = 0
    runtime_s: float = 0.0
    removed_regs: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    #: Why an UNDECIDED run stopped (conflict limit, wall-budget
    #: timeout, poisoned obligation, iteration cap) — empty otherwise.
    reason: str = ""

    @property
    def p_alert_reg_names(self) -> List[str]:
        names: List[str] = []
        for alert in self.p_alerts:
            for name in alert.diff_reg_names():
                if name not in names:
                    names.append(name)
        return names

    def describe(self) -> str:
        lines = [
            f"verdict: {self.verdict} (k={self.k}, "
            f"{self.iterations} iterations, {self.runtime_s:.2f}s)"
            + (f" — {self.reason}" if self.reason else ""),
            f"P-alerts: {len(self.p_alerts)} "
            f"({len(self.p_alert_reg_names)} registers)",
        ]
        for alert in self.p_alerts:
            lines.append("  " + alert.describe())
        if self.l_alert is not None:
            lines.append("L-alert: " + self.l_alert.describe())
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "verdict": self.verdict,
            "k": self.k,
            "p_alerts": [alert.to_dict() for alert in self.p_alerts],
            "l_alert": self.l_alert.to_dict() if self.l_alert is not None
            else None,
            "iterations": self.iterations,
            "runtime_s": self.runtime_s,
            "removed_regs": list(self.removed_regs),
            "stats": dict(self.stats),
            "reason": self.reason,
        }


class UpecMethodology:
    """Run the iterative UPEC flow on one SoC and scenario.

    ``engine`` (or the ``jobs``/``cache_dir`` shorthands, or the
    ``REPRO_ENGINE_JOBS``/``REPRO_ENGINE_CACHE`` environment defaults)
    routes every property check through the obligation scheduler of
    :mod:`repro.engine`: frames solve on a worker pool and verdicts are
    re-used from the persistent proof cache across runs.
    """

    def __init__(
        self,
        soc: Soc,
        scenario: UpecScenario,
        conflict_limit: Optional[int] = None,
        simplify: bool = True,
        engine=None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        slice: Optional[bool] = None,
        split: Optional[bool] = None,
        wall_budget: Optional[float] = None,
    ) -> None:
        self.soc = soc
        self.scenario = scenario
        self.conflict_limit = conflict_limit
        #: Per-obligation wall-clock budget in seconds (None = none):
        #: a frame that exhausts it yields a distinguishable "timeout"
        #: verdict instead of an open-ended solve.
        self.wall_budget = wall_budget
        self.simplify = simplify
        self.slice = slice
        self.split = split
        from repro.engine.pool import ProofEngine, resolve_engine

        if engine is None and (jobs is not None or cache_dir is not None):
            engine = ProofEngine(jobs=jobs, cache_dir=cache_dir)
        self.engine = resolve_engine(engine)

    def _stats(self, model: UpecModel) -> Dict[str, int]:
        stats = dict(model.stats())
        if self.engine is not None:
            # Relative to the run's start, so a shared engine (the
            # environment-default singleton, a sweep's engine) reports
            # this run's work rather than its lifetime totals.
            stats.update(self.engine.stats(since=self._engine_since))
        return stats

    def run(self, k: int, max_iterations: int = 64) -> MethodologyResult:
        start = time.perf_counter()
        self._engine_since = self.engine.stats() if self.engine is not None \
            else None
        model = UpecModel(self.soc, self.scenario, simplify=self.simplify)
        # Pass the resolved engine down verbatim: a methodology that
        # resolved to the legacy path must not let the checker re-consult
        # the environment defaults.
        from repro.engine.pool import INLINE

        checker = UpecChecker(
            model, engine=self.engine if self.engine is not None else INLINE,
            slice=self.slice, split=self.split,
        )
        commitment: List[Reg] = model.default_commitment()
        p_alerts: List[Alert] = []
        removed: List[str] = []
        iterations = 0
        # Frames proved equal for a commitment stay equal for any subset of
        # it, so after a P-alert at frame f the re-check resumes at f.
        start_frame = 1
        while iterations < max_iterations:
            iterations += 1
            result = checker.check(
                k, commitment=commitment, start_frame=start_frame,
                conflict_limit=self.conflict_limit,
                wall_budget=self.wall_budget,
            )
            if result.status == INCONCLUSIVE:
                return MethodologyResult(
                    verdict=UNDECIDED, k=k, p_alerts=p_alerts,
                    iterations=iterations,
                    runtime_s=time.perf_counter() - start,
                    removed_regs=removed, stats=self._stats(model),
                    reason=result.reason or "conflict limit",
                )
            if result.status != ALERT:
                return MethodologyResult(
                    verdict=SECURE_BOUNDED, k=k, p_alerts=p_alerts,
                    iterations=iterations,
                    runtime_s=time.perf_counter() - start,
                    removed_regs=removed, stats=self._stats(model),
                )
            alert = result.alert
            if alert.is_l_alert:
                return MethodologyResult(
                    verdict=INSECURE, k=k, p_alerts=p_alerts, l_alert=alert,
                    iterations=iterations,
                    runtime_s=time.perf_counter() - start,
                    removed_regs=removed, stats=self._stats(model),
                )
            # P-alert: record it and drop the affected registers from the
            # commitment (the proof assumption keeps the full state).
            p_alerts.append(alert)
            alert_regs = {reg for reg, _, _ in alert.diffs}
            commitment = [r for r in commitment if r not in alert_regs]
            removed.extend(sorted(r.name for r in alert_regs))
            start_frame = alert.frame
        return MethodologyResult(
            verdict=UNDECIDED, k=k, p_alerts=p_alerts,
            iterations=iterations, runtime_s=time.perf_counter() - start,
            removed_regs=removed, stats=self._stats(model),
            reason="iteration cap reached",
        )
