"""Inductive diff-closure proofs (Sec. VI, "the alternative is to take the
P-alerts as starting point for proving security by an inductive proof").

A P-alert shows that secret data reached some program-invisible register.
To prove it harmless for *unbounded* time, the designer supplies a
**conditional-equality invariant**: a set of registers that are allowed to
differ between the two SoC instances, each with an optional *blocking
condition* under which the difference is guaranteed not to propagate
(``None`` = may differ unconditionally).

The 1-step induction then checks, on the UPEC miter:

* base case — by construction, the differences at t are within the
  invariant (the model's difference seed *is* the invariant's domain);
* step case — assuming the invariant (plus the Fig.-4 constraints) at t,
  after one clock cycle **every** register outside the invariant's domain
  is pairwise equal, every register inside it satisfies its condition
  again, and non-protected memory stays equal.

If the step case holds, differences can never escape the allowed set; as
the set contains no architectural register, program execution is unique
(Def. 4) for all time — this turns the bounded methodology verdict into a
full security proof, and automates what the paper reports as manual
induction-proof effort in Tab. I.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import UpecError
from repro.core.alerts import Alert
from repro.core.model import UpecModel, UpecScenario
from repro.hdl.expr import Expr, Reg
from repro.soc.soc import Soc


@dataclass
class CondEq:
    """One invariant entry: ``reg`` may differ only while ``cond`` holds
    (evaluated in both instances); ``cond=None`` = unconditional."""

    reg: Reg
    cond: Optional[Expr] = None
    note: str = ""


@dataclass
class ClosureObligation:
    """One proof obligation of the induction step."""

    name: str
    holds: bool
    counterexample: Optional[List[Tuple[Reg, int, int]]] = None

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "holds": self.holds,
            "counterexample": None if self.counterexample is None else [
                {"reg": reg.name, "v1": v1, "v2": v2}
                for reg, v1, v2 in self.counterexample
            ],
        }


@dataclass
class ClosureResult:
    """Outcome of the inductive diff-closure proof."""

    holds: bool
    obligations: List[ClosureObligation] = field(default_factory=list)
    runtime_s: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    def failed(self) -> List[ClosureObligation]:
        return [ob for ob in self.obligations if not ob.holds]

    def to_dict(self) -> Dict:
        return {
            "holds": self.holds,
            "obligations": [ob.to_dict() for ob in self.obligations],
            "runtime_s": self.runtime_s,
            "stats": dict(self.stats),
        }

    def describe(self) -> str:
        status = "INDUCTIVE (secure for unbounded time)" if self.holds \
            else "NOT inductive"
        lines = [f"closure proof: {status} "
                 f"({len(self.obligations)} obligations, {self.runtime_s:.2f}s)"]
        for ob in self.failed():
            lines.append(f"  failed: {ob.name}")
        return "\n".join(lines)


class InductiveDiffProof:
    """Check that a conditional-equality invariant is 1-step inductive."""

    def __init__(
        self,
        soc: Soc,
        scenario: UpecScenario,
        invariant: Sequence[CondEq],
        simplify: bool = True,
        engine=None,
        slice: Optional[bool] = None,
        split: Optional[bool] = None,
    ) -> None:
        self.soc = soc
        self.scenario = scenario
        self.simplify = simplify
        self.slice = slice
        # Accepted for uniformity with the UPEC stack; a no-op here — the
        # step case already is one obligation per register, the exact
        # shape REPRO_ENGINE_SPLIT asks for.
        self.split = split
        from repro.engine.pool import resolve_engine

        self.engine = resolve_engine(engine)
        self.invariant = list(invariant)
        domain = {entry.reg for entry in self.invariant}
        for entry in self.invariant:
            if entry.reg.arch:
                raise UpecError(
                    f"invariant register {entry.reg.name!r} is architectural "
                    "— an L-alert cannot be deemed secure"
                )
        # The secret memory word may always differ; it is part of the model
        # seed independent of the invariant.
        self._domain = domain

    def covers_alert(self, alert: Alert) -> bool:
        """Base-case check for a methodology P-alert: all differing
        registers lie inside the invariant's domain (or are the secret's
        own storage)."""
        allowed = {r.name for r in self._domain}
        allowed.add(self.soc.secret_mem_reg.name)
        allowed.add(self.soc.secret_cache_data_reg.name)
        return all(reg.name in allowed for reg, _, _ in alert.diffs)

    def check_step(
        self, conflict_limit: Optional[int] = None
    ) -> ClosureResult:
        """Prove the induction step by SAT (one obligation per register).

        The per-register obligations are mutually independent; with an
        engine they are exported as proof obligations and solved on the
        worker pool (and served from the proof cache on re-runs).
        """
        start = time.perf_counter()
        engine_since = self.engine.stats() if self.engine is not None \
            else None
        soc = self.soc
        cond_eq: Dict[Reg, Optional[Expr]] = {
            entry.reg: entry.cond for entry in self.invariant
        }
        model = UpecModel(soc, self.scenario, cond_eq=cond_eq,
                          simplify=self.simplify)
        model.assume_window(1)
        context = model.context
        aig = context.aig
        engine = self.engine
        #: (name, target literal, exported obligation or None) per check,
        #: in legacy solve order.
        tasks: List[Tuple[str, int, Optional[object]]] = []

        def add_task(name: str, target: int) -> None:
            exported = None
            if engine is not None and target != 0:
                exported = context.export_obligation(
                    name=f"closure[{soc.config.name}] {name}",
                    assumptions=[target], conflict_limit=conflict_limit,
                    meta={
                        "kind": "closure-step",
                        "design": soc.config.name,
                        "scenario": self.scenario.describe(),
                        "obligation": name,
                        "invariant": [e.reg.name for e in self.invariant],
                    },
                    slice=self.slice,
                )
            tasks.append((name, target, exported))

        secret_regs = {soc.secret_mem_reg}
        if self.scenario.secret_in_cache:
            # dc_data[secret line] is in the model seed only when the
            # scenario caches the secret; otherwise it must stay equal like
            # any other register (unless the invariant allows it).
            secret_regs.add(soc.secret_cache_data_reg)

        for reg in soc.circuit.regs.values():
            if reg in secret_regs:
                continue
            if reg in cond_eq and cond_eq[reg] is None:
                continue  # unconditional difference: nothing to prove
            diff1 = model.pair_diff_lit(reg, 1)
            if reg in cond_eq:
                cond = cond_eq[reg]
                cond_both = aig.and_(
                    model.u1.expr_lit(cond, 1), model.u2.expr_lit(cond, 1)
                )
                add_task(f"{reg.name} differs outside its blocking "
                         f"condition", aig.and_(diff1, cond_both ^ 1))
            else:
                add_task(f"{reg.name} must stay equal", diff1)

        # Assumption re-establishment: the invariant's side conditions
        # (protection configuration, no ongoing protected refill) must
        # themselves be inductive, otherwise composing the step cases over
        # time would be unsound.  Constraint 3 (secure system software) is
        # a software assumption held at every cycle by construction, and
        # the monitor ranges are re-assumed per cycle as in Fig. 4.
        for name, expr in (
            ("secret_data_protected", soc.secret_data_protected()),
            ("no_ongoing_protected_access", soc.no_ongoing_protected_access()),
        ):
            for unroller, tag in ((model.u1, "i1"), (model.u2, "i2")):
                violated = unroller.expr_lit(expr, 1) ^ 1
                add_task(f"{name} re-established at t+1 ({tag})", violated)

        obligations = (
            self._solve_tasks_engine(model, tasks)
            if engine is not None
            else self._solve_tasks_inline(model, tasks, conflict_limit)
        )
        holds = all(ob.holds for ob in obligations)
        stats = dict(model.stats())
        if engine is not None:
            stats.update(engine.stats(since=engine_since))
        return ClosureResult(
            holds=holds, obligations=obligations,
            runtime_s=time.perf_counter() - start, stats=stats,
        )

    def _solve_tasks_inline(
        self,
        model: UpecModel,
        tasks: Sequence[Tuple[str, int, Optional[object]]],
        conflict_limit: Optional[int],
    ) -> List[ClosureObligation]:
        """Sequential solving on the model's incremental solver."""
        context = model.context
        obligations: List[ClosureObligation] = []
        for name, target, _ in tasks:
            if target == 0:
                # Structurally impossible difference — no SAT call needed.
                obligations.append(ClosureObligation(name=name, holds=True))
                continue
            outcome = context.solve(
                assumptions=[target], conflict_limit=conflict_limit
            )
            if outcome is None:
                obligations.append(ClosureObligation(
                    name=name, holds=False, counterexample=None))
            elif outcome:
                cex = model.differing_regs(1)
                obligations.append(ClosureObligation(
                    name=name, holds=False, counterexample=cex))
            else:
                obligations.append(ClosureObligation(name=name, holds=True))
        return obligations

    def _solve_tasks_engine(
        self,
        model: UpecModel,
        tasks: Sequence[Tuple[str, int, Optional[object]]],
    ) -> List[ClosureObligation]:
        """Batch the per-register obligations onto the engine's pool."""
        pending = [exported for _, target, exported in tasks
                   if target != 0]
        verdicts = iter(self.engine.solve_ordered(pending))
        obligations: List[ClosureObligation] = []
        for name, target, exported in tasks:
            if target == 0:
                obligations.append(ClosureObligation(name=name, holds=True))
                continue
            verdict = next(verdicts)
            if verdict.unsat:
                obligations.append(ClosureObligation(name=name, holds=True))
            elif verdict.sat:
                model.context.adopt_verdict(exported, verdict)
                cex = model.differing_regs(1)
                obligations.append(ClosureObligation(
                    name=name, holds=False, counterexample=cex))
            else:
                obligations.append(ClosureObligation(
                    name=name, holds=False, counterexample=None))
        return obligations
