"""Meltdown-style attack (Fig. 1 / Sec. VII-B) on the simulator.

The squashed dependent load of the Fig.-2 sequence leaves a cache
*footprint* when refills are not cancelled on exceptions: the line indexed
by the secret value is filled with the secret value's tag.  The attacker
then probes candidate addresses and times each load — the single fast
(hit) probe equals the secret's effective address.

Each probe candidate gets a fresh run (boot re-primes the secret line), so
probe misses cannot pollute one another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.soc import Soc, SocSim
from repro.soc.programs import build_image, meltdown_sequence
from repro.attacks.timing import TimingSeries

#: Prime region tag-distinct from typical probe targets (see demo configs).
DEFAULT_PRIME_BASE = 16


@dataclass
class MeltdownResult:
    series: TimingSeries
    recovered_value: Optional[int]
    true_value: int
    skipped: List[int]

    @property
    def success(self) -> bool:
        return self.recovered_value == self.true_value


def measure_probe(soc: Soc, secret: int, probe_addr: int,
                  prime_base: int = DEFAULT_PRIME_BASE) -> int:
    """One full attack run probing a single candidate address."""
    config = soc.config
    image = build_image(
        config, meltdown_sequence(config, probe_addr, prime_base)
    )
    memory = [0] * config.dmem_words
    memory[soc.secret_eff_addr] = secret & 0xFF
    sim = SocSim(soc, image.words, memory=memory, fast=True)
    sim.run_until_halt(image.halt_pc, max_cycles=8000)
    return (sim.reg(7) - sim.reg(6)) & 0xFF


def run_meltdown_attack(
    soc: Soc,
    secret: int,
    prime_base: int = DEFAULT_PRIME_BASE,
) -> MeltdownResult:
    """Probe every candidate effective address.

    Addresses inside the protected region are skipped (probing them traps);
    addresses inside the prime region would hit trivially and are skipped
    as well.  The attacker learns the secret's effective address — i.e.
    ``log2(dmem_words)`` bits of the secret.
    """
    config = soc.config
    skipped: List[int] = []
    guesses: List[int] = []
    cycles: List[int] = []
    for candidate in range(config.dmem_words):
        if candidate == soc.secret_eff_addr:
            skipped.append(candidate)   # probing the protected word traps
            continue
        if prime_base <= candidate < prime_base + config.cache_lines:
            skipped.append(candidate)   # primed: would hit trivially
            continue
        guesses.append(candidate)
        cycles.append(measure_probe(soc, secret, candidate, prime_base))
    series = TimingSeries(
        label=f"meltdown@{config.name}", guesses=guesses, cycles=cycles
    )
    recovered = series.outlier()
    return MeltdownResult(
        series=series,
        recovered_value=recovered,
        true_value=secret & (config.dmem_words - 1),
        skipped=skipped,
    )


def cache_footprint_difference(
    soc: Soc, secret_a: int, secret_b: int
) -> List[int]:
    """Fig.-1 experiment: run the identical illegal-access sequence with
    two different secrets; return the cache lines whose *footprint*
    (valid bit and tag — the program-observable metadata) differs.

    On a vulnerable design the squashed load's refill leaves a
    secret-dependent footprint; on the secure design the list is empty.
    """
    snapshots = {}
    config = soc.config
    for name, secret in (("secret_a", secret_a), ("secret_b", secret_b)):
        image = build_image(config, meltdown_sequence(
            config, probe_addr=0, prime_base=DEFAULT_PRIME_BASE))
        memory = [0] * config.dmem_words
        memory[soc.secret_eff_addr] = secret & 0xFF
        sim = SocSim(soc, image.words, memory=memory, fast=True)
        sim.run_until_halt(image.halt_pc, max_cycles=8000)
        snapshots[name] = sim.cache_snapshot()
    differing = []
    for i, (a, b) in enumerate(zip(snapshots["secret_a"], snapshots["secret_b"])):
        if (a["valid"], a["tag"]) != (b["valid"], b["tag"]):
            differing.append(i)
    return differing
