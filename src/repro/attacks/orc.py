"""The Orc attack (Sec. III of the paper), end to end on the simulator.

One attack iteration runs the instruction sequence of Fig. 2 for a guess
``g`` and measures the executed cycle count between the two ``csrr cycle``
bracketing instructions.  On the Orc-vulnerable design, trap entry after
the squashed dependent load is serialized behind the RAW-hazard drain
exactly when the secret's cache-line index equals the guessed line — the
one guess with deviant timing reveals ``log2(cache_lines)`` bits of the
secret.  On the secure design the timing is flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError
from repro.soc import Soc, SocSim
from repro.soc.programs import build_image, orc_sequence
from repro.attacks.timing import TimingSeries


@dataclass
class OrcResult:
    """Outcome of a full Orc attack loop."""

    series: TimingSeries
    recovered_index: Optional[int]
    true_index: int
    excluded_guess: int

    @property
    def success(self) -> bool:
        return self.recovered_index == self.true_index


def measure_orc_iteration(soc: Soc, secret: int, guess: int) -> int:
    """Run one Fig.-2 iteration; returns the measured cycle delta
    (x7 - x6, i.e. the attacker's own timing measurement)."""
    config = soc.config
    image = build_image(config, orc_sequence(config, guess))
    memory = [0] * config.dmem_words
    memory[soc.secret_eff_addr] = secret & 0xFF
    sim = SocSim(soc, image.words, memory=memory, fast=True)
    sim.run_until_halt(image.halt_pc, max_cycles=5000)
    t0 = sim.reg(3)
    t1 = sim.reg(7)
    return (t1 - t0) & 0xFF


def run_orc_attack(soc: Soc, secret: int) -> OrcResult:
    """Iterate all guesses (the paper's loop over ``#test_value``).

    The guess equal to the protected address's own line index is excluded:
    priming that line evicts the cached secret, a structural constraint the
    paper notes ("the only requirement is that protected_addr and
    accessible_addr reside in the cache").
    """
    config = soc.config
    excluded = soc.secret_line_index
    guesses: List[int] = [
        g for g in range(config.cache_lines) if g != excluded
    ]
    cycles = [measure_orc_iteration(soc, secret, g) for g in guesses]
    series = TimingSeries(
        label=f"orc@{soc.config.name}", guesses=guesses, cycles=cycles
    )
    recovered = series.outlier()
    return OrcResult(
        series=series,
        recovered_index=recovered,
        true_index=config.line_index(secret),
        excluded_guess=excluded,
    )


def recover_secret_index_bits(soc: Soc, secret: int) -> Optional[int]:
    """Convenience wrapper: the low ``log2(cache_lines)`` bits of the
    secret, or None if the design leaks nothing."""
    result = run_orc_attack(soc, secret)
    return result.recovered_index
