"""Covert-channel attack demonstrations on the simulated SoC."""

from repro.attacks.meltdown import (
    MeltdownResult,
    cache_footprint_difference,
    measure_probe,
    run_meltdown_attack,
)
from repro.attacks.orc import (
    OrcResult,
    measure_orc_iteration,
    recover_secret_index_bits,
    run_orc_attack,
)
from repro.attacks.timing import TimingSeries

__all__ = [
    "MeltdownResult",
    "OrcResult",
    "TimingSeries",
    "cache_footprint_difference",
    "measure_orc_iteration",
    "measure_probe",
    "recover_secret_index_bits",
    "run_meltdown_attack",
    "run_orc_attack",
]
