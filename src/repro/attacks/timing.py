"""Timing measurement utilities for the covert-channel attack demos."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class TimingSeries:
    """Per-guess timing measurements of an attack loop."""

    label: str
    guesses: List[int]
    cycles: List[int]

    def outlier(self, exclude: Sequence[int] = ()) -> Optional[int]:
        """The guess whose timing deviates from the common mode.

        Returns None when the series is flat (no covert channel).
        """
        candidates = [
            (g, t) for g, t in zip(self.guesses, self.cycles)
            if g not in exclude
        ]
        if not candidates:
            return None
        times = [t for _, t in candidates]
        baseline = _mode(times)
        deviants = [(g, t) for g, t in candidates if t != baseline]
        if len(deviants) != 1:
            return None
        return deviants[0][0]

    def spread(self) -> int:
        """max - min measured cycles (0 == perfectly flat timing)."""
        return max(self.cycles) - min(self.cycles)

    def as_rows(self) -> List[Dict[str, int]]:
        return [
            {"guess": g, "cycles": t}
            for g, t in zip(self.guesses, self.cycles)
        ]

    def render(self) -> str:
        lines = [f"{self.label}: guess -> cycles"]
        baseline = _mode(self.cycles)
        for g, t in zip(self.guesses, self.cycles):
            marker = "  <-- deviates" if t != baseline else ""
            lines.append(f"  {g:3d} -> {t}{marker}")
        return "\n".join(lines)


def _mode(values: Sequence[int]) -> int:
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return max(counts, key=counts.get)
