"""Distributed proof service: network-sharded obligation solving.

Three processes cooperate (all speaking the length-prefixed
msgpack/JSON protocol of :mod:`repro.dist.protocol`, behind a versioned
handshake):

* the **broker** (:class:`repro.dist.broker.Broker`, ``repro serve``)
  queues sliced :class:`~repro.engine.obligation.ProofObligation`
  batches, tracks worker registration and heartbeats, requeues work
  from dead or stale workers, memoizes verdicts by fingerprint, and
  relays network-wide sibling early-cancel;
* **workers** (:class:`repro.dist.worker.Worker`, ``repro worker``)
  pull obligations and solve them with the exact in-process stack
  (preprocessing included), fronted by a local
  :class:`~repro.engine.cache.ResultCache` kept warm by broker verdict
  gossip;
* **clients** hold a :class:`repro.dist.remote.RemoteEngine` — a
  :class:`~repro.engine.pool.ProofEngine` whose pool ships batches to
  the broker — and pass it as ``engine=`` to ``UpecChecker``,
  ``UpecMethodology``, ``InductiveDiffProof``, ``BmcEngine`` or
  ``ScenarioSweep`` (CLI: ``--connect HOST:PORT``).

Because solving an obligation is a pure function of its bytes,
distributed and local runs produce bit-identical verdict streams; the
broker's fault recovery can change wall-clock, never outcomes.
"""

from repro.dist.broker import Broker
from repro.dist.chaos import ChaosPlan, ChaosProxy
from repro.dist.protocol import (
    PROTO_VERSION,
    Connection,
    ProtocolError,
    obligation_from_wire,
    obligation_to_wire,
    parse_address,
)
from repro.dist.remote import CONNECT_ENV, RemoteEngine, RemotePool, \
    env_connect
from repro.dist.worker import Worker, run_worker

__all__ = [
    "Broker",
    "CONNECT_ENV",
    "ChaosPlan",
    "ChaosProxy",
    "Connection",
    "PROTO_VERSION",
    "ProtocolError",
    "RemoteEngine",
    "RemotePool",
    "Worker",
    "env_connect",
    "obligation_from_wire",
    "obligation_to_wire",
    "parse_address",
    "run_worker",
]
