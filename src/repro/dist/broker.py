"""The proof-service broker: queue, scheduler and fault recovery.

One broker serves two kinds of connections (see
:mod:`repro.dist.protocol` for the wire format):

* **clients** (:class:`repro.dist.remote.RemotePool`) submit batches of
  proof obligations and receive ``verdict`` messages as jobs complete —
  in arbitrary completion order; the client re-orders.  A ``cancel``
  drops the batch's queued jobs (network-wide sibling early-cancel: an
  alert at frame *t* stops workers from ever seeing frames ``> t``).
* **workers** (:mod:`repro.dist.worker`) pull jobs, stream results back
  and heartbeat while solving.

Fault tolerance: every job records the worker it was dispatched to.  A
worker that disconnects, or whose heartbeat goes stale (dead *or* stuck
— from the scheduler's perspective a hung worker is a dead one), is
evicted and its in-flight jobs are requeued for the remaining workers;
a job that has burned ``max_attempts`` workers fails the batch loudly
instead of cycling forever.  Because solving an obligation is a pure
function, a requeued job's verdict is bit-identical no matter which
worker finally produces it — fault recovery cannot change a sweep's
outcome, only its wall-clock.

The broker also memoizes every definite verdict by obligation
fingerprint for the lifetime of the process: resubmitted work (a re-run
sweep, a requeued duplicate) is answered without touching a worker, and
completed verdicts are *gossiped* to workers piggybacked on their next
pull, so each worker's local :class:`repro.engine.cache.ResultCache`
converges toward the union of everything the fleet has proved — a
sweep's warm-cache behaviour survives sharding.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.dist.protocol import (
    PROTO_VERSION,
    Connection,
    ProtocolError,
    pick_codec,
)
from repro.engine.obligation import UNKNOWN

_JobKey = Tuple[str, int]          # (batch_id, seq)

#: Gossip entries piggybacked on one pull reply, at most — a worker
#: joining a long-lived broker pages through the backlog over several
#: pulls instead of receiving one giant frame.
_GOSSIP_PAGE = 512
#: Backlog cap: older gossip entries are dropped (workers that missed
#: them still converge through the broker memo and their own solving).
_GOSSIP_KEEP = 16384


class _Job:
    __slots__ = ("batch_id", "seq", "payload", "fingerprint", "attempts",
                 "worker", "done")

    def __init__(self, batch_id: str, seq: int, payload: Dict[str, Any],
                 fingerprint: str) -> None:
        self.batch_id = batch_id
        self.seq = seq
        self.payload = payload
        self.fingerprint = fingerprint
        self.attempts = 0
        self.worker: Optional[str] = None   # currently assigned worker id
        self.done = False


class _Batch:
    __slots__ = ("batch_id", "conn", "jobs", "cancelled")

    def __init__(self, batch_id: str, conn: Connection) -> None:
        self.batch_id = batch_id
        self.conn = conn
        self.jobs: Dict[int, _Job] = {}
        self.cancelled = False


class _Worker:
    __slots__ = ("worker_id", "name", "conn", "last_seen", "inflight",
                 "gossip_pos", "solved")

    def __init__(self, worker_id: str, name: str, conn: Connection) -> None:
        self.worker_id = worker_id
        self.name = name
        self.conn = conn
        self.last_seen = time.monotonic()
        self.inflight: Set[_JobKey] = set()
        self.gossip_pos = 0
        self.solved = 0


class Broker:
    """Obligation queue + worker registry + result router (threaded)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float = 10.0,
        max_attempts: int = 3,
        handshake_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat_timeout = heartbeat_timeout
        self.max_attempts = max_attempts
        self.handshake_timeout = handshake_timeout
        self._lock = threading.Lock()
        self._queue: deque = deque()                 # ready _Job refs
        self._batches: Dict[str, _Batch] = {}
        self._workers: Dict[str, _Worker] = {}
        self._verdicts: Dict[str, Dict[str, Any]] = {}   # fingerprint memo
        self._gossip: List[Tuple[str, Dict[str, Any]]] = []
        self._gossip_base = 0      # absolute index of _gossip[0]
        self._ids = itertools.count(1)
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "Broker":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        accept = threading.Thread(target=self._accept_loop,
                                  name="broker-accept", daemon=True)
        sweep = threading.Thread(target=self._sweep_loop,
                                 name="broker-sweep", daemon=True)
        self._threads = [accept, sweep]
        accept.start()
        sweep.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            conns = [w.conn for w in self._workers.values()]
            conns += [b.conn for b in self._batches.values()]
        for conn in conns:
            conn.close()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection (status for CLI / tests)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "workers": [
                    {"id": w.worker_id, "name": w.name,
                     "inflight": len(w.inflight), "solved": w.solved}
                    for w in self._workers.values()
                ],
                "queued": sum(1 for job in self._queue if not job.done),
                "batches": len(self._batches),
                "memo": len(self._verdicts),
            }

    # ------------------------------------------------------------------
    # Accept / handshake
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve, args=(sock,),
                name="broker-conn", daemon=True,
            )
            thread.start()

    def _serve(self, sock: socket.socket) -> None:
        # Pre-registration connections are reaped on a deadline: a port
        # scanner or half-dead peer that never sends its hello must not
        # pin this thread (and its fd) forever — heartbeat eviction only
        # covers registered workers.
        sock.settimeout(self.handshake_timeout)
        conn = Connection(sock)
        try:
            hello = conn.recv()
        except (ProtocolError, OSError):
            conn.close()
            return
        if hello is None or hello.get("type") != "hello":
            conn.close()
            return
        if hello.get("proto") != PROTO_VERSION:
            try:
                conn.send({
                    "type": "error",
                    "reason": (f"protocol version mismatch: broker speaks "
                               f"{PROTO_VERSION}, peer sent "
                               f"{hello.get('proto')!r}"),
                })
            except OSError:
                pass
            conn.close()
            return
        role = hello.get("role")
        if role not in ("worker", "client"):
            try:
                conn.send({"type": "error",
                           "reason": f"unknown role {role!r}"})
            except OSError:
                pass
            conn.close()
            return
        conn.codec = pick_codec(hello.get("codecs", ["json"]))
        peer_id = f"{role}-{next(self._ids)}"
        with self._lock:
            workers = len(self._workers)
        try:
            conn.send({
                "type": "welcome",
                "proto": PROTO_VERSION,
                "codec": conn.codec,
                "id": peer_id,
                "workers": workers,
            })
        except OSError:
            conn.close()
            return
        # Registered: liveness is now the heartbeat sweep's job (for
        # workers) or the client's own lifetime — a client may sit idle
        # between batches for arbitrarily long.
        sock.settimeout(None)
        if role == "worker":
            self._serve_worker(conn, peer_id, str(hello.get("name") or ""))
        else:
            self._serve_client(conn, peer_id)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _serve_worker(self, conn: Connection, worker_id: str,
                      name: str) -> None:
        worker = _Worker(worker_id, name or worker_id, conn)
        with self._lock:
            self._workers[worker_id] = worker
        try:
            while not self._stopping.is_set():
                try:
                    message = conn.recv()
                except ProtocolError:
                    break
                if message is None:
                    break
                kind = message.get("type")
                with self._lock:
                    worker.last_seen = time.monotonic()
                if kind == "heartbeat":
                    continue                  # liveness only, no reply
                if kind == "pull":
                    conn.send(self._dispatch(
                        worker,
                        want_gossip=bool(message.get("gossip", True)),
                    ))
                elif kind == "result":
                    self._complete(worker, message)
                    conn.send({"type": "ok"})
                elif kind == "bye":
                    break
                else:
                    conn.send({"type": "error",
                               "reason": f"unexpected {kind!r}"})
        except OSError:
            pass
        finally:
            self._evict_worker(worker_id, "disconnected")

    def _gossip_page(self, worker: _Worker) -> List[Dict[str, Any]]:
        """The worker's next page of the gossip backlog (lock held)."""
        start = max(worker.gossip_pos, self._gossip_base) - self._gossip_base
        page = self._gossip[start:start + _GOSSIP_PAGE]
        worker.gossip_pos = self._gossip_base + start + len(page)
        return [{"fingerprint": fp, "verdict": verdict}
                for fp, verdict in page]

    def _dispatch(self, worker: _Worker,
                  want_gossip: bool = True) -> Dict[str, Any]:
        """Hand the next runnable job (plus pending gossip) to a worker.

        ``want_gossip=False`` (a worker without a local cache, which
        would only discard the payloads) skips the backlog paging."""
        with self._lock:
            if worker.worker_id not in self._workers:
                # The heartbeat sweep evicted this worker while its pull
                # was in flight; assigning now would put the job on an
                # inflight set nobody will ever requeue.  The reply send
                # fails on the closed socket and the handler exits.
                return {"type": "idle", "gossip": []}
            gossip = self._gossip_page(worker) if want_gossip else []
            job: Optional[_Job] = None
            while self._queue:
                candidate = self._queue.popleft()
                batch = self._batches.get(candidate.batch_id)
                if candidate.done or batch is None or batch.cancelled:
                    continue          # cancelled/stale entries just drain
                job = candidate
                break
            if job is None:
                return {"type": "idle", "gossip": gossip}
            job.worker = worker.worker_id
            job.attempts += 1
            worker.inflight.add((job.batch_id, job.seq))
            return {
                "type": "job",
                "batch_id": job.batch_id,
                "seq": job.seq,
                "obligation": job.payload,
                "gossip": gossip,
            }

    def _complete(self, worker: _Worker, message: Dict[str, Any]) -> None:
        batch_id = str(message.get("batch_id"))
        seq = int(message.get("seq", -1))
        verdict = message.get("verdict")
        if not isinstance(verdict, dict):
            return
        deliver_conn: Optional[Connection] = None
        with self._lock:
            worker.inflight.discard((batch_id, seq))
            worker.solved += 1
            fingerprint = str(verdict.get("fingerprint", ""))
            if fingerprint and verdict.get("status") != UNKNOWN \
                    and fingerprint not in self._verdicts:
                self._verdicts[fingerprint] = verdict
                self._gossip.append((fingerprint, verdict))
                overflow = len(self._gossip) - _GOSSIP_KEEP
                if overflow > 0:
                    del self._gossip[:overflow]
                    self._gossip_base += overflow
            batch = self._batches.get(batch_id)
            if batch is None or batch.cancelled:
                return
            job = batch.jobs.get(seq)
            if job is None or job.done:
                return  # late duplicate of a requeued job
            job.done = True
            job.worker = None
            deliver_conn = batch.conn
            if all(j.done for j in batch.jobs.values()):
                # Fully delivered: free the batch's obligation payloads.
                self._batches.pop(batch_id, None)
        if deliver_conn is not None:
            try:
                deliver_conn.send({"type": "verdict", "batch_id": batch_id,
                                   "seq": seq, "verdict": verdict})
            except OSError:
                self._drop_client(batch_id)

    def _evict_worker(self, worker_id: str, reason: str) -> None:
        """Forget a worker and requeue (or fail) its in-flight jobs."""
        failures: List[Tuple[Connection, Dict[str, Any]]] = []
        with self._lock:
            worker = self._workers.pop(worker_id, None)
            if worker is None:
                return
            for batch_id, seq in worker.inflight:
                batch = self._batches.get(batch_id)
                if batch is None or batch.cancelled:
                    continue
                job = batch.jobs.get(seq)
                if job is None or job.done:
                    continue
                job.worker = None
                if job.attempts >= self.max_attempts:
                    job.done = True
                    failures.append((batch.conn, {
                        "type": "failed", "batch_id": batch_id, "seq": seq,
                        "reason": (f"gave up after {job.attempts} workers "
                                   f"(last: {worker.name} {reason})"),
                    }))
                else:
                    # Front of the queue: a requeued job is the oldest
                    # outstanding work and unblocks its batch soonest.
                    self._queue.appendleft(job)
        worker.conn.close()
        for conn, message in failures:
            try:
                conn.send(message)
            except OSError:
                pass

    def _sweep_loop(self) -> None:
        """Evict workers whose heartbeat has gone stale."""
        interval = max(0.05, self.heartbeat_timeout / 4.0)
        while not self._stopping.wait(interval):
            now = time.monotonic()
            with self._lock:
                stale = [
                    w.worker_id for w in self._workers.values()
                    if now - w.last_seen > self.heartbeat_timeout
                ]
            for worker_id in stale:
                self._evict_worker(worker_id, "stale heartbeat")

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _serve_client(self, conn: Connection, client_id: str) -> None:
        owned: Set[str] = set()
        try:
            while not self._stopping.is_set():
                try:
                    message = conn.recv()
                except ProtocolError:
                    break
                if message is None:
                    break
                kind = message.get("type")
                if kind == "submit":
                    batch_id = str(message.get("batch_id"))
                    owned.add(batch_id)
                    try:
                        self._submit(conn, batch_id,
                                     message.get("jobs") or [])
                    except (KeyError, TypeError, ValueError) as exc:
                        # A malformed entry must not silently kill this
                        # handler thread and strand the waiting client.
                        self._drop_client(batch_id)
                        conn.send({"type": "error",
                                   "reason": f"malformed submit: {exc}"})
                elif kind == "cancel":
                    self._cancel(str(message.get("batch_id")))
                    conn.send({"type": "cancelled",
                               "batch_id": message.get("batch_id")})
                elif kind == "status":
                    conn.send({"type": "status", **self.snapshot()})
                elif kind == "bye":
                    break
                else:
                    conn.send({"type": "error",
                               "reason": f"unexpected {kind!r}"})
        except OSError:
            pass
        finally:
            for batch_id in owned:
                self._drop_client(batch_id)
            conn.close()

    def _submit(self, conn: Connection, batch_id: str,
                jobs: List[Dict[str, Any]]) -> None:
        """Queue a batch; fingerprints already memoized answer instantly."""
        instant: List[Dict[str, Any]] = []
        with self._lock:
            batch = _Batch(batch_id, conn)
            self._batches[batch_id] = batch
            for entry in jobs:
                seq = int(entry["seq"])
                fingerprint = str(entry.get("fingerprint", ""))
                job = _Job(batch_id, seq, entry["obligation"], fingerprint)
                batch.jobs[seq] = job
                memo = self._verdicts.get(fingerprint)
                if memo is not None:
                    job.done = True
                    instant.append({"type": "verdict", "batch_id": batch_id,
                                    "seq": seq, "verdict": memo})
                else:
                    self._queue.append(job)
            if batch.jobs and all(j.done for j in batch.jobs.values()):
                self._batches.pop(batch_id, None)  # fully memo-served
        for message in instant:
            try:
                conn.send(message)
            except OSError:
                self._drop_client(batch_id)
                return

    def _cancel(self, batch_id: str) -> None:
        # Dropping the batch frees its obligation payloads immediately;
        # straggler results (a worker mid-solve cannot be interrupted)
        # find no batch, which reads exactly like "cancelled" — their
        # verdicts still land in the memo and the gossip feed.
        with self._lock:
            batch = self._batches.pop(batch_id, None)
            if batch is not None:
                batch.cancelled = True

    def _drop_client(self, batch_id: str) -> None:
        with self._lock:
            batch = self._batches.pop(batch_id, None)
            if batch is not None:
                batch.cancelled = True
