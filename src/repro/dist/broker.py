"""The proof-service broker: a durable asyncio verification service.

One long-lived broker process serves three kinds of peers:

* **clients** (:class:`repro.dist.remote.RemotePool`) speak the framed
  TCP protocol of :mod:`repro.dist.protocol`: they submit batches of
  proof obligations (with an optional per-batch priority) and receive
  ``verdict`` messages as jobs complete — in arbitrary completion
  order; the client re-orders.  A ``cancel`` drops the batch's queued
  jobs (network-wide sibling early-cancel) *and* pushes ``cancel``
  frames to the workers still solving them, so doomed solves hand their
  cores back instead of running to completion.
* **workers** (:mod:`repro.dist.worker`, same TCP protocol) pull jobs,
  stream results back and heartbeat while solving.
* **HTTP clients** (``curl``, dashboards, ``repro submit``) use the
  JSON job API on ``--http-port``: ``POST /jobs`` submits a whole
  methodology/check spec the broker runs against its own worker fleet,
  ``GET /jobs/<id>`` polls status and per-obligation progress,
  ``GET /jobs/<id>/result`` fetches the finished result, and
  ``GET /healthz`` reports service health.  Many concurrent jobs share
  one fleet under FIFO-per-priority fair scheduling (higher ``priority``
  dispatches first; within a priority, submission order).

Everything runs on one asyncio event loop in a background thread; the
public methods (:meth:`Broker.start`, :meth:`Broker.stop`,
:meth:`Broker.snapshot`) are thread-safe.  HTTP job specs execute on a
small thread pool whose engine feeds obligations back into the same
queue the TCP clients use.

**Durability.**  With a ``cache_dir`` the broker persists through the
:class:`repro.engine.cache.ResultCache` directory: every definite
verdict is stored by fingerprint (and looked up there on a memo miss),
submitted TCP batches are journaled under ``_queue/`` and HTTP job
specs under ``_jobs/``.  A broker killed and restarted on the same
directory re-adopts queued obligations (solving them into the memo so a
reconnecting client's resubmission is answered instantly), resumes
unfinished HTTP jobs, and answers every already-proved fingerprint
without touching a worker — a restart changes wall-clock, never
outcomes.

Fault tolerance: every job records the worker it was dispatched to.  A
worker that disconnects, or whose heartbeat goes stale (dead *or* stuck
— from the scheduler's perspective a hung worker is a dead one), is
evicted and its in-flight jobs are requeued for the remaining workers;
a job that has burned ``max_attempts`` workers fails its batch loudly
(and the failed batch is retired like a completed one) instead of
cycling forever.  Because solving an obligation is a pure function, a
requeued job's verdict is bit-identical no matter which worker finally
produces it — fault recovery cannot change a sweep's outcome, only its
wall-clock.

The broker also memoizes every definite verdict by obligation
fingerprint: resubmitted work — and, since the dispatch path consults
the memo too, work *queued* before a duplicate fingerprint completed —
is answered without touching a worker, and completed verdicts are
*gossiped* to workers piggybacked on their next pull, so each worker's
local :class:`repro.engine.cache.ResultCache` converges toward the
union of everything the fleet has proved.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import os
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.dist.protocol import (
    PROTO_VERSION,
    ProtocolError,
    frame_message,
    obligation_to_wire,
    pick_codec,
    read_message,
)
from repro.engine.cache import ResultCache
from repro.engine.obligation import DEFINITE, POISONED, Verdict
from repro.errors import DistError

_JobKey = Tuple[str, int]          # (batch_id, seq)

#: Gossip entries piggybacked on one pull reply, at most — a worker
#: joining a long-lived broker pages through the backlog over several
#: pulls instead of receiving one giant frame.
_GOSSIP_PAGE = 512
#: Backlog cap: older gossip entries are dropped (workers that missed
#: them still converge through the broker memo and their own solving).
_GOSSIP_KEEP = 16384

#: Durable-state subdirectories under the broker's ``cache_dir``
#: (siblings of the fingerprinted verdict files).
_QUEUE_DIRNAME = "_queue"
_JOBS_DIRNAME = "_jobs"

#: Durable quarantine journal (under ``cache_dir``): fingerprints whose
#: assignment killed/crashed enough distinct workers, with the workers'
#: structured failure reports.  Rehydrated on restart so a poisoned
#: obligation stays out of rotation across broker incarnations.
_POISON_NAME = "_poison.json"

#: ``retry_after`` hint (seconds) sent with a backpressure refusal.
_RETRY_AFTER_S = 0.5

#: Largest accepted HTTP request body.
_HTTP_BODY_CAP = 1 << 20

_HTTP_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_JOB_KINDS = ("methodology", "check")
_SCENARIOS = ("cached", "uncached")


class _Job:
    __slots__ = ("batch_id", "seq", "payload", "fingerprint", "attempts",
                 "worker", "done", "priority", "failures")

    def __init__(self, batch_id: str, seq: int, payload: Dict[str, Any],
                 fingerprint: str, priority: int = 0) -> None:
        self.batch_id = batch_id
        self.seq = seq
        self.payload = payload
        self.fingerprint = fingerprint
        self.priority = priority
        self.attempts = 0
        self.worker: Optional[str] = None   # currently assigned worker id
        self.done = False
        #: Structured failure reports accumulated across attempts:
        #: worker deaths while assigned, and explicit crash reports.
        self.failures: List[Dict[str, Any]] = []


class _Batch:
    """One submitted batch: a TCP client's (``conn``), an internal HTTP
    job's (``deliver`` callback), or a recovered orphan's (neither —
    its verdicts only feed the memo)."""

    __slots__ = ("batch_id", "conn", "jobs", "cancelled", "priority",
                 "deliver", "journal")

    def __init__(self, batch_id: str, conn, priority: int = 0,
                 deliver: Optional[Callable[[int, Optional[Dict[str, Any]],
                                             Optional[str]], None]] = None,
                 ) -> None:
        self.batch_id = batch_id
        self.conn = conn
        self.jobs: Dict[int, _Job] = {}
        self.cancelled = False
        self.priority = priority
        self.deliver = deliver
        self.journal: Optional[str] = None   # durable queue journal path


class _Worker:
    __slots__ = ("worker_id", "name", "conn", "last_seen", "inflight",
                 "gossip_pos", "solved")

    def __init__(self, worker_id: str, name: str, conn) -> None:
        self.worker_id = worker_id
        self.name = name
        self.conn = conn
        self.last_seen = time.monotonic()
        self.inflight: Set[_JobKey] = set()
        self.gossip_pos = 0
        self.solved = 0


class _JobQueue:
    """FIFO-per-priority ready queue.

    Higher ``priority`` values dispatch first; within one priority,
    strict submission order (requeued jobs go to the *front* of their
    priority — the oldest outstanding work unblocks its batch soonest).
    Keeps the deque surface (`append`/`appendleft`/`popleft`, iteration,
    truthiness) so scheduler code and tests read like the flat queue it
    replaces.
    """

    def __init__(self) -> None:
        self._levels: Dict[int, deque] = {}

    def _level(self, job: _Job) -> deque:
        level = self._levels.get(job.priority)
        if level is None:
            level = self._levels[job.priority] = deque()
        return level

    def append(self, job: _Job) -> None:
        self._level(job).append(job)

    def appendleft(self, job: _Job) -> None:
        self._level(job).appendleft(job)

    def popleft(self) -> _Job:
        for priority in sorted(self._levels, reverse=True):
            level = self._levels[priority]
            if level:
                return level.popleft()
        raise IndexError("pop from an empty job queue")

    def __bool__(self) -> bool:
        return any(self._levels.values())

    def __len__(self) -> int:
        return sum(len(level) for level in self._levels.values())

    def __iter__(self) -> Iterator[_Job]:
        for priority in sorted(self._levels, reverse=True):
            yield from self._levels[priority]


class _HttpJob:
    """One job-API submission: spec, lifecycle state, progress, result."""

    __slots__ = ("job_id", "spec", "status", "result", "error",
                 "submitted", "completed", "created")

    def __init__(self, job_id: str, spec: Dict[str, Any]) -> None:
        self.job_id = job_id
        self.spec = spec
        self.status = "queued"        # queued | running | done | failed
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.submitted = 0            # obligations handed to the fleet
        self.completed = 0            # obligations answered
        self.created = time.time()

    def state(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.job_id,
            "status": self.status,
            "spec": dict(self.spec),
            "priority": self.spec.get("priority", 0),
            "progress": {
                "obligations_submitted": self.submitted,
                "obligations_completed": self.completed,
            },
        }
        if self.error is not None:
            data["error"] = self.error
        return data


class _AsyncConn:
    """Broker-side framed connection over asyncio streams.

    ``send`` is synchronous: the whole frame goes into the transport
    buffer at once, so verdict deliveries from a worker's handler task
    never interleave with the owning client task's own replies.  The
    owning task awaits :meth:`drain` for backpressure.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.codec = "json"

    def send(self, message: Dict[str, Any]) -> None:
        if self.writer.is_closing():
            raise BrokenPipeError("connection is closing")
        try:
            self.writer.write(frame_message(message, self.codec))
        except (RuntimeError, ConnectionError) as exc:
            raise BrokenPipeError(str(exc)) from exc

    async def drain(self) -> None:
        try:
            await self.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass

    async def recv(self) -> Optional[Dict[str, Any]]:
        return await read_message(self.reader)

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


def _journal_name(batch_id: str) -> str:
    """Filesystem-safe journal filename for an arbitrary batch id."""
    return hashlib.sha256(batch_id.encode()).hexdigest()[:32] + ".json"


def _write_json(path: str, payload: Dict[str, Any]) -> None:
    """Atomic JSON write (same temp-and-replace idiom as ResultCache)."""
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


class Broker:
    """Obligation queue + worker registry + result router + job API."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float = 10.0,
        max_attempts: int = 3,
        handshake_timeout: float = 10.0,
        http_port: Optional[int] = None,
        cache_dir: Optional[str] = None,
        job_runners: int = 2,
        max_queued: Optional[int] = None,
        poison_threshold: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat_timeout = heartbeat_timeout
        self.max_attempts = max_attempts
        self.handshake_timeout = handshake_timeout
        self.http_port = http_port
        self.cache_dir = cache_dir
        self.job_runners = max(1, int(job_runners))
        #: Ready-queue bound: past it, TCP submits get a ``busy``
        #: (retry-after) refusal and HTTP submits a 503.  None = no cap.
        self.max_queued = max_queued
        #: Distinct workers an obligation may kill/crash before it is
        #: quarantined with a ``poisoned`` verdict (default: the
        #: requeue budget ``max_attempts``).
        self.poison_threshold = poison_threshold \
            if poison_threshold is not None else max_attempts
        self._queue = _JobQueue()
        self._batches: Dict[str, _Batch] = {}
        self._workers: Dict[str, _Worker] = {}
        self._verdicts: Dict[str, Dict[str, Any]] = {}   # fingerprint memo
        self._gossip: List[Tuple[str, Dict[str, Any]]] = []
        self._gossip_base = 0      # absolute index of _gossip[0]
        self._ids = itertools.count(1)
        # Peer/batch ids are namespaced per broker *incarnation*: a
        # restarted durable broker must never hand a reconnecting client
        # an id whose recovered journal is still live.
        self._epoch = os.urandom(4).hex()
        self._http_jobs: Dict[str, _HttpJob] = {}
        self._store: Optional[ResultCache] = None
        self._queue_dir = ""
        self._jobs_dir = ""
        #: fingerprint -> quarantine record ({"fingerprint",
        #: "obligation", "failures", "workers"}).
        self._poison: Dict[str, Dict[str, Any]] = {}
        self._poison_path = ""
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._job_pool: Optional[ThreadPoolExecutor] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def durable(self) -> bool:
        return self.cache_dir is not None

    def start(self) -> "Broker":
        if self.cache_dir is not None:
            self._store = ResultCache(self.cache_dir)
            self._queue_dir = os.path.join(self.cache_dir, _QUEUE_DIRNAME)
            self._jobs_dir = os.path.join(self.cache_dir, _JOBS_DIRNAME)
            self._poison_path = os.path.join(self.cache_dir, _POISON_NAME)
            os.makedirs(self._queue_dir, exist_ok=True)
            os.makedirs(self._jobs_dir, exist_ok=True)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: List[BaseException] = []
        self._thread = threading.Thread(
            target=self._loop_main, args=(started, failure),
            name="broker-loop", daemon=True,
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join(timeout=2.0)
            self._loop = None
            self._thread = None
            raise failure[0]
        return self

    def _loop_main(self, started: threading.Event,
                   failure: List[BaseException]) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._startup())
        except BaseException as exc:  # surfaced in start()
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _startup(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._serve_http, self.host, self.http_port)
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        if self._store is not None:
            self._recover()
        asyncio.get_event_loop().create_task(self._sweep_loop())

    def stop(self) -> None:
        self._stopping.set()
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            try:
                loop.call_soon_threadsafe(self._begin_shutdown)
            except RuntimeError:
                pass
            thread.join(timeout=5.0)
        if self._job_pool is not None:
            self._job_pool.shutdown(wait=False)
            self._job_pool = None
        if self._store is not None:
            self._store.flush()
        self._loop = None
        self._thread = None

    def _begin_shutdown(self) -> None:
        """Runs on the loop: close servers and peers, fail internal
        batches so job-runner threads unblock, then stop the loop."""
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
        self._server = None
        self._http_server = None
        for batch in list(self._batches.values()):
            if batch.deliver is not None:
                for job in batch.jobs.values():
                    if not job.done:
                        batch.deliver(job.seq, None, "broker stopped")
        for worker in list(self._workers.values()):
            worker.conn.close()
        for batch in list(self._batches.values()):
            if batch.conn is not None:
                batch.conn.close()
        assert self._loop is not None
        self._loop.stop()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection (status for CLI / HTTP / tests)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Live counters; safe to call from any thread."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return self._snapshot_now()
        future = asyncio.run_coroutine_threadsafe(self._snapshot_on_loop(),
                                                  loop)
        try:
            return future.result(timeout=5.0)
        except Exception:
            return self._snapshot_now()

    async def _snapshot_on_loop(self) -> Dict[str, Any]:
        return self._snapshot_now()

    def _snapshot_now(self) -> Dict[str, Any]:
        jobs = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for job in self._http_jobs.values():
            jobs[job.status] = jobs.get(job.status, 0) + 1
        return {
            "workers": [
                {"id": w.worker_id, "name": w.name,
                 "inflight": len(w.inflight), "solved": w.solved}
                for w in self._workers.values()
            ],
            # Only entries of live, uncancelled batches: stale queue
            # entries of cancelled/dropped batches drain lazily and
            # must not overstate the depth to `repro status`.
            "queued": sum(
                1 for job in self._queue
                if not job.done and self._batch_live(job.batch_id)
            ),
            "batches": len(self._batches),
            "memo": len(self._verdicts),
            "jobs": jobs,
            "durable": self.durable,
            "poisoned": len(self._poison),
            "max_queued": self.max_queued,
        }

    def _queue_depth(self) -> int:
        """Live ready-queue depth (stale entries of cancelled batches
        drain lazily and do not count against the bound)."""
        return sum(1 for job in self._queue
                   if not job.done and self._batch_live(job.batch_id))

    def _at_bound(self) -> bool:
        return self.max_queued is not None \
            and self._queue_depth() >= self.max_queued

    def _batch_live(self, batch_id: str) -> bool:
        batch = self._batches.get(batch_id)
        return batch is not None and not batch.cancelled

    # ------------------------------------------------------------------
    # Accept / handshake (framed TCP protocol)
    # ------------------------------------------------------------------
    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        conn = _AsyncConn(reader, writer)
        try:
            await self._converse(conn)
        except asyncio.CancelledError:
            # Loop teardown cancels handler tasks; exiting cleanly here
            # keeps asyncio.streams from logging the cancellation.
            pass
        finally:
            conn.close()

    async def _converse(self, conn: _AsyncConn) -> None:
        # Pre-registration connections are reaped on a deadline: a port
        # scanner or half-dead peer that never sends its hello must not
        # pin this task (and its fd) forever — heartbeat eviction only
        # covers registered workers.
        try:
            hello = await asyncio.wait_for(conn.recv(),
                                           self.handshake_timeout)
        except (asyncio.TimeoutError, ProtocolError, OSError):
            conn.close()
            return
        if hello is None or hello.get("type") != "hello":
            conn.close()
            return
        if hello.get("proto") != PROTO_VERSION:
            try:
                conn.send({
                    "type": "error",
                    "reason": (f"protocol version mismatch: broker speaks "
                               f"{PROTO_VERSION}, peer sent "
                               f"{hello.get('proto')!r}"),
                })
            except OSError:
                pass
            await conn.drain()
            conn.close()
            return
        role = hello.get("role")
        if role not in ("worker", "client"):
            try:
                conn.send({"type": "error",
                           "reason": f"unknown role {role!r}"})
            except OSError:
                pass
            await conn.drain()
            conn.close()
            return
        conn.codec = pick_codec(hello.get("codecs", ["json"]))
        peer_id = f"{role}-{self._epoch}-{next(self._ids)}"
        try:
            conn.send({
                "type": "welcome",
                "proto": PROTO_VERSION,
                "codec": conn.codec,
                "id": peer_id,
                "workers": len(self._workers),
            })
            await conn.drain()
        except OSError:
            conn.close()
            return
        if role == "worker":
            await self._serve_worker(conn, peer_id,
                                     str(hello.get("name") or ""))
        else:
            await self._serve_client(conn, peer_id)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    async def _serve_worker(self, conn: _AsyncConn, worker_id: str,
                            name: str) -> None:
        worker = _Worker(worker_id, name or worker_id, conn)
        self._workers[worker_id] = worker
        try:
            while not self._stopping.is_set():
                try:
                    message = await conn.recv()
                except (ProtocolError, OSError):
                    break
                if message is None:
                    break
                kind = message.get("type")
                worker.last_seen = time.monotonic()
                if kind == "heartbeat":
                    continue                  # liveness only, no reply
                if kind == "pull":
                    reply = self._dispatch(
                        worker,
                        want_gossip=bool(message.get("gossip", True)),
                    )
                elif kind == "result":
                    self._complete(worker, message)
                    reply = {"type": "ok"}
                elif kind == "bye":
                    break
                else:
                    reply = {"type": "error",
                             "reason": f"unexpected {kind!r}"}
                try:
                    conn.send(reply)
                except OSError:
                    break
                await conn.drain()
        finally:
            self._evict_worker(worker_id, "disconnected")

    def _gossip_page(self, worker: _Worker) -> List[Dict[str, Any]]:
        """The worker's next page of the gossip backlog."""
        start = max(worker.gossip_pos, self._gossip_base) - self._gossip_base
        page = self._gossip[start:start + _GOSSIP_PAGE]
        worker.gossip_pos = self._gossip_base + start + len(page)
        return [{"fingerprint": fp, "verdict": verdict}
                for fp, verdict in page]

    def _dispatch(self, worker: _Worker,
                  want_gossip: bool = True) -> Dict[str, Any]:
        """Hand the next runnable job (plus pending gossip) to a worker.

        ``want_gossip=False`` (a worker without a local cache, which
        would only discard the payloads) skips the backlog paging."""
        if worker.worker_id not in self._workers:
            # The heartbeat sweep evicted this worker while its pull
            # was in flight; assigning now would put the job on an
            # inflight set nobody will ever requeue.  The reply send
            # fails on the closed socket and the handler exits.
            return {"type": "idle", "gossip": []}
        gossip = self._gossip_page(worker) if want_gossip else []
        job: Optional[_Job] = None
        while self._queue:
            candidate = self._queue.popleft()
            batch = self._batches.get(candidate.batch_id)
            if candidate.done or batch is None or batch.cancelled:
                continue          # cancelled/stale entries just drain
            memo = self._lookup_verdict(candidate.fingerprint)
            if memo is not None:
                # The fingerprint was memoized *after* this job was
                # queued (a duplicate obligation across concurrent
                # batches): answer the client straight from the memo
                # instead of burning a worker on a re-solve.
                candidate.done = True
                candidate.worker = None
                self._deliver_verdict(batch, candidate.seq, memo)
                self._retire_if_done(batch)
                continue
            poison = self._poison.get(candidate.fingerprint)
            if poison is not None:
                # Quarantined after this job was queued (a sibling copy
                # burned the worker budget): never hand it to another
                # worker — answer with the structured poisoned verdict.
                candidate.done = True
                candidate.worker = None
                self._deliver_verdict(batch, candidate.seq,
                                      self._poison_verdict(poison))
                self._retire_if_done(batch)
                continue
            job = candidate
            break
        if job is None:
            return {"type": "idle", "gossip": gossip}
        job.worker = worker.worker_id
        job.attempts += 1
        worker.inflight.add((job.batch_id, job.seq))
        return {
            "type": "job",
            "batch_id": job.batch_id,
            "seq": job.seq,
            "obligation": job.payload,
            "gossip": gossip,
        }

    def _memoize(self, verdict: Dict[str, Any]) -> None:
        # Only definite (sat/unsat) verdicts enter the memo: unknown,
        # timeout and poisoned are circumstances of one run, not facts
        # about the formula.
        fingerprint = str(verdict.get("fingerprint", ""))
        if not fingerprint or verdict.get("status") not in DEFINITE \
                or fingerprint in self._verdicts:
            return
        self._verdicts[fingerprint] = verdict
        self._gossip.append((fingerprint, verdict))
        overflow = len(self._gossip) - _GOSSIP_KEEP
        if overflow > 0:
            del self._gossip[:overflow]
            self._gossip_base += overflow
        if self._store is not None:
            try:
                self._store.store_verdict(Verdict.from_dict(verdict))
            except (KeyError, TypeError, ValueError):
                pass

    def _lookup_verdict(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Memoized verdict for a fingerprint: the in-memory memo,
        backed (when durable) by the ResultCache on disk — which is how
        a restarted broker re-adopts everything already proved."""
        if not fingerprint:
            return None
        memo = self._verdicts.get(fingerprint)
        if memo is not None:
            return memo
        if self._store is not None:
            verdict = self._store.lookup_verdict(fingerprint)
            if verdict is not None:
                data = verdict.to_dict()
                self._verdicts[fingerprint] = data
                return data
        return None

    def _complete(self, worker: _Worker, message: Dict[str, Any]) -> None:
        batch_id = str(message.get("batch_id"))
        try:
            seq = int(message.get("seq", -1))
        except (TypeError, ValueError):
            return
        worker.inflight.discard((batch_id, seq))
        failure = message.get("failure")
        verdict = message.get("verdict")
        if isinstance(failure, dict) and not isinstance(verdict, dict):
            # The worker survived but the solve crashed: a structured
            # failure report (exc_type/message/traceback).  Requeue the
            # job unless its failure history crosses the poison line.
            batch = self._batches.get(batch_id)
            if batch is None or batch.cancelled:
                return
            job = batch.jobs.get(seq)
            if job is None or job.done:
                return
            job.worker = None
            if self._record_failure(job, worker, failure=failure) \
                    or job.attempts >= self.max_attempts:
                self._poison_job(batch, job)
            else:
                self._queue.appendleft(job)
            return
        if not isinstance(verdict, dict):
            return
        worker.solved += 1
        self._memoize(verdict)
        batch = self._batches.get(batch_id)
        if batch is None or batch.cancelled:
            return
        job = batch.jobs.get(seq)
        if job is None or job.done:
            return  # late duplicate of a requeued job
        job.done = True
        job.worker = None
        self._deliver_verdict(batch, seq, verdict)
        self._retire_if_done(batch)

    # ------------------------------------------------------------------
    # Poison-obligation quarantine
    # ------------------------------------------------------------------
    def _record_failure(self, job: _Job, worker: _Worker,
                        failure: Optional[Dict[str, Any]] = None,
                        reason: str = "") -> bool:
        """Append one structured failure to a job's history; True when
        the history has crossed the poison threshold (failures from
        ``poison_threshold`` *distinct* workers)."""
        entry: Dict[str, Any] = {
            "worker": worker.name,
            "worker_id": worker.worker_id,
            "exc_type": "WorkerDied",
            "message": reason or "worker died while assigned",
        }
        if isinstance(failure, dict):
            entry["exc_type"] = str(failure.get("exc_type") or "Exception")
            entry["message"] = str(failure.get("message") or "")
            trace = failure.get("traceback")
            if trace:
                entry["traceback"] = str(trace)
        job.failures.append(entry)
        distinct = {f.get("worker_id") for f in job.failures}
        return len(distinct) >= self.poison_threshold

    def _poison_verdict(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """The structured ``poisoned`` verdict of a quarantine record —
        shaped like any other wire verdict, so clients consume it
        through the normal path and checkers surface it as
        inconclusive-with-reason instead of hanging or crashing."""
        return {
            "status": POISONED,
            "obligation": str(record.get("obligation", "")),
            "fingerprint": str(record.get("fingerprint", "")),
            "model": None,
            "nvars": 0,
            "runtime_s": 0.0,
            "stats": {},
            "failures": [dict(f) for f in record.get("failures", ())],
        }

    def _poison_job(self, batch: _Batch, job: _Job) -> None:
        """Pull an obligation from rotation: one pathological formula
        must not consume the fleet.  The batch receives a ``poisoned``
        verdict carrying the workers' failure reports, so the rest of
        the sweep completes and the caller can triage."""
        record = {
            "fingerprint": job.fingerprint,
            "obligation": str((job.payload or {}).get("name", "")
                              or job.fingerprint),
            "failures": [dict(f) for f in job.failures],
            "workers": sorted({str(f.get("worker", ""))
                               for f in job.failures}),
        }
        if job.fingerprint:
            self._poison[job.fingerprint] = record
            self._save_poison()
        job.done = True
        job.worker = None
        self._deliver_verdict(batch, job.seq, self._poison_verdict(record))
        self._retire_if_done(batch)

    def _save_poison(self) -> None:
        if self._poison_path:
            _write_json(self._poison_path,
                        {"poisoned": list(self._poison.values())})

    def _load_poison(self) -> None:
        if not self._poison_path:
            return
        try:
            with open(self._poison_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            records = list(data["poisoned"])
        except (OSError, ValueError, KeyError, TypeError):
            return
        for record in records:
            if not isinstance(record, dict):
                continue
            fingerprint = str(record.get("fingerprint", ""))
            if fingerprint:
                self._poison[fingerprint] = dict(record)

    def _evict_worker(self, worker_id: str, reason: str) -> None:
        """Forget a worker and requeue (or quarantine) its in-flight
        jobs."""
        worker = self._workers.pop(worker_id, None)
        if worker is None:
            return
        for batch_id, seq in worker.inflight:
            batch = self._batches.get(batch_id)
            if batch is None or batch.cancelled:
                continue
            job = batch.jobs.get(seq)
            if job is None or job.done:
                continue
            job.worker = None
            crossed = self._record_failure(
                job, worker,
                reason=f"worker {worker.name} {reason} while assigned")
            if crossed or job.attempts >= self.max_attempts:
                # The assignment has now killed poison_threshold
                # distinct workers (or burned the requeue budget):
                # quarantine instead of cycling through the fleet
                # forever.  Retiring the batch frees its payloads
                # exactly like a completed one.
                self._poison_job(batch, job)
            else:
                # Front of its priority level: a requeued job is the
                # oldest outstanding work and unblocks its batch
                # soonest.
                self._queue.appendleft(job)
        if worker.conn is not None:
            worker.conn.close()

    async def _sweep_loop(self) -> None:
        """Evict workers whose heartbeat has gone stale."""
        interval = max(0.05, self.heartbeat_timeout / 4.0)
        while not self._stopping.is_set():
            await asyncio.sleep(interval)
            now = time.monotonic()
            stale = [
                w.worker_id for w in self._workers.values()
                if now - w.last_seen > self.heartbeat_timeout
            ]
            for worker_id in stale:
                self._evict_worker(worker_id, "stale heartbeat")

    # ------------------------------------------------------------------
    # Delivery / batch retirement (shared by every batch kind)
    # ------------------------------------------------------------------
    def _deliver_verdict(self, batch: _Batch, seq: int,
                         verdict: Dict[str, Any]) -> None:
        if batch.deliver is not None:
            batch.deliver(seq, verdict, None)
        elif batch.conn is not None:
            try:
                batch.conn.send({"type": "verdict",
                                 "batch_id": batch.batch_id,
                                 "seq": seq, "verdict": verdict})
            except OSError:
                self._drop_client(batch.batch_id)

    def _retire_if_done(self, batch: _Batch) -> None:
        """Pop a fully-delivered (or fully-failed) batch, freeing its
        obligation payloads and its durable journal."""
        if batch.jobs and all(job.done for job in batch.jobs.values()):
            self._batches.pop(batch.batch_id, None)
            self._remove_journal(batch)

    # ------------------------------------------------------------------
    # Client side (framed TCP protocol)
    # ------------------------------------------------------------------
    async def _serve_client(self, conn: _AsyncConn, client_id: str) -> None:
        owned: Set[str] = set()
        try:
            while not self._stopping.is_set():
                try:
                    message = await conn.recv()
                except (ProtocolError, OSError):
                    break
                if message is None:
                    break
                kind = message.get("type")
                reply: Optional[Dict[str, Any]] = None
                if kind == "submit":
                    batch_id = str(message.get("batch_id"))
                    jobs = message.get("jobs") or []
                    if self._batch_live(batch_id):
                        live = self._batches.get(batch_id)
                        if live is not None and live.conn is conn \
                                and self._same_jobs(live, jobs):
                            # A retransmitted duplicate of our own live
                            # submit (a duplicated frame in flight):
                            # the first copy is already being served —
                            # ignore this one instead of erroring the
                            # whole run out.
                            reply = None
                        else:
                            # A *different* live batch under the same id
                            # would cross-wire completions between the
                            # two job sets (same-seq verdicts delivered
                            # against the wrong payloads): reject it.
                            reply = {"type": "error",
                                     "reason": (f"duplicate batch_id "
                                                f"{batch_id!r}: a batch "
                                                f"with this id is still "
                                                f"live")}
                    elif self._at_bound():
                        # Backpressure: past --max-queued the broker
                        # refuses instead of buffering without bound;
                        # RemotePool backs off and retries.
                        reply = {
                            "type": "busy",
                            "batch_id": batch_id,
                            "retry_after": _RETRY_AFTER_S,
                            "reason": (f"queue is at its bound "
                                       f"({self._queue_depth()} >= "
                                       f"{self.max_queued} queued)"),
                        }
                    else:
                        owned.add(batch_id)
                        try:
                            self._submit(conn, batch_id, jobs,
                                         priority=int(
                                             message.get("priority", 0)),
                                         )
                        except (KeyError, TypeError, ValueError) as exc:
                            # A malformed entry must not silently kill
                            # this handler task and strand the waiting
                            # client.
                            self._drop_client(batch_id)
                            reply = {"type": "error",
                                     "reason": f"malformed submit: {exc}"}
                elif kind == "cancel":
                    self._cancel(str(message.get("batch_id")))
                    reply = {"type": "cancelled",
                             "batch_id": message.get("batch_id")}
                elif kind == "status":
                    reply = {"type": "status", **self._snapshot_now()}
                elif kind == "bye":
                    break
                else:
                    reply = {"type": "error",
                             "reason": f"unexpected {kind!r}"}
                if reply is not None:
                    try:
                        conn.send(reply)
                    except OSError:
                        break
                await conn.drain()
        finally:
            for batch_id in owned:
                self._drop_client(batch_id)
            conn.close()

    def _same_jobs(self, batch: _Batch, jobs: List[Dict[str, Any]]) -> bool:
        """Whether an incoming submit's job set is identical (same
        (seq, fingerprint) pairs) to a live batch's — the signature of a
        retransmitted duplicate frame, as opposed to an id collision."""
        try:
            incoming = {(int(entry["seq"]),
                         str(entry.get("fingerprint", "")))
                        for entry in jobs}
        except (KeyError, TypeError, ValueError):
            return False
        return incoming == {(job.seq, job.fingerprint)
                            for job in batch.jobs.values()}

    def _submit(self, conn: Optional[_AsyncConn], batch_id: str,
                jobs: List[Dict[str, Any]], priority: int = 0) -> None:
        """Queue a batch; fingerprints already memoized (or quarantined)
        answer instantly."""
        batch = _Batch(batch_id, conn, priority=priority)
        self._batches[batch_id] = batch
        instant: List[Tuple[int, Dict[str, Any]]] = []
        for entry in jobs:
            seq = int(entry["seq"])
            fingerprint = str(entry.get("fingerprint", ""))
            job = _Job(batch_id, seq, entry["obligation"], fingerprint,
                       priority=priority)
            batch.jobs[seq] = job
            memo = self._lookup_verdict(fingerprint)
            poison = self._poison.get(fingerprint) if memo is None else None
            if memo is not None:
                job.done = True
                instant.append((seq, memo))
            elif poison is not None:
                job.done = True
                instant.append((seq, self._poison_verdict(poison)))
            else:
                self._queue.append(job)
        if self._store is not None and \
                any(not job.done for job in batch.jobs.values()):
            self._journal_batch(batch)
        for seq, memo in instant:
            self._deliver_verdict(batch, seq, memo)
        self._retire_if_done(batch)

    def _cancel(self, batch_id: str) -> None:
        # Dropping the batch frees its obligation payloads immediately;
        # workers mid-solve on its jobs get a ``cancel`` push so the
        # CDCL loop abandons the search at its next budget check
        # (cooperative preemption) — straggler results that finish
        # anyway find no batch, which reads exactly like "cancelled",
        # and their verdicts still land in the memo and gossip feed.
        batch = self._batches.pop(batch_id, None)
        if batch is None:
            return
        batch.cancelled = True
        self._remove_journal(batch)
        self._push_cancels(batch)

    def _drop_client(self, batch_id: str) -> None:
        if self._stopping.is_set():
            # Broker shutdown is not client abandonment: a durable
            # broker's journals must survive so the restarted broker
            # re-adopts the batch (dropping here would delete them).
            return
        self._cancel(batch_id)

    def _push_cancels(self, batch: _Batch) -> None:
        for job in batch.jobs.values():
            if job.done or job.worker is None:
                continue
            worker = self._workers.get(job.worker)
            if worker is None:
                continue
            worker.inflight.discard((batch.batch_id, job.seq))
            try:
                worker.conn.send({"type": "cancel",
                                  "batch_id": batch.batch_id,
                                  "seq": job.seq})
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Durable state: journals + recovery
    # ------------------------------------------------------------------
    def _journal_batch(self, batch: _Batch) -> None:
        path = os.path.join(self._queue_dir, _journal_name(batch.batch_id))
        _write_json(path, {
            "batch_id": batch.batch_id,
            "priority": batch.priority,
            "jobs": [
                {"seq": job.seq, "fingerprint": job.fingerprint,
                 "obligation": job.payload}
                for job in batch.jobs.values() if not job.done
            ],
        })
        batch.journal = path

    def _remove_journal(self, batch: _Batch) -> None:
        if batch.journal:
            try:
                os.unlink(batch.journal)
            except OSError:
                pass
            batch.journal = None

    def _recover(self) -> None:
        """Re-adopt durable state from a previous broker incarnation.

        Journaled TCP batches become *orphan* batches (no connection to
        deliver to — their verdicts feed the memo, so a reconnecting
        client's resubmission is answered instantly); unfinished HTTP
        jobs are rescheduled from their persisted specs, with already
        memoized obligations answered from the store.
        """
        self._load_poison()
        for name in sorted(os.listdir(self._queue_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._queue_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                batch_id = "requeued:" + str(data["batch_id"])
                priority = int(data.get("priority", 0))
                entries = list(data["jobs"])
            except (OSError, ValueError, KeyError, TypeError):
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            batch = _Batch(batch_id, None, priority=priority)
            batch.journal = path
            for entry in entries:
                try:
                    seq = int(entry["seq"])
                    fingerprint = str(entry.get("fingerprint", ""))
                    payload = entry["obligation"]
                except (KeyError, TypeError, ValueError):
                    continue
                job = _Job(batch_id, seq, payload, fingerprint,
                           priority=priority)
                if self._lookup_verdict(fingerprint) is not None \
                        or fingerprint in self._poison:
                    # Proved — or quarantined — in a previous life:
                    # either way it must not reach another worker.
                    job.done = True
                batch.jobs[seq] = job
                if not job.done:
                    self._queue.append(job)
            if batch.jobs and any(not job.done
                                  for job in batch.jobs.values()):
                self._batches[batch_id] = batch
            else:
                self._remove_journal(batch)
        for name in sorted(os.listdir(self._jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                job = _HttpJob(str(data["id"]), dict(data["spec"]))
                job.status = str(data.get("status", "queued"))
                job.result = data.get("result")
                job.error = data.get("error")
            except (OSError, ValueError, KeyError, TypeError):
                continue
            self._http_jobs[job.job_id] = job
            if job.status not in ("done", "failed"):
                # Mid-flight when the previous broker died: rerun the
                # spec.  The durable verdict store answers everything
                # already proved, so the rerun costs only the delta.
                job.status = "queued"
                self._schedule_http_job(job)

    # ------------------------------------------------------------------
    # HTTP/JSON job API
    # ------------------------------------------------------------------
    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        status, payload = 400, {"error": "malformed request"}
        try:
            request = await asyncio.wait_for(reader.readline(),
                                             self.handshake_timeout)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                raise ValueError("bad request line")
            method, target = parts[0].upper(), parts[1]
            length = 0
            while True:
                line = await asyncio.wait_for(reader.readline(),
                                              self.handshake_timeout)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if not 0 <= length <= _HTTP_BODY_CAP:
                raise ValueError("unreasonable content length")
            body = await asyncio.wait_for(reader.readexactly(length),
                                          self.handshake_timeout) \
                if length else b""
            status, payload = self._route_http(
                method, target.split("?", 1)[0], body)
        except (ValueError, UnicodeDecodeError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, OSError):
            status, payload = 400, {"error": "malformed request"}
        encoded = (json.dumps(payload, indent=2) + "\n").encode()
        head = (f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}"
                f"\r\nContent-Type: application/json"
                f"\r\nContent-Length: {len(encoded)}"
                f"\r\nConnection: close\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + encoded)
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _route_http(self, method: str, path: str,
                    body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path in ("/healthz", "/healthz/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}
            snap = self._snapshot_now()
            reasons: List[str] = []
            if not snap["workers"]:
                reasons.append("no workers connected")
            if self._at_bound():
                reasons.append(
                    f"queue at bound ({snap['queued']} >= "
                    f"{self.max_queued} queued)")
            return 200, {
                "status": "degraded" if reasons else "ok",
                "reasons": reasons,
                "workers": len(snap["workers"]),
                "queued": snap["queued"],
                "batches": snap["batches"],
                "memo": snap["memo"],
                "jobs": snap["jobs"],
                "durable": snap["durable"],
                "poisoned": snap["poisoned"],
            }
        if path in ("/jobs", "/jobs/"):
            if method == "POST":
                return self._http_submit(body)
            if method == "GET":
                return 200, {"jobs": [job.state() for job in
                                      self._http_jobs.values()]}
            return 405, {"error": "method not allowed"}
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}
            rest = path[len("/jobs/"):]
            want_result = rest.endswith("/result")
            job_id = rest[:-len("/result")] if want_result else rest
            job = self._http_jobs.get(job_id) if "/" not in job_id else None
            if job is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            if not want_result:
                return 200, job.state()
            if job.status == "done":
                return 200, {"id": job.job_id, "status": job.status,
                             "result": job.result}
            if job.status == "failed":
                return 500, {"id": job.job_id, "status": job.status,
                             "error": job.error}
            return 409, {"id": job.job_id, "status": job.status,
                         "error": "job has not finished; poll "
                                  f"/jobs/{job.job_id} for status"}
        return 404, {"error": f"no such endpoint {path!r}"}

    def _http_submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        if self._at_bound():
            return 503, {
                "error": (f"queue is at its bound "
                          f"({self._queue_depth()} >= {self.max_queued} "
                          f"queued); retry later"),
                "retry_after": _RETRY_AFTER_S,
            }
        try:
            spec = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "request body is not valid JSON"}
        if not isinstance(spec, dict):
            return 400, {"error": "expected a JSON object job spec"}
        try:
            job = self.submit_job(spec)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        return 202, {"id": job.job_id, "status": job.status}

    def submit_job(self, spec: Dict[str, Any]) -> _HttpJob:
        """Validate a job spec, register it and schedule its execution.

        Raises ValueError on a malformed spec (the HTTP layer maps that
        to a 400).
        """
        from repro.soc.config import VARIANTS

        kind = spec.get("kind", "methodology")
        if kind not in _JOB_KINDS:
            raise ValueError(f"unknown kind {kind!r} "
                             f"(expected one of {', '.join(_JOB_KINDS)})")
        variant = spec.get("variant")
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r} "
                             f"(choose from {', '.join(VARIANTS)})")
        scenario = spec.get("scenario", "cached")
        if scenario not in _SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r} "
                             f"(expected one of {', '.join(_SCENARIOS)})")
        try:
            k = int(spec.get("k", 2))
            priority = int(spec.get("priority", 0))
        except (TypeError, ValueError):
            raise ValueError("k and priority must be integers") from None
        if k < 1:
            raise ValueError(f"k must be a positive integer, got {k}")
        normalized: Dict[str, Any] = {
            "kind": kind, "variant": variant, "scenario": scenario,
            "k": k, "priority": priority,
        }
        limit = spec.get("conflict_limit")
        if limit is not None:
            try:
                normalized["conflict_limit"] = int(limit)
            except (TypeError, ValueError):
                raise ValueError("conflict_limit must be an integer") \
                    from None
        budget = spec.get("wall_budget")
        if budget is not None:
            try:
                normalized["wall_budget"] = float(budget)
            except (TypeError, ValueError):
                raise ValueError("wall_budget must be a number of seconds") \
                    from None
            if normalized["wall_budget"] <= 0:
                raise ValueError("wall_budget must be positive")
        job = _HttpJob(f"job-{os.urandom(6).hex()}", normalized)
        self._http_jobs[job.job_id] = job
        self._persist_http_job(job)
        self._schedule_http_job(job)
        return job

    def _persist_http_job(self, job: _HttpJob) -> None:
        if self._store is None:
            return
        _write_json(os.path.join(self._jobs_dir, job.job_id + ".json"), {
            "id": job.job_id,
            "spec": job.spec,
            "status": job.status,
            "result": job.result,
            "error": job.error,
            "created_s": job.created,
        })

    def _schedule_http_job(self, job: _HttpJob) -> None:
        if self._job_pool is None:
            self._job_pool = ThreadPoolExecutor(
                max_workers=self.job_runners,
                thread_name_prefix="broker-job")
        self._job_pool.submit(self._run_http_job, job)

    def _run_http_job(self, job: _HttpJob) -> None:
        """Job-runner thread body: execute one spec against the fleet."""
        job.status = "running"
        self._persist_http_job(job)
        try:
            job.result = self._execute_spec(job)
            job.status = "done"
        except Exception as exc:  # surfaced through the job API
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "failed"
        self._persist_http_job(job)

    def _execute_spec(self, job: _HttpJob) -> Dict[str, Any]:
        from repro.core import (
            UpecChecker,
            UpecMethodology,
            UpecModel,
            UpecScenario,
        )
        from repro.engine.pool import ProofEngine
        from repro.soc import SocConfig, build_soc
        from repro.soc.config import FORMAL_CONFIG_KWARGS

        spec = job.spec
        soc = build_soc(
            getattr(SocConfig, spec["variant"])(**FORMAL_CONFIG_KWARGS))
        scenario = UpecScenario(
            secret_in_cache=spec["scenario"] == "cached")
        engine = ProofEngine(pool=_FleetPool(self, job),
                             cache_dir=self.cache_dir)
        try:
            if spec["kind"] == "check":
                model = UpecModel(soc, scenario)
                result = UpecChecker(model, engine=engine).check(
                    k=spec["k"],
                    conflict_limit=spec.get("conflict_limit"),
                    wall_budget=spec.get("wall_budget"))
            else:
                result = UpecMethodology(
                    soc, scenario,
                    conflict_limit=spec.get("conflict_limit"),
                    wall_budget=spec.get("wall_budget"),
                    engine=engine,
                ).run(k=spec["k"])
        finally:
            engine.close()
        return result.to_dict()

    # ------------------------------------------------------------------
    # Internal batches (the execution backend of HTTP jobs)
    # ------------------------------------------------------------------
    def _submit_internal(self, batch_id: str,
                         entries: List[Dict[str, Any]],
                         futures: List[Future],
                         http_job: _HttpJob) -> None:
        """Runs on the loop: register an internal batch whose verdicts
        complete per-seq futures a job-runner thread is blocking on."""

        def deliver(seq: int, verdict: Optional[Dict[str, Any]],
                    error: Optional[str]) -> None:
            future = futures[seq]
            if future.done():
                return
            if error is not None:
                future.set_exception(DistError(
                    f"obligation {seq} of batch {batch_id} failed on "
                    f"the broker: {error}"))
            else:
                http_job.completed += 1
                future.set_result(verdict)

        priority = int(http_job.spec.get("priority", 0))
        batch = _Batch(batch_id, None, priority=priority, deliver=deliver)
        self._batches[batch_id] = batch
        http_job.submitted += len(entries)
        for seq, entry in enumerate(entries):
            job = _Job(batch_id, seq, entry["obligation"],
                       str(entry.get("fingerprint", "")),
                       priority=priority)
            batch.jobs[seq] = job
            memo = self._lookup_verdict(job.fingerprint)
            poison = self._poison.get(job.fingerprint) \
                if memo is None else None
            if memo is not None:
                job.done = True
                deliver(seq, memo, None)
            elif poison is not None:
                job.done = True
                deliver(seq, self._poison_verdict(poison), None)
            else:
                self._queue.append(job)
        self._retire_if_done(batch)

    def _cancel_threadsafe(self, batch_id: str) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        try:
            loop.call_soon_threadsafe(self._cancel, batch_id)
        except RuntimeError:
            pass


class _FleetPool:
    """SolverPool-compatible scheduler that feeds the broker's own
    queue — how an HTTP job's obligations reach the worker fleet.

    Runs on a job-runner thread: batch registration and cancellation
    hop onto the broker loop via ``call_soon_threadsafe``; verdicts
    complete per-seq futures this thread consumes in submission order,
    so ordering and early-cancel semantics mirror
    :class:`repro.engine.pool.SolverPool` exactly.
    """

    def __init__(self, broker: Broker, job: _HttpJob) -> None:
        self._broker = broker
        self._job = job
        self._batch_ids = itertools.count(1)

    @property
    def jobs(self) -> int:
        # Never 1: the checker layers take jobs==1 to mean in-process
        # lazy export, which is never true against a fleet (see
        # RemotePool.jobs).
        return max(2, len(self._broker._workers))

    def close(self) -> None:
        pass

    def solve_one(self, obligation, cache=None):
        result = self.solve_ordered([obligation])
        assert result[0] is not None
        return result[0]

    def solve_ordered(self, obligations, early_stop=None,
                      on_verdict=None, cache=None):
        if not obligations:
            return []
        loop = self._broker._loop
        if loop is None or not loop.is_running():
            raise DistError("broker is not running")
        batch_id = f"{self._job.job_id}b{next(self._batch_ids)}"
        entries = [
            {"fingerprint": ob.fingerprint(),
             "obligation": obligation_to_wire(ob)}
            for ob in obligations
        ]
        futures: List[Future] = [Future() for _ in obligations]
        loop.call_soon_threadsafe(
            self._broker._submit_internal, batch_id, entries, futures,
            self._job)
        results: List[Optional[Verdict]] = [None] * len(obligations)
        stopped = False
        for i, future in enumerate(futures):
            if stopped:
                # Mirror the local pool: solves that finished anyway
                # are observed (cache stores) but stay out of the
                # ordered result list past the stop point.
                if future.done() and future.exception() is None:
                    if on_verdict is not None:
                        on_verdict(obligations[i],
                                   Verdict.from_dict(future.result()))
                continue
            verdict = Verdict.from_dict(future.result())
            results[i] = verdict
            if on_verdict is not None:
                on_verdict(obligations[i], verdict)
            if early_stop is not None and early_stop(verdict):
                stopped = True
                self._broker._cancel_threadsafe(batch_id)
        return results
