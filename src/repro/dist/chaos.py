"""Deterministic, seeded fault injection for the distributed service.

:class:`ChaosProxy` is a TCP proxy that sits between the service's
peers (clients and workers on one side, the broker on the other) and
injects faults into the byte stream *at frame boundaries* — it parses
the wire protocol's length-prefixed headers, so every fault lands on a
whole frame:

* **stall** — hold a frame back for a while before forwarding it;
* **duplicate** — forward a frame twice;
* **bitflip** — flip one payload bit (the CRC32 frame checksum turns
  this into a :class:`~repro.dist.protocol.ProtocolError` on the
  receiving side, which recycles the connection);
* **truncate** — forward a partial frame, then drop the connection
  (the receiver sees "closed mid-frame");
* **reset** — drop the connection between frames.

Every decision comes from a :class:`ChaosPlan`: a seeded RNG schedule,
so a chaos run is *reproducible* — the same seed injects the same
faults at the same frame counts on the same connection indices, which
is what lets a failing soak be replayed and a fixed seed guard CI.
Process-level faults (worker SIGKILL, broker restart) draw from the
same plan through :meth:`ChaosPlan.process_faults`, so one seed
describes the entire fault schedule of a soak.

The proxy is failure-transparent by design: it never rewrites frames
(beyond the injected corruption) and forwards in order, so a run
through a zero-rate proxy is indistinguishable from a direct
connection.  Because every layer above the protocol already treats a
dropped/poisoned connection as a recoverable event (worker reconnect,
broker requeue, client resubmission), a methodology run through an
aggressive proxy must still produce verdicts bit-identical to a
sequential run — the acceptance bar of ``tests/test_chaos.py``.

Environment knobs (read by :meth:`ChaosPlan.from_env`, all optional)::

    REPRO_CHAOS_SEED        master seed (int; default 0)
    REPRO_CHAOS_RESET       per-frame connection-reset probability
    REPRO_CHAOS_STALL       per-frame stall probability
    REPRO_CHAOS_STALL_S     max stall duration in seconds (default 0.2)
    REPRO_CHAOS_TRUNCATE    per-frame truncation probability
    REPRO_CHAOS_DUPLICATE   per-frame duplication probability
    REPRO_CHAOS_BITFLIP     per-frame payload bit-flip probability

``repro chaos-proxy --listen H:P --upstream H:P --seed N`` runs a proxy
standalone, so any existing test or CI leg can point ``--connect`` (or
``REPRO_ENGINE_CONNECT``) at the proxy instead of the broker and run
under chaos without code changes.
"""

from __future__ import annotations

import hashlib
import os
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.protocol import _HEADER, MAX_FRAME_BYTES

__all__ = ["ChaosPlan", "ChaosProxy"]

#: Environment-knob prefix; see the module docstring for the full list.
CHAOS_ENV_PREFIX = "REPRO_CHAOS_"

#: Fault kinds in the order the per-frame dice are rolled (stable order
#: is part of the reproducibility contract — do not reorder).
_FAULTS = ("reset", "stall", "truncate", "duplicate", "bitflip")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(CHAOS_ENV_PREFIX + name)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return max(0.0, value)


@dataclass
class ChaosPlan:
    """A reproducible fault schedule, fully determined by ``seed``.

    Per-frame faults are drawn from independent RNG streams keyed by
    ``(seed, connection index, direction)``, so the schedule on one
    connection does not depend on how many frames another connection
    carried — the same logical conversation sees the same faults even
    when unrelated traffic varies.
    """

    seed: int = 0
    #: Per-frame probabilities; 0 disables a fault kind entirely.
    reset_rate: float = 0.0
    stall_rate: float = 0.0
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    bitflip_rate: float = 0.0
    #: Longest injected stall, in seconds (stalls are uniform in
    #: ``(0, stall_max_s]``).
    stall_max_s: float = 0.2
    #: Frames at the start of every connection that are never faulted:
    #: the handshake must survive or a peer can never register at all
    #: and the soak tests nothing but the dial path.
    grace_frames: int = 2

    @classmethod
    def from_env(cls, seed: Optional[int] = None) -> "ChaosPlan":
        """A plan from the ``REPRO_CHAOS_*`` environment knobs."""
        if seed is None:
            raw = os.environ.get(CHAOS_ENV_PREFIX + "SEED", "0")
            try:
                seed = int(raw)
            except ValueError:
                seed = 0
        return cls(
            seed=seed,
            reset_rate=_env_float("RESET", 0.0),
            stall_rate=_env_float("STALL", 0.0),
            truncate_rate=_env_float("TRUNCATE", 0.0),
            duplicate_rate=_env_float("DUPLICATE", 0.0),
            bitflip_rate=_env_float("BITFLIP", 0.0),
            stall_max_s=_env_float("STALL_S", 0.2),
        )

    # ------------------------------------------------------------------
    def _rng(self, *key: Any) -> random.Random:
        # Stream seeds come from a stable digest, NOT ``hash()`` — str
        # hashing is randomized per process, and the whole point is that
        # the same plan seed replays the same schedule across runs.
        material = ":".join([str(self.seed)] + [str(part) for part in key])
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def connection_stream(self, conn_index: int,
                          direction: str) -> "_FaultStream":
        """The per-frame fault stream of one proxied direction."""
        return _FaultStream(self, self._rng("conn", conn_index, direction))

    def process_faults(self, kind: str, count: int,
                       horizon: int) -> List[int]:
        """Deterministic schedule of process-level faults.

        Returns ``count`` distinct step indices in ``[0, horizon)`` —
        the test harness interprets a step however it likes (verdicts
        consumed, frames seen, seconds elapsed).  ``kind`` namespaces
        the stream so e.g. worker kills and broker restarts draw
        independent schedules from the same seed.
        """
        if count <= 0 or horizon <= 0:
            return []
        rng = self._rng("process", kind)
        population = list(range(horizon))
        rng.shuffle(population)
        return sorted(population[:min(count, horizon)])

    def describe(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rates": {
                "reset": self.reset_rate,
                "stall": self.stall_rate,
                "truncate": self.truncate_rate,
                "duplicate": self.duplicate_rate,
                "bitflip": self.bitflip_rate,
            },
            "stall_max_s": self.stall_max_s,
            "grace_frames": self.grace_frames,
        }


class _FaultStream:
    """Seeded per-frame fault decisions for one connection direction."""

    def __init__(self, plan: ChaosPlan, rng: random.Random) -> None:
        self._plan = plan
        self._rng = rng
        self._frames = 0

    def next_fault(self, payload_len: int) -> Optional[Tuple[str, Any]]:
        """The fault (if any) for the next frame.

        Exactly one uniform draw per fault kind per frame, in the fixed
        :data:`_FAULTS` order, whether or not earlier kinds fire — the
        draw count per frame is constant, so the schedule downstream of
        any frame never depends on which faults happened to trigger.
        """
        plan = self._plan
        rng = self._rng
        index = self._frames
        self._frames += 1
        draws = {kind: rng.random() for kind in _FAULTS}
        stall_s = rng.random() * plan.stall_max_s
        flip_bit = rng.randrange(max(1, payload_len * 8))
        if index < plan.grace_frames:
            return None
        if draws["reset"] < plan.reset_rate:
            return ("reset", None)
        if draws["stall"] < plan.stall_rate:
            return ("stall", stall_s)
        if draws["truncate"] < plan.truncate_rate:
            return ("truncate", None)
        if draws["duplicate"] < plan.duplicate_rate:
            return ("duplicate", None)
        if draws["bitflip"] < plan.bitflip_rate and payload_len > 0:
            return ("bitflip", flip_bit)
        return None


class _ConnReset(Exception):
    """Internal: a fault decided to drop this proxied connection."""


class ChaosProxy:
    """A frame-aware TCP chaos proxy in front of a broker.

    Accepts on ``listen``; for every inbound connection, dials
    ``upstream`` and shuttles frames both ways, consulting the plan's
    per-connection fault streams.  Thread-per-direction: faults on one
    connection never stall another.
    """

    def __init__(self, listen: Tuple[str, int], upstream: Tuple[str, int],
                 plan: Optional[ChaosPlan] = None) -> None:
        self.listen_host, self.listen_port = listen
        self.upstream = upstream
        self.plan = plan if plan is not None else ChaosPlan.from_env()
        self.connections = 0
        self.frames = 0
        self.faults: Dict[str, int] = {kind: 0 for kind in _FAULTS}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.listen_host}:{self.listen_port}"

    def start(self) -> "ChaosProxy":
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.listen_host, self.listen_port))
        server.listen(64)
        self.listen_port = server.getsockname()[1]
        self._server = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "connections": self.connections,
                "frames": self.frames,
                "faults": dict(self.faults),
                "plan": self.plan.describe(),
            }

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            server = self._server
            if server is None:
                return
            try:
                client, _addr = server.accept()
            except OSError:
                return
            with self._lock:
                conn_index = self.connections
                self.connections += 1
            thread = threading.Thread(
                target=self._serve_pair, args=(client, conn_index),
                name=f"chaos-conn-{conn_index}", daemon=True)
            thread.start()

    def _serve_pair(self, client: socket.socket, conn_index: int) -> None:
        try:
            upstream = socket.create_connection(self.upstream, timeout=10.0)
            # The 10 s limit is for the *dial* only: create_connection
            # leaves it as the socket's recv timeout, and a quiet link
            # (a deep solve, a respawning fleet) would read as dead
            # after 10 s — an unscheduled fault the plan never drew.
            upstream.settimeout(None)
        except OSError:
            try:
                client.close()
            except OSError:
                pass
            return
        closing = threading.Event()
        pair = [
            (client, upstream,
             self.plan.connection_stream(conn_index, "up")),
            (upstream, client,
             self.plan.connection_stream(conn_index, "down")),
        ]
        threads = []
        for src, dst, stream in pair:
            thread = threading.Thread(
                target=self._pump, args=(src, dst, stream, closing),
                daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        for sock in (client, upstream):
            try:
                sock.close()
            except OSError:
                pass

    def _pump(self, src: socket.socket, dst: socket.socket,
              stream: _FaultStream, closing: threading.Event) -> None:
        """Shuttle frames one way until either side dies or a fault
        kills the connection (both directions close together — a reset
        is a connection-level event, exactly like real networks)."""
        try:
            while not self._stop.is_set() and not closing.is_set():
                frame = self._read_frame(src)
                if frame is None:
                    break
                header, payload = frame
                with self._lock:
                    self.frames += 1
                self._forward(dst, header, payload,
                              stream.next_fault(len(payload)))
        except (_ConnReset, OSError):
            pass
        finally:
            closing.set()
            for sock in (src, dst):
                # Shutdown (not close) unblocks the sibling pump thread
                # mid-recv; the pair owner closes the fds once both
                # pumps have exited.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def _read_frame(self, src: socket.socket) \
            -> Optional[Tuple[bytes, bytes]]:
        header = self._recv_exact(src, _HEADER.size)
        if header is None:
            return None
        try:
            length = struct.unpack_from(">I", header)[0]
        except struct.error:
            return None
        if length > MAX_FRAME_BYTES:
            # Not protocol traffic (or already corrupt beyond parsing):
            # drop the connection rather than forward garbage forever.
            raise _ConnReset()
        payload = self._recv_exact(src, length)
        if payload is None:
            return None
        return header, payload

    @staticmethod
    def _recv_exact(src: socket.socket, count: int) -> Optional[bytes]:
        chunks = []
        got = 0
        while got < count:
            try:
                chunk = src.recv(count - got)
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks) if chunks or count == 0 else None

    def _forward(self, dst: socket.socket, header: bytes, payload: bytes,
                 fault: Optional[Tuple[str, Any]]) -> None:
        if fault is not None:
            kind, arg = fault
            with self._lock:
                self.faults[kind] = self.faults.get(kind, 0) + 1
            if kind == "reset":
                raise _ConnReset()
            if kind == "stall":
                time.sleep(float(arg))
            elif kind == "truncate":
                cut = max(1, len(payload) // 2) if payload else 0
                dst.sendall(header + payload[:cut])
                raise _ConnReset()
            elif kind == "duplicate":
                dst.sendall(header + payload)
            elif kind == "bitflip" and payload:
                corrupt = bytearray(payload)
                bit = int(arg) % (len(corrupt) * 8)
                corrupt[bit >> 3] ^= 1 << (bit & 7)
                dst.sendall(header + bytes(corrupt))
                return
        dst.sendall(header + payload)


def run_proxy(listen: str, upstream: str,
              plan: Optional[ChaosPlan] = None,
              stop: Optional[threading.Event] = None) -> Dict[str, Any]:
    """Run a proxy until interrupted (the ``repro chaos-proxy`` body);
    returns the final fault stats."""
    from repro.dist.protocol import parse_address

    proxy = ChaosProxy(parse_address(listen), parse_address(upstream),
                       plan=plan)
    proxy.start()
    try:
        while not (stop is not None and stop.is_set()):
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.stop()
    return proxy.stats()
