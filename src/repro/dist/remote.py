"""Client-side scheduler: a drop-in pool backed by a remote broker.

:class:`RemotePool` speaks the :class:`repro.engine.pool.SolverPool`
interface (``solve_one`` / ``solve_ordered`` with ordered consumption,
early-stop and an ``on_verdict`` observer), but ships every obligation
to a :class:`repro.dist.broker.Broker` instead of a local process pool.
Wrapping it in a :class:`ProofEngine` gives :class:`RemoteEngine` — the
object ``UpecChecker``, ``UpecMethodology``, ``InductiveDiffProof``,
``BmcEngine`` and ``ScenarioSweep`` accept as ``engine=``, so a run
shards across machines without any call-site change beyond the engine
swap.

Ordering and early-cancel semantics mirror the local pool exactly:
verdicts arrive in completion order but are *consumed* in submission
order, the first verdict that trips ``early_stop`` cancels the batch on
the broker (queued siblings are never dispatched), and results that
finished anyway are still observed so caches benefit.  Since solving is
a pure function of the obligation, a remote run's verdict stream is
bit-identical to a local one's.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.dist.protocol import (
    Connection,
    dial,
    obligation_to_wire,
    parse_address,
)
from repro.engine.obligation import ProofObligation, Verdict
from repro.engine.pool import ProofEngine
from repro.errors import DistError

#: Environment knob: the CLI's default broker address (``HOST:PORT``) —
#: ``repro check``/``methodology``/``sweep`` shard over it without the
#: ``--connect`` flag (an explicit ``--jobs`` overrides it back to the
#: local pool).  Library call sites constructed with ``engine=None``
#: still resolve through ``REPRO_ENGINE_JOBS``/``REPRO_ENGINE_CACHE``
#: only; pass a :class:`RemoteEngine` explicitly to shard them.
CONNECT_ENV = "REPRO_ENGINE_CONNECT"


class BrokerRefusal(DistError):
    """The broker answered and said no (failed obligation, rejected
    batch) — a live link, so the mid-batch reconnect path must raise it
    through instead of redialing."""


class _BrokerBusy(Exception):
    """Internal: the broker refused a submit with ``busy`` backpressure
    (queue at its ``--max-queued`` bound).  Carries the broker's
    retry-after hint; ``solve_ordered`` backs off and resubmits."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"broker queue is full (retry in {retry_after}s)")
        self.retry_after = retry_after


class RemotePool:
    """SolverPool-compatible scheduler that solves on a broker's fleet."""

    def __init__(self, address: str, timeout: Optional[float] = 10.0,
                 priority: int = 0, reconnect_retries: int = 5,
                 reconnect_delay: float = 0.5,
                 busy_retries: int = 120) -> None:
        self.address = parse_address(address)
        self._timeout = timeout
        #: Scheduling priority of every batch this pool submits (higher
        #: dispatches first; FIFO within a priority level).
        self.priority = int(priority)
        self.reconnect_retries = max(0, int(reconnect_retries))
        self.reconnect_delay = reconnect_delay
        #: How many consecutive ``busy`` (backpressure) refusals to ride
        #: out with jittered backoff before giving up on a submit.
        self.busy_retries = max(1, int(busy_retries))
        self._conn: Optional[Connection] = None
        self._batch_ids = itertools.count(1)
        self._client_id = ""
        self._workers_at_connect = 0
        self._connect()

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        """Advertised parallelism.

        At least 2 even for a single-worker fleet: the scheduler layers
        (:meth:`UpecChecker._check_engine`) use ``jobs == 1`` to mean
        "solving is in-process and lazy export pays", which is never
        true across a network — remote runs always take the eager
        batch-export path, whose obligation stream is bit-identical to
        the lazy one's.
        """
        return max(2, self._workers_at_connect)

    def _connect(self) -> None:
        conn, welcome = dial(self.address, role="client",
                             timeout=self._timeout)
        self._conn = conn
        self._client_id = str(welcome.get("id", ""))
        self._workers_at_connect = int(welcome.get("workers", 0))

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send({"type": "bye"})
            except OSError:
                pass
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RemotePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The broker's live counters (workers, queue depth, memo size)."""
        conn = self._require_conn()
        self._send(conn, {"type": "status"})
        while True:
            reply = self._recv(conn)
            kind = reply.get("type")
            if kind == "status":
                return reply
            if kind in ("verdict", "cancelled", "failed"):
                continue  # stragglers of an earlier cancelled batch
            raise DistError(f"unexpected reply {kind!r}")

    def _require_conn(self) -> Connection:
        if self._conn is None:
            raise DistError("remote pool is closed")
        return self._conn

    def _recv(self, conn: Connection) -> Dict[str, Any]:
        message = conn.recv()
        if message is None:
            raise DistError(
                f"broker at {self.address[0]}:{self.address[1]} closed the "
                f"connection mid-run")
        return message

    def _send(self, conn: Connection, message: Dict[str, Any]) -> None:
        """Send, surfacing a dead broker as DistError (exit 69 at the
        CLI) rather than a raw BrokenPipeError."""
        try:
            conn.send(message)
        except OSError as exc:
            raise DistError(
                f"lost connection to broker at {self.address[0]}:"
                f"{self.address[1]}: {exc}") from exc

    # ------------------------------------------------------------------
    def solve_one(self, obligation: ProofObligation,
                  cache=None) -> Verdict:
        result = self.solve_ordered([obligation])
        assert result[0] is not None
        return result[0]

    def solve_ordered(
        self,
        obligations: Sequence[ProofObligation],
        early_stop: Optional[Callable[[Verdict], bool]] = None,
        on_verdict: Optional[Callable[[ProofObligation, Verdict], None]]
        = None,
        cache=None,
    ) -> List[Optional[Verdict]]:
        """Ship a batch to the broker; consume verdicts in order.

        ``cache`` is accepted for pool-interface compatibility and
        ignored: remote workers consult their own caches, and the
        engine wrapper already filtered client-side hits.

        A broker that dies mid-batch (restart, crash) is *ridden out*:
        the pool redials with backoff (``reconnect_retries`` ×
        ``reconnect_delay``) and resubmits only the obligations whose
        verdicts have not arrived, under a fresh batch id but with the
        original sequence numbers — so the consumed verdict stream is
        exactly what the uninterrupted run would have produced.
        Against a durable broker the resubmission is answered largely
        from the persistent memo, so a restart costs wall-clock, never
        work already proved.
        """
        if not obligations:
            return []
        results: List[Optional[Verdict]] = [None] * len(obligations)
        arrived: Dict[int, Verdict] = {}
        consumed = 0
        stopped = False
        deaths = 0
        busy = 0
        while not stopped and consumed < len(obligations):
            conn = self._require_conn()
            batch_id = f"{self._client_id}b{next(self._batch_ids)}"
            # Progress high-water mark before this attempt: a connection
            # that dies *after* delivering new verdicts was a live link
            # (a transient reset, injected or real), not a dead broker —
            # such a death resets the budget, which only ever counts
            # CONSECUTIVE fruitless redials.  Without this, a long
            # methodology on a flaky network exhausts a lifetime budget
            # meant to detect a broker that is gone.
            progress = consumed + len(arrived)
            try:
                self._send(conn, {
                    "type": "submit",
                    "batch_id": batch_id,
                    "priority": self.priority,
                    "jobs": [
                        {"seq": i, "fingerprint": obligations[i].fingerprint(),
                         "obligation": obligation_to_wire(obligations[i])}
                        for i in range(consumed, len(obligations))
                        if i not in arrived
                    ],
                })
                stopped, consumed = self._consume(
                    conn, batch_id, obligations, results, arrived,
                    consumed, stopped, early_stop, on_verdict)
                busy = 0
            except _BrokerBusy as refusal:
                # Backpressure, not failure: the queue is at its bound.
                # Honor the retry-after hint with jitter (so a fleet of
                # refused clients does not resubmit in lockstep) and
                # try again on the same live connection.
                busy += 1
                if busy > self.busy_retries:
                    raise DistError(
                        f"broker at {self.address[0]}:{self.address[1]} "
                        f"queue stayed full through {busy - 1} "
                        f"backpressure retries") from refusal
                time.sleep(refusal.retry_after * (0.5 + random.random()))
            except BrokerRefusal:
                raise          # the broker answered; redialing won't help
            except DistError:
                # ``_consume``'s in-order progress lands in ``results``
                # (mutated in place), but its advancing ``consumed`` /
                # ``stopped`` counters are locals that die with the
                # exception.  Resync from ``results`` before
                # resubmitting: otherwise a verdict consumed just
                # before the connection died would be resubmitted, its
                # re-delivery skipped by the duplicate-seq guard, and
                # ``consumed`` could never reach it again — a client
                # blocked forever on a batch the broker has already
                # delivered and retired.
                while consumed < len(obligations) \
                        and results[consumed] is not None:
                    if early_stop is not None \
                            and early_stop(results[consumed]):
                        # Re-derive the stop decision _consume made on
                        # this verdict before dying (early_stop is a
                        # pure predicate of the verdict, so asking
                        # again is safe) — losing it would solve past
                        # the stop point the caller asked for.
                        stopped = True
                    consumed += 1
                if consumed + len(arrived) > progress:
                    deaths = 0
                deaths += 1
                if deaths > self.reconnect_retries:
                    raise
                self._reconnect()
        return results

    def _consume(self, conn: Connection, batch_id: str,
                 obligations: Sequence[ProofObligation],
                 results: List[Optional[Verdict]],
                 arrived: Dict[int, Verdict], consumed: int, stopped: bool,
                 early_stop, on_verdict):
        """Drain one submitted batch into ``results``; returns the
        updated ``(stopped, consumed)``.  Raises DistError when the
        connection dies (the caller reconnects and resubmits)."""
        while consumed < len(obligations):
            message = self._recv(conn)
            kind = message.get("type")
            if kind == "verdict":
                if message.get("batch_id") != batch_id:
                    continue  # stray frame from an older cancelled batch
                seq = int(message["seq"])
                if results[seq] is not None or seq in arrived:
                    continue  # duplicated frame: this seq already landed
                verdict = Verdict.from_dict(message["verdict"])
                if stopped:
                    # Mirrors the local pool: results that finished
                    # anyway are observed (cache stores) but stay out of
                    # the ordered result list past the stop point.
                    if on_verdict is not None:
                        on_verdict(obligations[seq], verdict)
                    continue
                arrived[seq] = verdict
                while consumed in arrived:
                    verdict = arrived.pop(consumed)
                    results[consumed] = verdict
                    if on_verdict is not None:
                        on_verdict(obligations[consumed], verdict)
                    consumed += 1
                    if early_stop is not None and early_stop(verdict):
                        stopped = True
                        self._send(conn, {"type": "cancel",
                                          "batch_id": batch_id})
                        # Out-of-order verdicts already buffered past
                        # the stop point finished their solves — hand
                        # them to the observer (cache stores), exactly
                        # like the local pool's post-stop harvest.
                        if on_verdict is not None:
                            for extra in sorted(arrived):
                                on_verdict(obligations[extra],
                                           arrived[extra])
                        arrived.clear()
                        break
            elif kind == "busy":
                if message.get("batch_id") in (None, batch_id):
                    raise _BrokerBusy(
                        float(message.get("retry_after", 0.5)))
                continue  # stale refusal of an earlier batch
            elif kind == "cancelled":
                if message.get("batch_id") == batch_id:
                    break
            elif kind == "failed":
                if message.get("batch_id") != batch_id or stopped:
                    # Mismatched batch, or a straggler racing our cancel:
                    # the caller already has every verdict it asked for.
                    continue
                raise BrokerRefusal(
                    f"obligation {message.get('seq')} of batch {batch_id} "
                    f"failed on the broker: {message.get('reason')}")
            elif kind == "error":
                raise BrokerRefusal(
                    f"broker rejected batch {batch_id}: "
                    f"{message.get('reason')}")
            else:
                raise BrokerRefusal(
                    f"unexpected message {kind!r} from broker")
        return stopped, consumed

    def _reconnect(self) -> None:
        """Redial a broker that dropped mid-batch, with backoff."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        last: Optional[DistError] = None
        for _ in range(max(1, self.reconnect_retries)):
            time.sleep(self.reconnect_delay)
            try:
                self._connect()
                return
            except DistError as exc:
                last = exc
        raise DistError(
            f"broker at {self.address[0]}:{self.address[1]} did not come "
            f"back after {self.reconnect_retries} redial attempts"
        ) from last


class RemoteEngine(ProofEngine):
    """A :class:`ProofEngine` whose pool is a broker connection.

    The client-side result cache still applies (hits never cross the
    network); misses are sharded over the broker's workers.
    """

    def __init__(self, address: str, cache_dir: Optional[str] = None,
                 cache=None, timeout: Optional[float] = 10.0) -> None:
        super().__init__(pool=RemotePool(address, timeout=timeout),
                         cache_dir=cache_dir, cache=cache)


def env_connect() -> Optional[str]:
    """The ``REPRO_ENGINE_CONNECT`` broker address, if set."""
    return os.environ.get(CONNECT_ENV) or None
