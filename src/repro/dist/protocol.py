"""Wire protocol of the distributed proof service.

Every message is one *frame* on a TCP stream::

    4 bytes   payload length, big-endian (excludes the header)
    1 byte    codec tag: b"J" (JSON, UTF-8) or b"M" (msgpack)
    4 bytes   CRC32 over codec tag + payload, big-endian
    N bytes   the encoded message (a dict with a ``type`` key)

The checksum is verified *before* the payload is handed to a codec: a
frame corrupted in flight (or by a fault injector — see
:mod:`repro.dist.chaos`) raises :class:`ProtocolError`, the receiving
side recycles the connection, and the corrupt bytes are never
deserialized.  Both fault-tolerance layers (worker reconnect, broker
requeue, client resubmission) already treat a dropped connection as a
recoverable event, so integrity checking composes with them for free.

msgpack is used when both ends have it (it is substantially cheaper for
the clause-heavy obligation payloads); JSON is the always-available
fallback, so a broker and worker from the same codebase can talk even on
an interpreter without the optional dependency.  The codec tag travels
per frame, so a receiver never guesses.

Connections open with a versioned handshake: the dialing side sends a
``hello`` (protocol version, role, supported codecs), the broker answers
``welcome`` (echoing the version and picking the session codec) or
``error`` — a version mismatch is rejected *before* any obligation bytes
are exchanged, so mixed deployments fail fast with a clear reason
instead of corrupting a sweep.

:class:`Connection` wraps a socket with framed ``send``/``recv`` (the
send side is lock-protected, so broker threads can deliver verdicts to a
client connection while its handler thread answers control messages).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.obligation import ProofObligation
from repro.errors import DistError

try:  # optional accelerator; the protocol works without it
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - environment-dependent
    msgpack = None

#: Bump on any incompatible message-shape change; handshakes between
#: different versions are rejected.  v2: the broker pushes ``cancel``
#: frames to workers mid-solve (cooperative preemption), so worker
#: replies are routed by type instead of strict request/response.
#: v3: the frame header grew a CRC32 of the tag + payload; a v2 peer
#: misparses the header before its handshake version check can fire,
#: which still surfaces as a loud :class:`ProtocolError` rather than
#: silent corruption.
PROTO_VERSION = 3

_HEADER = struct.Struct(">IBI")
_TAG_JSON = ord("J")
_TAG_MSGPACK = ord("M")


def _frame_crc(tag: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bytes([tag])))

#: Sanity cap on a single frame (a corrupt length prefix must not make
#: the receiver try to allocate gigabytes).
MAX_FRAME_BYTES = 1 << 29


class ProtocolError(DistError):
    """Malformed frame, unknown codec, or a failed handshake."""


def supported_codecs() -> List[str]:
    """Codecs this interpreter can decode, preferred first."""
    return ["msgpack", "json"] if msgpack is not None else ["json"]


def pick_codec(offered: Any) -> str:
    """The session codec: our best codec the peer also offered."""
    offered = [c for c in offered if isinstance(c, str)] \
        if isinstance(offered, (list, tuple)) else []
    for codec in supported_codecs():
        if codec in offered:
            return codec
    return "json"


def _encode(message: Dict[str, Any], codec: str) -> Tuple[int, bytes]:
    if codec == "msgpack" and msgpack is not None:
        return _TAG_MSGPACK, msgpack.packb(message, use_bin_type=True)
    return _TAG_JSON, json.dumps(message, separators=(",", ":")).encode()


def _decode(tag: int, payload: bytes) -> Dict[str, Any]:
    if tag == _TAG_JSON:
        message = json.loads(payload.decode("utf-8"))
    elif tag == _TAG_MSGPACK:
        if msgpack is None:
            raise ProtocolError("peer sent a msgpack frame but msgpack is "
                                "not available here")
        message = msgpack.unpackb(payload, raw=False)
    else:
        raise ProtocolError(f"unknown codec tag {tag!r}")
    if not isinstance(message, dict):
        raise ProtocolError("message is not a mapping")
    return message


def frame_message(message: Dict[str, Any], codec: str = "json") -> bytes:
    """One fully encoded wire frame (header + payload) — shared by the
    threaded :class:`Connection` and the broker's asyncio streams."""
    tag, payload = _encode(message, codec)
    return _HEADER.pack(len(payload), tag, _frame_crc(tag, payload)) \
        + payload


async def read_message(reader: "asyncio.StreamReader") \
        -> Optional[Dict[str, Any]]:
    """Asyncio twin of :meth:`Connection.recv`: next framed message from
    a stream reader, or None when the peer closed at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    length, tag, crc = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    if _frame_crc(tag, payload) != crc:
        raise ProtocolError("frame checksum mismatch (corrupt frame)")
    return _decode(tag, payload)


class Connection:
    """A framed, codec-negotiated message stream over one socket."""

    def __init__(self, sock: socket.socket, codec: str = "json") -> None:
        self.sock = sock
        self.codec = codec
        self._send_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def send(self, message: Dict[str, Any]) -> None:
        frame = frame_message(message, self.codec)
        with self._send_lock:
            self.sock.sendall(frame)

    def _recv_exact(self, count: int) -> Optional[bytes]:
        """Read exactly ``count`` bytes; None on EOF at a frame boundary."""
        chunks = []
        got = 0
        while got < count:
            chunk = self.sock.recv(count - got)
            if not chunk:
                if got:
                    raise ProtocolError("connection closed mid-frame")
                return None
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def recv(self) -> Optional[Dict[str, Any]]:
        """Next message, or None when the peer closed the stream."""
        header = self._recv_exact(_HEADER.size)
        if header is None:
            return None
        length, tag, crc = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{MAX_FRAME_BYTES}-byte cap")
        payload = self._recv_exact(length)
        if payload is None:
            raise ProtocolError("connection closed mid-frame")
        if _frame_crc(tag, payload) != crc:
            raise ProtocolError("frame checksum mismatch (corrupt frame)")
        return _decode(tag, payload)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
def dial(address: Tuple[str, int], role: str,
         name: str = "", timeout: Optional[float] = None) -> \
        Tuple[Connection, Dict[str, Any]]:
    """Connect to a broker, run the client side of the handshake.

    Returns the negotiated connection and the ``welcome`` message.
    Raises :class:`ProtocolError` on rejection, :class:`DistError`
    (with the address in the message) when the broker is unreachable.
    """
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise DistError(
            f"cannot reach broker at {address[0]}:{address[1]}: {exc}"
        ) from exc
    conn = Connection(sock)
    try:
        # The timeout stays armed through the handshake: a peer that
        # accepts the TCP connection but never answers (a black-holed
        # link, some unrelated service on the port) must fail loudly,
        # not hang the CLI.
        conn.send({
            "type": "hello",
            "proto": PROTO_VERSION,
            "role": role,
            "name": name,
            "codecs": supported_codecs(),
        })
        try:
            reply = conn.recv()
        except OSError as exc:   # socket.timeout included
            raise ProtocolError(
                f"broker at {address[0]}:{address[1]} did not complete "
                f"the handshake: {exc}") from exc
        if reply is None:
            raise ProtocolError("broker closed the connection during the "
                                "handshake")
        if reply.get("type") == "error":
            raise ProtocolError(
                f"broker rejected the handshake: {reply.get('reason')}")
        if reply.get("type") != "welcome":
            raise ProtocolError(
                f"unexpected handshake reply {reply.get('type')!r}")
        conn.codec = pick_codec([reply.get("codec", "json")])
        sock.settimeout(None)
        return conn, reply
    except BaseException:
        conn.close()
        raise


def parse_address(spec: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` connect string."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise DistError(f"expected HOST:PORT, got {spec!r}")
    try:
        number = int(port)
    except ValueError:
        raise DistError(f"invalid port in {spec!r}") from None
    if not 1 <= number <= 65535:
        # getaddrinfo would silently wrap the port modulo 65536.
        raise DistError(f"port out of range in {spec!r}")
    return host, number


# ----------------------------------------------------------------------
# Obligation transport
# ----------------------------------------------------------------------
def obligation_to_wire(obligation: ProofObligation) -> Dict[str, Any]:
    """The shippable form of an obligation.

    The slice ``remap``/``orig_nvars`` bookkeeping stays with the
    exporting context (a worker never needs it — the verdict's packed
    model is over the obligation's own numbering).
    """
    return {
        "name": obligation.name,
        "nvars": obligation.nvars,
        "clauses": [list(c) for c in obligation.clauses],
        "assumptions": list(obligation.assumptions),
        "frozen": list(obligation.frozen),
        "simplify": bool(obligation.simplify),
        "conflict_limit": obligation.conflict_limit,
        "wall_budget": obligation.wall_budget,
        "meta": dict(obligation.meta),
    }


def obligation_from_wire(data: Dict[str, Any]) -> ProofObligation:
    try:
        return ProofObligation(
            name=str(data["name"]),
            nvars=int(data["nvars"]),
            clauses=[list(map(int, c)) for c in data["clauses"]],
            assumptions=list(map(int, data["assumptions"])),
            frozen=list(map(int, data.get("frozen", ()))),
            simplify=bool(data.get("simplify", True)),
            conflict_limit=data.get("conflict_limit"),
            wall_budget=data.get("wall_budget"),
            meta=dict(data.get("meta", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed obligation payload: {exc}") from exc
