"""The proof-service worker daemon.

A worker dials the broker, registers via the versioned handshake and
then loops: pull an obligation, solve it with the exact same pure
function local pools use (:func:`repro.engine.obligation.solve_obligation`
— same preprocessing stack, same CDCL search, hence bit-identical
verdicts no matter which machine runs the job), stream the verdict back.

With a ``cache_dir`` the worker fronts solving with a local
:class:`repro.engine.cache.ResultCache`: verdict hits skip the solve
entirely, warm-started simplified clause databases skip the
preprocessing pass, and every *gossiped* verdict the broker piggybacks
on a pull is written through — so a fleet of workers sharing nothing but
the broker converges to a common proof cache.

Each connection runs two side threads: a heartbeat (so the broker can
tell a busy worker from a dead one) and a *receiver* that reads every
inbound frame.  The receiver routes ordinary replies to the pull loop
and handles ``cancel`` pushes out of band: when the broker cancels the
job currently being solved (its batch finished early or was dropped),
the receiver flips a flag that :func:`solve_obligation`'s
``cancel_check`` observes inside the CDCL conflict loop — the solve
abandons its search within a bounded number of conflicts and the core
goes back to useful work instead of finishing a doomed proof.

A lost broker connection is retried with backoff (work in flight during
the loss is the broker's problem: it requeues on disconnect).  The
backoff covers *short-lived* connections too: a broker that accepts the
dial but drops the link immediately — flapping under restart, a
load-balancer with no backend — counts against ``max_retries`` just
like a refused dial, so a worker never busy-spins reconnecting at full
speed forever.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple, Union

from repro.dist.protocol import (
    Connection,
    DistError,
    ProtocolError,
    obligation_from_wire,
    parse_address,
    dial,
)
from repro.engine.cache import ResultCache
from repro.engine.obligation import UNKNOWN, Verdict, solve_obligation


class Worker:
    """One pull-solve-report loop against a broker."""

    def __init__(
        self,
        address: str,
        cache_dir: Optional[str] = None,
        name: str = "",
        poll_interval: float = 0.05,
        heartbeat_interval: float = 1.0,
        max_retries: int = 10,
        retry_delay: float = 0.5,
        dial_timeout: float = 10.0,
        stable_after: float = 1.0,
    ) -> None:
        self.address: Tuple[str, int] = parse_address(address)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.name = name or f"worker-pid{os.getpid()}"
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self.dial_timeout = dial_timeout
        #: A connection must survive this long to count as a success
        #: for retry accounting (see :meth:`run`).
        self.stable_after = stable_after
        self.solved = 0
        self.cancelled = 0
        #: Solves that crashed (reported to the broker as structured
        #: failures instead of killing this worker).
        self.failed = 0
        self._stop = threading.Event()
        # Cancellation state of the job currently being solved, shared
        # between the receiver thread and the solve's cancel_check.
        self._cancel_lock = threading.Lock()
        self._current_job: Optional[Tuple[str, int]] = None
        self._cancel_flag = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until stopped or the broker stays unreachable.

        Returns the number of obligations solved (cache hits included).

        Retry accounting treats a connection that died within
        ``stable_after`` seconds exactly like a failed dial: it burns a
        retry and waits ``retry_delay`` before the next attempt.  Only a
        connection that actually lived resets the budget — otherwise a
        flapping broker (accepting dials, dropping them at once) would
        reset ``retries`` on every lap and the worker would reconnect in
        a zero-delay spin forever.
        """
        retries = 0
        try:
            while not self._stop.is_set():
                try:
                    # The armed timeout makes a black-holed broker a
                    # retryable failure instead of an eternal hang.
                    conn, _welcome = dial(self.address, role="worker",
                                          name=self.name,
                                          timeout=self.dial_timeout)
                except DistError:
                    retries += 1
                    if retries > self.max_retries:
                        raise
                    if self._stop.wait(self.retry_delay):
                        break
                    continue
                connected_at = time.monotonic()
                try:
                    self._serve(conn)
                finally:
                    conn.close()
                if self._stop.is_set():
                    break
                if time.monotonic() - connected_at >= self.stable_after:
                    retries = 0
                else:
                    retries += 1
                    if retries > self.max_retries:
                        raise DistError(
                            f"broker at {self.address[0]}:"
                            f"{self.address[1]} is flapping: "
                            f"{retries} consecutive connections died "
                            f"within {self.stable_after:.1f}s")
                    if self._stop.wait(self.retry_delay):
                        break
        finally:
            if self.cache is not None:
                self.cache.flush()
        return self.solved

    # ------------------------------------------------------------------
    def _serve(self, conn: Connection) -> None:
        """One connection's pull loop; returns when the link drops."""
        alive = threading.Event()
        alive.set()
        replies: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()

        def heartbeat() -> None:
            while alive.is_set() and not self._stop.is_set():
                if self._stop.wait(self.heartbeat_interval):
                    return
                if not alive.is_set():
                    return
                try:
                    conn.send({"type": "heartbeat"})
                except OSError:
                    return

        def receive() -> None:
            # The only reader of the socket: ordinary replies flow to
            # the pull loop; ``cancel`` pushes — which the broker sends
            # at any time, including mid-solve — are handled here.
            while alive.is_set():
                try:
                    message = conn.recv()
                except (ProtocolError, OSError):
                    message = None
                if message is None:
                    replies.put(None)
                    return
                if message.get("type") == "cancel":
                    self._on_cancel(message)
                    continue
                replies.put(message)

        pulse = threading.Thread(target=heartbeat, name="worker-heartbeat",
                                 daemon=True)
        receiver = threading.Thread(target=receive, name="worker-receiver",
                                    daemon=True)
        pulse.start()
        receiver.start()
        try:
            # The loop is *type-driven*, not strict request/response:
            # every inbound frame is handled by what it says it is, so
            # a duplicated frame in flight (a flaky path, a fault
            # injector) re-routes harmlessly — a duplicated "job" is
            # just another assignment, a stray "ok" ack is absorbed —
            # instead of desynchronizing a lockstep conversation.
            need_pull = True
            while not self._stop.is_set():
                if need_pull:
                    # A cache-less worker declines gossip: it could
                    # only discard the payloads the broker would ship.
                    conn.send({"type": "pull",
                               "gossip": self.cache is not None})
                    need_pull = False
                reply = replies.get()
                if reply is None:
                    return
                self._absorb_gossip(reply.get("gossip") or ())
                kind = reply.get("type")
                if kind == "ok":
                    continue          # ack of a reported result
                if kind == "idle":
                    if self._stop.wait(self.poll_interval):
                        return
                    need_pull = True
                    continue
                if kind != "job":
                    raise ProtocolError(f"unexpected reply {kind!r} to pull")
                key = (str(reply.get("batch_id")),
                       int(reply.get("seq", -1)))
                outcome = self._solve(reply["obligation"], key)
                if isinstance(outcome, Verdict):
                    conn.send({
                        "type": "result",
                        "batch_id": key[0],
                        "seq": key[1],
                        "verdict": outcome.to_dict(),
                    })
                elif outcome is not None:
                    # The solve crashed: report the structured failure
                    # (exception type + traceback) so the broker can
                    # tell a poison obligation from a transient fault
                    # — and keep serving instead of dying with it.
                    conn.send({
                        "type": "result",
                        "batch_id": key[0],
                        "seq": key[1],
                        "failure": outcome,
                    })
                # None: cancelled mid-solve — the broker already
                # discarded the job, nothing worth reporting.
                need_pull = True
        except OSError:
            return
        finally:
            alive.clear()
            with self._cancel_lock:
                self._current_job = None

    def _on_cancel(self, message: Dict[str, Any]) -> None:
        key = (str(message.get("batch_id")),
               int(message.get("seq", -1)))
        with self._cancel_lock:
            if self._current_job == key:
                self._cancel_flag.set()

    # ------------------------------------------------------------------
    def _solve(self, payload, key: Tuple[str, int]) \
            -> Union[Verdict, Dict[str, Any], None]:
        """Solve one job.

        Returns the :class:`Verdict`; None when the broker cancelled the
        job mid-solve; or — when the solve *crashed* — a structured
        failure report (``exc_type``/``message``/``traceback``) for the
        broker's poison-quarantine accounting.  Catching here keeps one
        pathological obligation from killing the whole worker process.
        """
        with self._cancel_lock:
            self._current_job = key
            self._cancel_flag.clear()
        try:
            obligation = obligation_from_wire(payload)
            if self.cache is not None:
                hit = self.cache.lookup(obligation)
                if hit is not None:
                    self.solved += 1
                    return hit
            verdict = solve_obligation(
                obligation, simp_cache=self.cache,
                cancel_check=lambda: (self._cancel_flag.is_set()
                                      or self._stop.is_set()),
            )
        except Exception as exc:
            self.failed += 1
            return {
                "exc_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=20),
            }
        finally:
            with self._cancel_lock:
                self._current_job = None
        if self._cancel_flag.is_set() and verdict.status == UNKNOWN:
            self.cancelled += 1
            return None
        self.solved += 1
        if self.cache is not None:
            self.cache.store(obligation, verdict)
        return verdict

    def _absorb_gossip(self, entries) -> None:
        """Write broker-gossiped verdicts through to the local cache."""
        if self.cache is None:
            return
        for entry in entries:
            try:
                fingerprint = str(entry["fingerprint"])
                verdict = Verdict.from_dict(entry["verdict"])
            except (KeyError, TypeError, ValueError):
                continue
            if verdict.fingerprint != fingerprint:
                continue
            if self.cache.has(fingerprint):
                continue  # our own solve gossiped back, or already seen
            self.cache.store_verdict(verdict, meta={"gossip": True})


def run_worker(address: str, cache_dir: Optional[str] = None,
               **kwargs) -> int:
    """Run a worker loop to completion (module-level so tests can use it
    as a ``multiprocessing`` target)."""
    return Worker(address, cache_dir=cache_dir, **kwargs).run()
