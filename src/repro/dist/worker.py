"""The proof-service worker daemon.

A worker dials the broker, registers via the versioned handshake and
then loops: pull an obligation, solve it with the exact same pure
function local pools use (:func:`repro.engine.obligation.solve_obligation`
— same preprocessing stack, same CDCL search, hence bit-identical
verdicts no matter which machine runs the job), stream the verdict back.

With a ``cache_dir`` the worker fronts solving with a local
:class:`repro.engine.cache.ResultCache`: verdict hits skip the solve
entirely, warm-started simplified clause databases skip the
preprocessing pass, and every *gossiped* verdict the broker piggybacks
on a pull is written through — so a fleet of workers sharing nothing but
the broker converges to a common proof cache.

While a solve runs, a side thread heartbeats on the same connection so
the broker can tell a busy worker from a dead one.  A lost broker
connection is retried with backoff (work in flight during the loss is
the broker's problem: it requeues on disconnect).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional, Tuple

from repro.dist.protocol import (
    Connection,
    DistError,
    ProtocolError,
    obligation_from_wire,
    parse_address,
    dial,
)
from repro.engine.cache import ResultCache
from repro.engine.obligation import Verdict, solve_obligation


class Worker:
    """One pull-solve-report loop against a broker."""

    def __init__(
        self,
        address: str,
        cache_dir: Optional[str] = None,
        name: str = "",
        poll_interval: float = 0.05,
        heartbeat_interval: float = 1.0,
        max_retries: int = 10,
        retry_delay: float = 0.5,
        dial_timeout: float = 10.0,
    ) -> None:
        self.address: Tuple[str, int] = parse_address(address)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.name = name or f"worker-pid{os.getpid()}"
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self.dial_timeout = dial_timeout
        self.solved = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until stopped or the broker stays unreachable.

        Returns the number of obligations solved (cache hits included).
        """
        retries = 0
        try:
            while not self._stop.is_set():
                try:
                    # The armed timeout makes a black-holed broker a
                    # retryable failure instead of an eternal hang.
                    conn, _welcome = dial(self.address, role="worker",
                                          name=self.name,
                                          timeout=self.dial_timeout)
                except DistError:
                    retries += 1
                    if retries > self.max_retries:
                        raise
                    if self._stop.wait(self.retry_delay):
                        break
                    continue
                retries = 0
                try:
                    self._serve(conn)
                finally:
                    conn.close()
        finally:
            if self.cache is not None:
                self.cache.flush()
        return self.solved

    # ------------------------------------------------------------------
    def _serve(self, conn: Connection) -> None:
        """One connection's pull loop; returns when the link drops."""
        alive = threading.Event()
        alive.set()

        def heartbeat() -> None:
            while alive.is_set() and not self._stop.is_set():
                if self._stop.wait(self.heartbeat_interval):
                    return
                if not alive.is_set():
                    return
                try:
                    conn.send({"type": "heartbeat"})
                except OSError:
                    return

        pulse = threading.Thread(target=heartbeat, name="worker-heartbeat",
                                 daemon=True)
        pulse.start()
        try:
            while not self._stop.is_set():
                # A cache-less worker declines gossip: it could only
                # discard the verdict payloads the broker would ship.
                conn.send({"type": "pull",
                           "gossip": self.cache is not None})
                reply = self._recv(conn)
                if reply is None:
                    return
                self._absorb_gossip(reply.get("gossip") or ())
                kind = reply.get("type")
                if kind == "idle":
                    if self._stop.wait(self.poll_interval):
                        return
                    continue
                if kind != "job":
                    raise ProtocolError(f"unexpected reply {kind!r} to pull")
                verdict = self._solve(reply["obligation"])
                conn.send({
                    "type": "result",
                    "batch_id": reply.get("batch_id"),
                    "seq": reply.get("seq"),
                    "verdict": verdict.to_dict(),
                })
                if self._recv(conn) is None:   # ack ("ok")
                    return
        except OSError:
            return
        finally:
            alive.clear()

    @staticmethod
    def _recv(conn: Connection):
        try:
            return conn.recv()
        except ProtocolError:
            return None

    # ------------------------------------------------------------------
    def _solve(self, payload) -> Verdict:
        obligation = obligation_from_wire(payload)
        if self.cache is not None:
            hit = self.cache.lookup(obligation)
            if hit is not None:
                self.solved += 1
                return hit
        verdict = solve_obligation(obligation, simp_cache=self.cache)
        self.solved += 1
        if self.cache is not None:
            self.cache.store(obligation, verdict)
        return verdict

    def _absorb_gossip(self, entries) -> None:
        """Write broker-gossiped verdicts through to the local cache."""
        if self.cache is None:
            return
        for entry in entries:
            try:
                fingerprint = str(entry["fingerprint"])
                verdict = Verdict.from_dict(entry["verdict"])
            except (KeyError, TypeError, ValueError):
                continue
            if verdict.fingerprint != fingerprint:
                continue
            if self.cache.has(fingerprint):
                continue  # our own solve gossiped back, or already seen
            self.cache.store_verdict(verdict, meta={"gossip": True})


def run_worker(address: str, cache_dir: Optional[str] = None,
               **kwargs) -> int:
    """Run a worker loop to completion (module-level so tests can use it
    as a ``multiprocessing`` target)."""
    return Worker(address, cache_dir=cache_dir, **kwargs).run()
