"""SAT-based formal verification engine.

Layers, bottom up: CDCL solver (:mod:`repro.formal.solver`), CNF
pre-/inprocessing (:mod:`repro.formal.preprocess`), AIG with structural
hashing and Tseitin CNF mapping (:mod:`repro.formal.aig`), word-level
bit-blasting (:mod:`repro.formal.bitblast`), sequential unrolling
(:mod:`repro.formal.unroll`) and the BMC/IPC driver (:mod:`repro.formal.bmc`).
"""

from repro.formal.aig import Aig, CnfMapper
from repro.formal.bmc import BmcEngine, BmcResult, SatContext, Witness
from repro.formal.bitblast import BitBlaster, bits_to_int, const_bits
from repro.formal.dimacs import read_dimacs, write_dimacs
from repro.formal.induction import InductionResult, prove_by_induction
from repro.formal.preprocess import (
    Simplifier,
    SimplifyingSolver,
    SimplifyResult,
    SimplifyStats,
    reconstruct_model,
    simplify_clauses,
)
from repro.formal.solver import CdclSolver, luby_sequence
from repro.formal.unroll import Unroller

__all__ = [
    "Aig",
    "BitBlaster",
    "BmcEngine",
    "BmcResult",
    "CdclSolver",
    "CnfMapper",
    "InductionResult",
    "SatContext",
    "Simplifier",
    "SimplifyingSolver",
    "SimplifyResult",
    "SimplifyStats",
    "Unroller",
    "Witness",
    "bits_to_int",
    "const_bits",
    "luby_sequence",
    "prove_by_induction",
    "read_dimacs",
    "reconstruct_model",
    "simplify_clauses",
    "write_dimacs",
]
