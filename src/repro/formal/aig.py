"""And-Inverter Graph with structural hashing.

The AIG is the bit-level backbone of the formal engine.  Word-level
expressions are bit-blasted into AIG literals; the two-instance UPEC miter
relies on structural hashing to merge all logic outside the secret's cone of
influence (both SoC instances share input and register variables wherever the
initial states are constrained equal, so identical cones hash to identical
nodes — the complexity mitigation of Sec. V-B of the paper).

Literal encoding: node index ``n`` has positive literal ``2n`` and negated
literal ``2n + 1``.  Node 0 is the constant FALSE, so literal 0 is FALSE and
literal 1 is TRUE.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import FormalError
from repro.formal.solver import CdclSolver

FALSE = 0
TRUE = 1


class Aig:
    """A mutable AIG with hash-consed AND nodes."""

    def __init__(self) -> None:
        # nodes[i] is None for inputs/constant, else (lit_a, lit_b).
        self._nodes: List[Optional[Tuple[int, int]]] = [None]  # node 0 = FALSE
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_input(self) -> int:
        """Allocate a fresh primary input; returns its positive literal."""
        self._nodes.append(None)
        return 2 * (len(self._nodes) - 1)

    def new_inputs(self, count: int) -> List[int]:
        return [self.new_input() for _ in range(count)]

    def const(self, value: bool) -> int:
        return TRUE if value else FALSE

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with standard simplifications."""
        if a == FALSE or b == FALSE or a == (b ^ 1):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        key = (a, b) if a < b else (b, a)
        node = self._strash.get(key)
        if node is not None:
            return 2 * node
        self._nodes.append(key)
        node = len(self._nodes) - 1
        self._strash[key] = node
        return 2 * node

    def not_(self, a: int) -> int:
        return a ^ 1

    def or_(self, a: int, b: int) -> int:
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor_(self, a: int, b: int) -> int:
        # (a & ~b) | (~a & b)
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def xnor_(self, a: int, b: int) -> int:
        return self.xor_(a, b) ^ 1

    def mux_(self, sel: int, if_true: int, if_false: int) -> int:
        if sel == TRUE:
            return if_true
        if sel == FALSE:
            return if_false
        if if_true == if_false:
            return if_true
        return self.or_(self.and_(sel, if_true), self.and_(sel ^ 1, if_false))

    def and_all(self, lits: Iterable[int]) -> int:
        result = TRUE
        for lit in lits:
            result = self.and_(result, lit)
        return result

    def or_all(self, lits: Iterable[int]) -> int:
        result = FALSE
        for lit in lits:
            result = self.or_(result, lit)
        return result

    def implies_(self, a: int, b: int) -> int:
        return self.or_(a ^ 1, b)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of nodes (including constant and inputs)."""
        return len(self._nodes)

    def num_ands(self) -> int:
        return sum(1 for n in self._nodes if n is not None)

    def is_input(self, lit: int) -> bool:
        node = lit >> 1
        return node != 0 and self._nodes[node] is None

    def fanins(self, lit: int) -> Optional[Tuple[int, int]]:
        return self._nodes[lit >> 1]

    def cone(self, roots: Sequence[int]) -> List[int]:
        """Nodes (indices) in the transitive fan-in of ``roots``, topologically
        ordered (children first).  AND nodes only."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, bool]] = []
        for root in roots:
            stack.append((root >> 1, False))
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            fanins = self._nodes[node]
            if fanins is None:
                continue  # input or constant
            stack.append((node, True))
            stack.append((fanins[0] >> 1, False))
            stack.append((fanins[1] >> 1, False))
        return order

    # ------------------------------------------------------------------
    # Evaluation (testing / counterexample replay)
    # ------------------------------------------------------------------
    def evaluate(self, roots: Sequence[int], inputs: Dict[int, bool]) -> List[bool]:
        """Evaluate root literals given input-literal assignments.

        ``inputs`` maps positive input literals to boolean values.
        """
        values: Dict[int, bool] = {0: False}
        for lit, val in inputs.items():
            if lit & 1:
                raise FormalError("input assignments must use positive literals")
            values[lit >> 1] = bool(val)

        def lit_value(lit: int) -> bool:
            return values[lit >> 1] ^ bool(lit & 1)

        for node in self.cone(roots):
            fanins = self._nodes[node]
            assert fanins is not None
            values[node] = lit_value(fanins[0]) and lit_value(fanins[1])
        result = []
        for root in roots:
            if (root >> 1) not in values:
                raise FormalError(f"unassigned input node {root >> 1}")
            result.append(lit_value(root))
        return result


class CnfMapper:
    """Incremental Tseitin transformation of AIG cones into a solver.

    Each AIG node is mapped to a solver variable on demand; repeated calls
    share previously emitted clauses, so the UPEC methodology can assert many
    different proof obligations over one unrolled model.
    """

    def __init__(self, aig: Aig, solver: Optional[CdclSolver] = None) -> None:
        self.aig = aig
        self.solver = solver if solver is not None else CdclSolver()
        self._node_var: Dict[int, int] = {}
        self.clauses_emitted = 0
        # A recording solver (ClauseLog) learns which clauses define
        # which gate variable — that is what gives cone-of-influence
        # slicing its fan-in direction.  Plain solvers skip it.
        self._note_definition = getattr(self.solver, "note_definition", None)

    def lit_to_solver(self, lit: int) -> int:
        """Return the DIMACS literal corresponding to an AIG literal,
        emitting Tseitin clauses for its cone as needed."""
        if lit == FALSE or lit == TRUE:
            # Materialize a constant variable once.  Its defining unit is
            # frame-independent, so shield it from any frame tag the
            # recording solver is currently applying to asserted units —
            # a sliced obligation must never drop the constant's clause.
            var = self._node_var.get(0)
            if var is None:
                var = self.solver.new_var()
                tag = getattr(self.solver, "unit_tag", None)
                if tag is not None:
                    self.solver.unit_tag = None
                self.solver.add_clause([-var])  # node 0 is FALSE
                if tag is not None:
                    self.solver.unit_tag = tag
                self._node_var[0] = var
            return -var if lit == TRUE else var
        node = lit >> 1
        if node not in self._node_var:
            for inner in self.aig.cone([lit]):
                if inner in self._node_var:
                    continue
                fanins = self.aig.fanins(inner * 2)
                assert fanins is not None
                a = self._leaf_or_var(fanins[0])
                b = self._leaf_or_var(fanins[1])
                v = self.solver.new_var()
                # v <-> a & b
                self.solver.add_clause([-v, a])
                self.solver.add_clause([-v, b])
                self.solver.add_clause([v, -a, -b])
                if self._note_definition is not None:
                    self._note_definition(v, 3)
                self.clauses_emitted += 3
                self._node_var[inner] = v
            if node not in self._node_var:
                # Root is an input node; allocate a variable for it.
                self._node_var[node] = self.solver.new_var()
        var = self._node_var[node]
        return -var if lit & 1 else var

    def _leaf_or_var(self, lit: int) -> int:
        node = lit >> 1
        if node == 0:
            return self.lit_to_solver(lit)
        if node not in self._node_var:
            if self.aig.fanins(lit) is None:
                self._node_var[node] = self.solver.new_var()
            else:  # pragma: no cover - cone() yields children first
                raise FormalError("AND node visited before its children")
        var = self._node_var[node]
        return -var if lit & 1 else var

    def assert_true(self, lit: int) -> None:
        """Add a unit clause forcing an AIG literal to hold."""
        self.solver.add_clause([self.lit_to_solver(lit)])

    def freeze_lit(self, lit: int) -> None:
        """Mark an AIG literal's variable as witness-relevant: a
        simplifying solver must not eliminate it, so counterexample
        values come from the search rather than from don't-care
        reconstruction.  No-op for solvers without frozen variables."""
        freeze = getattr(self.solver, "freeze_var", None)
        if freeze is None:
            return
        var = self.lit_to_solver(lit)
        freeze(abs(var))

    def assumption(self, lit: int) -> int:
        """DIMACS literal usable as a solver assumption."""
        return self.lit_to_solver(lit)

    def model_lit(self, lit: int) -> bool:
        """Value of an AIG literal in the solver's current model.

        For in-process models, literals never sent to the solver are
        unconstrained and default to False (don't-care semantics in
        counterexamples).  Under an *adopted* external model (a worker
        verdict, possibly from a sliced obligation) unmapped gates are
        instead evaluated from their fan-in, so witness reads are a
        consistent execution of the circuit no matter which clauses the
        obligation carried or how far this context happened to grow.
        """
        if lit == FALSE:
            return False
        if lit == TRUE:
            return True
        node = lit >> 1
        var = self._node_var.get(node)
        if var is None:
            if getattr(self.solver, "_adopted", None) is not None:
                return bool(lit & 1) ^ self._eval_unmapped(node)
            return bool(lit & 1) ^ bool(self._free_value(node))
        return self.solver.model_value(-var if lit & 1 else var)

    def _eval_unmapped(self, node: int) -> bool:
        """Evaluate an unmapped node's cone, grounding at mapped nodes
        (their adopted model values) and at free inputs (False)."""
        solver = self.solver
        node_var = self._node_var
        values: Dict[int, bool] = {0: False}
        stack: List[Tuple[int, bool]] = [(node, False)]
        while stack:
            inner, expanded = stack.pop()
            if expanded:
                a, b = self.aig.fanins(2 * inner)
                va = values[a >> 1] ^ bool(a & 1)
                vb = values[b >> 1] ^ bool(b & 1)
                values[inner] = va and vb
                continue
            if inner in values:
                continue
            var = node_var.get(inner)
            if var is not None:
                values[inner] = solver.model_value(var)
                continue
            fanins = self.aig.fanins(2 * inner)
            if fanins is None:
                values[inner] = False  # free input outside every cone
                continue
            stack.append((inner, True))
            stack.append((fanins[0] >> 1, False))
            stack.append((fanins[1] >> 1, False))
        return values[node]

    @staticmethod
    def _free_value(node: int) -> bool:
        return False
