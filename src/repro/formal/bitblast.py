"""Bit-blasting: word-level expressions to AIG literal vectors.

A word of width ``w`` becomes a list of ``w`` AIG literals, LSB first.
Arithmetic uses ripple-carry structures; comparisons use borrow chains.
The blaster is purely combinational — registers and inputs are *leaves*
whose literal vectors are supplied by the environment (the unroller).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import FormalError
from repro.formal.aig import Aig
from repro.hdl.analysis import topo_order
from repro.hdl.expr import (
    OP_ADD,
    OP_AND,
    OP_CAT,
    OP_CONST,
    OP_EQ,
    OP_INPUT,
    OP_LSHR,
    OP_MUX,
    OP_NE,
    OP_NOT,
    OP_OR,
    OP_REDAND,
    OP_REDOR,
    OP_REG,
    OP_SHL,
    OP_SLICE,
    OP_SUB,
    OP_ULE,
    OP_ULT,
    OP_XOR,
    Expr,
)

Bits = List[int]


def const_bits(aig: Aig, value: int, width: int) -> Bits:
    """Literal vector for a constant."""
    return [aig.const(bool((value >> i) & 1)) for i in range(width)]


def bits_to_int(bits: Sequence[bool]) -> int:
    """Pack a boolean vector (LSB first) into an int."""
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


def ripple_adder(aig: Aig, a: Bits, b: Bits, carry_in: int) -> Bits:
    """Ripple-carry addition; result has the width of the operands."""
    if len(a) != len(b):
        raise FormalError("adder operands must share a width")
    result: Bits = []
    carry = carry_in
    for abit, bbit in zip(a, b):
        axb = aig.xor_(abit, bbit)
        result.append(aig.xor_(axb, carry))
        carry = aig.or_(aig.and_(abit, bbit), aig.and_(axb, carry))
    return result


def subtractor(aig: Aig, a: Bits, b: Bits) -> Bits:
    """a - b as a + ~b + 1."""
    return ripple_adder(aig, a, [bit ^ 1 for bit in b], aig.const(True))


def equals(aig: Aig, a: Bits, b: Bits) -> int:
    if len(a) != len(b):
        raise FormalError("equality operands must share a width")
    return aig.and_all(aig.xnor_(x, y) for x, y in zip(a, b))


def unsigned_less_than(aig: Aig, a: Bits, b: Bits) -> int:
    """a < b via the final borrow of a - b."""
    if len(a) != len(b):
        raise FormalError("comparison operands must share a width")
    borrow = aig.const(False)
    for abit, bbit in zip(a, b):
        # borrow' = (~a & b) | ((~a | b) & borrow)
        not_a = abit ^ 1
        borrow = aig.or_(
            aig.and_(not_a, bbit), aig.and_(aig.or_(not_a, bbit), borrow)
        )
    return borrow


def mux_bits(aig: Aig, sel: int, if_true: Bits, if_false: Bits) -> Bits:
    if len(if_true) != len(if_false):
        raise FormalError("mux arms must share a width")
    return [aig.mux_(sel, t, f) for t, f in zip(if_true, if_false)]


class BitBlaster:
    """Blast the combinational cone of expressions into an AIG.

    ``leaf_bits`` supplies literal vectors for registers and inputs; the
    memo dictionary is owned by the caller so that one blaster instance can
    serve a whole unrolled frame.
    """

    def __init__(
        self,
        aig: Aig,
        leaf_bits: Callable[[Expr], Bits],
        memo: Dict[int, "Tuple[Expr, Bits]"],
    ) -> None:
        self.aig = aig
        self.leaf_bits = leaf_bits
        # The memo keys by id(expr) and stores the expression itself along
        # with its bits: keeping a strong reference prevents id() reuse
        # after garbage collection from aliasing distinct expressions.
        self.memo = memo

    def blast(self, expr: Expr) -> Bits:
        """Return the literal vector of ``expr`` (memoized)."""
        cached = self.memo.get(id(expr))
        if cached is not None:
            return cached[1]
        aig = self.aig
        memo = self.memo
        for node in topo_order([expr]):
            key = id(node)
            if key in memo:
                continue
            memo[key] = (node, self._blast_node(node))
        return memo[id(expr)][1]

    def _blast_node(self, node: Expr) -> Bits:
        aig = self.aig
        memo = self.memo
        op = node.op
        if op == OP_CONST:
            return const_bits(aig, node.params[0], node.width)
        if op in (OP_REG, OP_INPUT):
            bits = self.leaf_bits(node)
            if len(bits) != node.width:
                raise FormalError(
                    f"leaf {node.params[0]!r}: expected {node.width} bits, "
                    f"got {len(bits)}"
                )
            return bits
        args = [memo[id(a)][1] for a in node.args]
        if op == OP_NOT:
            return [bit ^ 1 for bit in args[0]]
        if op == OP_AND:
            return [aig.and_(x, y) for x, y in zip(args[0], args[1])]
        if op == OP_OR:
            return [aig.or_(x, y) for x, y in zip(args[0], args[1])]
        if op == OP_XOR:
            return [aig.xor_(x, y) for x, y in zip(args[0], args[1])]
        if op == OP_ADD:
            return ripple_adder(aig, args[0], args[1], aig.const(False))
        if op == OP_SUB:
            return subtractor(aig, args[0], args[1])
        if op == OP_EQ:
            return [equals(aig, args[0], args[1])]
        if op == OP_NE:
            return [equals(aig, args[0], args[1]) ^ 1]
        if op == OP_ULT:
            return [unsigned_less_than(aig, args[0], args[1])]
        if op == OP_ULE:
            return [unsigned_less_than(aig, args[1], args[0]) ^ 1]
        if op == OP_MUX:
            return mux_bits(aig, args[0][0], args[1], args[2])
        if op == OP_CAT:
            bits: Bits = []
            for part in args:
                bits.extend(part)
            return bits
        if op == OP_SLICE:
            lo, hi = node.params
            return args[0][lo:hi]
        if op == OP_SHL:
            amount = node.params[0]
            inner = args[0]
            if amount >= len(inner):
                return const_bits(aig, 0, len(inner))
            return const_bits(aig, 0, amount) + inner[: len(inner) - amount]
        if op == OP_LSHR:
            amount = node.params[0]
            inner = args[0]
            if amount >= len(inner):
                return const_bits(aig, 0, len(inner))
            return inner[amount:] + const_bits(aig, 0, amount)
        if op == OP_REDOR:
            return [self.aig.or_all(args[0])]
        if op == OP_REDAND:
            return [self.aig.and_all(args[0])]
        raise FormalError(f"cannot bit-blast operator {op!r}")
