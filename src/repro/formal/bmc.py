"""Bounded model checking / interval property checking driver.

:class:`SatContext` owns the AIG, the CNF mapping and the solver, and lets
clients assert AIG literals permanently or pass them as per-query
assumptions (the incremental interface used by the UPEC methodology).

:class:`BmcEngine` is the single-circuit front end: safety properties of the
form "assumptions during t..t+k imply the assertion at every cycle" with a
reset or symbolic (any-state, IPC-style) initial state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import FormalError
from repro.formal.aig import Aig, CnfMapper
from repro.formal.bitblast import bits_to_int
from repro.formal.preprocess import SimplifyingSolver
from repro.formal.solver import CdclSolver
from repro.formal.unroll import Unroller
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Expr, Reg


class ClauseLog:
    """Transparent solver proxy that records the asserted CNF.

    :class:`SatContext` routes every clause through this wrapper so the
    full problem formula is available as data — that is what lets a
    context *export* self-contained proof obligations instead of only
    solving them in place.  The log also supports adopting a model that
    was computed elsewhere (by a worker process or a cache hit), so
    witness extraction reads external models through the exact same
    ``model_value`` path as in-process ones.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.clauses: List[List[int]] = []
        self.frozen: Set[int] = set()
        self._adopted: Optional[List[bool]] = None
        #: Per-clause frame tag (None = frame-independent).  Clients set
        #: ``unit_tag`` around an assertion so the obligation slicer can
        #: exclude units belonging to later frames.
        self.tags: List[Optional[int]] = []
        self.unit_tag: Optional[int] = None
        #: var -> indices of the clauses that define it (Tseitin triples,
        #: claimed by :meth:`note_definition`); ``roots`` holds the
        #: indices of every unclaimed clause (asserted units).  Together
        #: they give the cone-of-influence slicer its fan-in direction.
        self.definitions: Dict[int, List[int]] = {}
        self.roots: List[int] = []
        if hasattr(inner, "freeze_var"):
            # Only advertise freezing when the inner solver supports it:
            # CnfMapper.freeze_lit probes with getattr and must keep
            # skipping cone emission for plain CDCL contexts.
            self.freeze_var = self._freeze_var

    def add_clause(self, lits) -> bool:
        # The inner solvers build their own normalized copies, so the
        # log can keep the caller's list (CnfMapper always passes fresh
        # ones) instead of copying every clause on the emission path.
        clause = lits if type(lits) is list else list(lits)
        self.roots.append(len(self.clauses))
        self.clauses.append(clause)
        self.tags.append(self.unit_tag)
        return self.inner.add_clause(clause)

    def note_definition(self, var: int, count: int) -> None:
        """Claim the last ``count`` clauses as the definition of ``var``
        (called by :class:`~repro.formal.aig.CnfMapper` right after it
        emits a gate's Tseitin triple)."""
        self.definitions[var] = self.roots[-count:]
        del self.roots[-count:]

    def add_clauses(self, clauses) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def _freeze_var(self, var: int) -> None:
        self.frozen.add(var)
        self.inner.freeze_var(var)

    def solve(self, assumptions: Sequence[int] = (),
              conflict_limit: Optional[int] = None,
              deadline: Optional[float] = None) -> Optional[bool]:
        self._adopted = None
        return self.inner.solve(assumptions=assumptions,
                                conflict_limit=conflict_limit,
                                deadline=deadline)

    def adopt_model(self, model: Sequence[bool]) -> None:
        """Install an externally computed model; ``model_value`` reads it
        until the next in-process ``solve``."""
        self._adopted = list(model)

    def model_value(self, lit: int) -> bool:
        if self._adopted is not None:
            var = abs(lit)
            value = self._adopted[var] if var < len(self._adopted) else False
            return value if lit > 0 else not value
        return self.inner.model_value(lit)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


class SatContext:
    """Shared AIG + CNF + solver state for a sequence of related queries.

    With ``simplify=True`` (the default) the CNF goes through the
    SatELite-style pre-/inprocessor of :mod:`repro.formal.preprocess`
    before every search; ``simplify=False`` solves the raw Tseitin CNF.

    Queries can either be solved in place (:meth:`solve`, incremental)
    or exported as self-contained :class:`ProofObligation` values
    (:meth:`export_obligation`) for the scheduler/cache layers of
    :mod:`repro.engine`.
    """

    def __init__(self, simplify: bool = True) -> None:
        self.aig = Aig()
        self.simplify = simplify
        self.solver = ClauseLog(
            SimplifyingSolver() if simplify else CdclSolver()
        )
        self.mapper = CnfMapper(self.aig, self.solver)
        self._slice_totals: Dict[str, int] = {}

    def assert_lit(self, lit: int, frame: Optional[int] = None) -> None:
        """Permanently assert an AIG literal.

        ``frame`` tags the resulting unit clause with the unrolling frame
        it belongs to, so sliced obligations for earlier frames can leave
        it (and its cone) out."""
        log = self.solver
        log.unit_tag = frame
        try:
            self.mapper.assert_true(lit)
        finally:
            log.unit_tag = None

    def bump_stat(self, key: str, amount: int = 1) -> None:
        """Accumulate an export-side counter into :meth:`stats` (used by
        the slicing and frame-splitting layers)."""
        self._slice_totals[key] = self._slice_totals.get(key, 0) + amount

    def export_obligation(
        self,
        name: str,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        wall_budget: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
        slice: Optional[bool] = None,
        frame: Optional[int] = None,
        disjunction: bool = False,
    ):
        """Snapshot the current formula plus AIG-literal assumptions as a
        serializable :class:`repro.engine.obligation.ProofObligation`.

        With slicing (the default, see ``REPRO_ENGINE_SLICE``) the
        obligation carries only the cone of influence of the assumptions
        and the asserted units — canonically renumbered, so its
        fingerprint does not depend on how the shared context grew.
        ``frame`` additionally drops units tagged with a later frame
        (the UPEC per-frame window assumptions).

        With ``disjunction=True`` the mapped assumption literals become
        a single appended root clause (their OR) and the obligation
        carries no assumptions: SAT iff *any* of the literals is
        satisfiable with the formula.  This is how the frame splitter
        (:mod:`repro.engine.split`) batches a register group into one
        obligation without emitting new OR gates into the shared CNF.
        """
        from repro.engine.obligation import ProofObligation
        from repro.engine.slice import env_slice, slice_cnf

        # Mapping the assumptions may emit their cones; do it before the
        # clause snapshot so the obligation is self-contained.
        dimacs = [self.mapper.assumption(lit) for lit in assumptions]
        log = self.solver
        totals = self._slice_totals
        totals["obligations_exported"] = \
            totals.get("obligations_exported", 0) + 1
        if env_slice() if slice is None else slice:
            sliced = slice_cnf(
                clauses=log.clauses,
                nvars=log.nvars,
                definitions=log.definitions,
                roots=log.roots,
                tags=log.tags,
                assumptions=dimacs,
                frozen=log.frozen,
                unit_cutoff=frame,
            )
            totals["obligations_sliced"] = \
                totals.get("obligations_sliced", 0) + 1
            for key, value in sliced.stats().items():
                totals[key] = totals.get(key, 0) + value
            clauses = sliced.clauses
            query = sliced.assumptions
            if disjunction:
                clauses = clauses + [query]
                query = []
            return ProofObligation(
                name=name,
                nvars=sliced.nvars,
                clauses=clauses,
                assumptions=query,
                frozen=sliced.frozen,
                simplify=self.simplify,
                conflict_limit=conflict_limit,
                wall_budget=wall_budget,
                meta=dict(meta or {}),
                remap=sliced.remap,
                orig_nvars=log.nvars,
            )
        clauses = list(log.clauses)
        if disjunction:
            clauses.append(list(dimacs))
            dimacs = []
        return ProofObligation(
            name=name,
            nvars=log.nvars,
            clauses=clauses,
            assumptions=dimacs,
            frozen=sorted(log.frozen),
            simplify=self.simplify,
            conflict_limit=conflict_limit,
            wall_budget=wall_budget,
            meta=dict(meta or {}),
            orig_nvars=log.nvars,
        )

    def adopt_model(self, model: Sequence[bool]) -> None:
        """Expose an external verdict's model to ``value``/``word_value``."""
        self.solver.adopt_model(model)

    def complete_model(self, obligation, values: Sequence[bool]) -> List[bool]:
        """Extend a (possibly sliced) obligation's model to the full
        context formula.

        Variables the slice kept take the worker's values via the remap
        (the identity when ``remap`` is None); every gate variable the
        slice dropped — or that was only mapped *after* the export, as
        the shared context kept growing — is *evaluated* from its
        recorded Tseitin definition (children were emitted first, so one
        forward pass suffices).  The result is a consistent execution of
        the recorded formula — witness traces read through ``value`` /
        ``word_value`` never show gate values that contradict their
        fan-in — rather than a zero-fill that merely matches on the
        sliced variables.
        """
        log = self.solver
        model = [False] * (log.nvars + 1)
        known = bytearray(log.nvars + 1)
        n = len(values)
        if obligation.remap is None:
            for var in range(1, min(n, log.nvars + 1)):
                model[var] = values[var]
                known[var] = 1
        else:
            for new in range(1, len(obligation.remap)):
                old = obligation.remap[new]
                if old <= log.nvars:
                    model[old] = values[new] if new < n else False
                    known[old] = 1
        clauses = log.clauses
        for var, def_idx in log.definitions.items():
            if known[var]:
                continue
            # v <-> a & b: the triple's first two clauses are [-v, a]
            # and [-v, b]; fan-in variables precede v in emission order,
            # so their values (kept, evaluated, or free-input False) are
            # final by the time v is reached.
            c0 = clauses[def_idx[0]]
            c1 = clauses[def_idx[1]]
            a = c0[1] if c0[0] == -var else c0[0]
            b = c1[1] if c1[0] == -var else c1[0]
            va = model[a] if a > 0 else not model[-a]
            vb = model[b] if b > 0 else not model[-b]
            model[var] = va and vb
            known[var] = 1
        return model

    def adopt_verdict(self, obligation, verdict) -> None:
        """Adopt a worker verdict's model for witness extraction,
        completing out-of-slice gates via :meth:`complete_model`."""
        self.adopt_model(self.complete_model(obligation,
                                             verdict.model_list()))

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        """Solve under AIG-literal assumptions.

        Returns True (SAT), False (UNSAT) or None (conflict limit or
        wall-clock ``deadline`` reached — the solver's ``stop_reason``
        says which).
        """
        dimacs = [self.mapper.assumption(lit) for lit in assumptions]
        return self.solver.solve(assumptions=dimacs,
                                 conflict_limit=conflict_limit,
                                 deadline=deadline)

    def value(self, lit: int) -> bool:
        """Model value of an AIG literal after a SAT result."""
        return self.mapper.model_lit(lit)

    def word_value(self, bits: Sequence[int]) -> int:
        """Model value of a literal vector as an unsigned integer."""
        return bits_to_int([self.value(bit) for bit in bits])

    def stats(self) -> Dict[str, int]:
        data = self.solver.stats.as_dict()
        data["aig_nodes"] = len(self.aig)
        data["cnf_vars"] = self.solver.nvars
        data["cnf_clauses_emitted"] = self.mapper.clauses_emitted
        data.update(self._slice_totals)
        simp = getattr(self.solver, "simplify_stats", None)
        if simp is not None:
            for key, value in simp.as_dict().items():
                data[f"simplify_{key}"] = value
        return data


@dataclass
class Witness:
    """A counterexample trace: register values per frame."""

    frames: List[Dict[str, int]]
    failed_frame: int
    inputs: List[Dict[str, int]] = field(default_factory=list)

    def value(self, reg_name: str, frame: int) -> int:
        return self.frames[frame][reg_name]

    def render(self, signals: Optional[Sequence[str]] = None) -> str:
        from repro.sim.trace import Trace

        names = list(signals) if signals else sorted(self.frames[0])
        trace = Trace(names)
        for frame in self.frames:
            trace.record({name: frame.get(name, 0) for name in names})
        return trace.render()


@dataclass
class BmcResult:
    """Outcome of a bounded check."""

    holds: bool
    depth: int
    witness: Optional[Witness] = None
    runtime_s: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


class BmcEngine:
    """Bounded safety checking of one circuit.

    With ``engine`` set (a :class:`repro.engine.ProofEngine`), each
    frame's query is exported as a proof obligation and dispatched to
    the scheduler/cache layers; otherwise queries are solved on the
    context's incremental in-process solver.

    ``split`` is accepted for uniformity with the UPEC stack (the
    ``REPRO_ENGINE_SPLIT`` knob applies everywhere) but is a no-op
    here: a BMC frame's target is a single assertion literal — there is
    no commitment disjunction to split.
    """

    def __init__(self, circuit: Circuit, init: str = "reset",
                 simplify: bool = True, engine=None,
                 slice: Optional[bool] = None,
                 split: Optional[bool] = None) -> None:
        self.circuit = circuit.finalize()
        self.context = SatContext(simplify=simplify)
        self.unroller = Unroller(circuit, self.context.aig, init=init)
        self.slice = slice
        self.split = split
        from repro.engine.pool import resolve_engine

        self.engine = resolve_engine(engine)

    def extract_witness(self, depth: int, failed_frame: int) -> Witness:
        frames: List[Dict[str, int]] = []
        for t in range(depth + 1):
            values: Dict[str, int] = {}
            for reg in self.circuit.regs.values():
                values[reg.name] = self.context.word_value(
                    self.unroller.reg_bits(reg, t)
                )
            frames.append(values)
        return Witness(frames=frames, failed_frame=failed_frame)

    def check_always(
        self,
        assertion: Expr,
        k: int,
        assumptions: Sequence[Expr] = (),
        initial_assumptions: Sequence[Expr] = (),
        conflict_limit: Optional[int] = None,
    ) -> BmcResult:
        """Check that ``assertion`` holds at cycles 0..k.

        ``assumptions`` are constrained at every cycle of the window;
        ``initial_assumptions`` only at cycle 0.
        """
        if assertion.width != 1:
            raise FormalError("assertion must be a 1-bit expression")
        start = time.perf_counter()
        self.unroller.extend_to(k)
        for expr in initial_assumptions:
            self.context.assert_lit(self.unroller.expr_lit(expr, 0), frame=0)
        for t in range(k + 1):
            for expr in assumptions:
                self.context.assert_lit(self.unroller.expr_lit(expr, t),
                                        frame=t)
        if self.engine is not None:
            return self._check_frames_engine(k, assertion, conflict_limit,
                                             start)
        for t in range(k + 1):
            bad = self.unroller.expr_lit(assertion, t) ^ 1
            outcome = self.context.solve(
                assumptions=[bad], conflict_limit=conflict_limit
            )
            if outcome is None:
                raise FormalError(
                    f"conflict limit exhausted at frame {t} "
                    f"(limit={conflict_limit})"
                )
            if outcome:
                witness = self.extract_witness(k, t)
                return BmcResult(
                    holds=False,
                    depth=t,
                    witness=witness,
                    runtime_s=time.perf_counter() - start,
                    stats=self.context.stats(),
                )
        return BmcResult(
            holds=True,
            depth=k,
            runtime_s=time.perf_counter() - start,
            stats=self.context.stats(),
        )

    def _check_frames_engine(self, k: int, assertion: Expr,
                             conflict_limit: Optional[int],
                             start: float) -> BmcResult:
        """Obligation-based frame checks via the scheduler/cache engine."""
        since = self.engine.stats()
        obligations = []
        for t in range(k + 1):
            bad = self.unroller.expr_lit(assertion, t) ^ 1
            obligations.append(self.context.export_obligation(
                name=f"bmc[{self.circuit.name}]@t{t}",
                assumptions=[bad], conflict_limit=conflict_limit,
                meta={"kind": "bmc-frame", "circuit": self.circuit.name,
                      "frame": t, "k": k},
                slice=self.slice,
            ))
        verdicts = self.engine.solve_ordered(
            obligations, early_stop=lambda v: not v.unsat
        )
        stats = dict(self.context.stats())
        stats.update(self.engine.stats(since=since))
        for t, verdict in enumerate(verdicts):
            if verdict is None or verdict.unsat:
                continue
            if verdict.sat:
                self.context.adopt_verdict(obligations[t], verdict)
                witness = self.extract_witness(k, t)
                return BmcResult(
                    holds=False, depth=t, witness=witness,
                    runtime_s=time.perf_counter() - start, stats=stats,
                )
            raise FormalError(
                f"conflict limit exhausted at frame {t} "
                f"(limit={conflict_limit})"
            )
        return BmcResult(
            holds=True, depth=k,
            runtime_s=time.perf_counter() - start, stats=stats,
        )
