"""Bounded model checking / interval property checking driver.

:class:`SatContext` owns the AIG, the CNF mapping and the solver, and lets
clients assert AIG literals permanently or pass them as per-query
assumptions (the incremental interface used by the UPEC methodology).

:class:`BmcEngine` is the single-circuit front end: safety properties of the
form "assumptions during t..t+k imply the assertion at every cycle" with a
reset or symbolic (any-state, IPC-style) initial state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FormalError
from repro.formal.aig import Aig, CnfMapper
from repro.formal.bitblast import bits_to_int
from repro.formal.preprocess import SimplifyingSolver
from repro.formal.solver import CdclSolver
from repro.formal.unroll import Unroller
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Expr, Reg


class SatContext:
    """Shared AIG + CNF + solver state for a sequence of related queries.

    With ``simplify=True`` (the default) the CNF goes through the
    SatELite-style pre-/inprocessor of :mod:`repro.formal.preprocess`
    before every search; ``simplify=False`` solves the raw Tseitin CNF.
    """

    def __init__(self, simplify: bool = True) -> None:
        self.aig = Aig()
        self.solver = SimplifyingSolver() if simplify else CdclSolver()
        self.mapper = CnfMapper(self.aig, self.solver)

    def assert_lit(self, lit: int) -> None:
        """Permanently assert an AIG literal."""
        self.mapper.assert_true(lit)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
    ) -> Optional[bool]:
        """Solve under AIG-literal assumptions.

        Returns True (SAT), False (UNSAT) or None (conflict limit reached).
        """
        dimacs = [self.mapper.assumption(lit) for lit in assumptions]
        return self.solver.solve(assumptions=dimacs, conflict_limit=conflict_limit)

    def value(self, lit: int) -> bool:
        """Model value of an AIG literal after a SAT result."""
        return self.mapper.model_lit(lit)

    def word_value(self, bits: Sequence[int]) -> int:
        """Model value of a literal vector as an unsigned integer."""
        return bits_to_int([self.value(bit) for bit in bits])

    def stats(self) -> Dict[str, int]:
        data = self.solver.stats.as_dict()
        data["aig_nodes"] = len(self.aig)
        data["cnf_vars"] = self.solver.nvars
        data["cnf_clauses_emitted"] = self.mapper.clauses_emitted
        simp = getattr(self.solver, "simplify_stats", None)
        if simp is not None:
            for key, value in simp.as_dict().items():
                data[f"simplify_{key}"] = value
        return data


@dataclass
class Witness:
    """A counterexample trace: register values per frame."""

    frames: List[Dict[str, int]]
    failed_frame: int
    inputs: List[Dict[str, int]] = field(default_factory=list)

    def value(self, reg_name: str, frame: int) -> int:
        return self.frames[frame][reg_name]

    def render(self, signals: Optional[Sequence[str]] = None) -> str:
        from repro.sim.trace import Trace

        names = list(signals) if signals else sorted(self.frames[0])
        trace = Trace(names)
        for frame in self.frames:
            trace.record({name: frame.get(name, 0) for name in names})
        return trace.render()


@dataclass
class BmcResult:
    """Outcome of a bounded check."""

    holds: bool
    depth: int
    witness: Optional[Witness] = None
    runtime_s: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


class BmcEngine:
    """Bounded safety checking of one circuit."""

    def __init__(self, circuit: Circuit, init: str = "reset",
                 simplify: bool = True) -> None:
        self.circuit = circuit.finalize()
        self.context = SatContext(simplify=simplify)
        self.unroller = Unroller(circuit, self.context.aig, init=init)

    def extract_witness(self, depth: int, failed_frame: int) -> Witness:
        frames: List[Dict[str, int]] = []
        for t in range(depth + 1):
            values: Dict[str, int] = {}
            for reg in self.circuit.regs.values():
                values[reg.name] = self.context.word_value(
                    self.unroller.reg_bits(reg, t)
                )
            frames.append(values)
        return Witness(frames=frames, failed_frame=failed_frame)

    def check_always(
        self,
        assertion: Expr,
        k: int,
        assumptions: Sequence[Expr] = (),
        initial_assumptions: Sequence[Expr] = (),
        conflict_limit: Optional[int] = None,
    ) -> BmcResult:
        """Check that ``assertion`` holds at cycles 0..k.

        ``assumptions`` are constrained at every cycle of the window;
        ``initial_assumptions`` only at cycle 0.
        """
        if assertion.width != 1:
            raise FormalError("assertion must be a 1-bit expression")
        start = time.perf_counter()
        self.unroller.extend_to(k)
        for expr in initial_assumptions:
            self.context.assert_lit(self.unroller.expr_lit(expr, 0))
        for t in range(k + 1):
            for expr in assumptions:
                self.context.assert_lit(self.unroller.expr_lit(expr, t))
        for t in range(k + 1):
            bad = self.unroller.expr_lit(assertion, t) ^ 1
            outcome = self.context.solve(
                assumptions=[bad], conflict_limit=conflict_limit
            )
            if outcome is None:
                raise FormalError(
                    f"conflict limit exhausted at frame {t} "
                    f"(limit={conflict_limit})"
                )
            if outcome:
                witness = self.extract_witness(k, t)
                return BmcResult(
                    holds=False,
                    depth=t,
                    witness=witness,
                    runtime_s=time.perf_counter() - start,
                    stats=self.context.stats(),
                )
        return BmcResult(
            holds=True,
            depth=k,
            runtime_s=time.perf_counter() - start,
            stats=self.context.stats(),
        )
