"""CNF preprocessing and inprocessing for the formal engine.

SatELite-style formula simplification (Eén & Biere 2005) ahead of CDCL
search: top-level unit propagation, backward subsumption, self-subsuming
resolution (clause strengthening), budgeted failed-literal probing, and
bounded variable elimination (BVE) by clause distribution.  The Tseitin
CNF emitted by :class:`repro.formal.aig.CnfMapper` is rich in functionally
defined variables, which is exactly the shape BVE collapses.

Eliminated variables are recorded on a *model-reconstruction stack*: each
entry pairs a witness literal with a clause removed during elimination.
Replaying the stack in reverse extends any model of the simplified formula
to a model of the original one (Järvisalo & Biere style reconstruction),
so witness extraction over the full variable set keeps working.

:class:`SimplifyingSolver` is a drop-in :class:`CdclSolver` facade: clauses
are buffered, simplified on the first solve, and re-simplified whenever the
incremental UPEC flow has grown the formula enough to pay for another pass
(inprocessing).  Variables eliminated in an earlier pass are transparently
*resurrected* — their removed clauses are re-added — when a later clause or
assumption mentions them, which keeps the incremental CnfMapper interface
sound.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import FormalError
from repro.formal.solver import CdclSolver

#: A reconstruction entry: [witness literal, clause snapshot, active flag].
#: Mutable so :class:`SimplifyingSolver` can deactivate entries when a
#: variable is resurrected.
ReconstructionEntry = list


class SimplifyStats:
    """Counters of the simplifier, exposed for benchmarking."""

    __slots__ = ("simplifications", "rounds", "units_fixed",
                 "clauses_subsumed", "literals_strengthened",
                 "vars_eliminated", "pure_literals", "failed_literals",
                 "probes", "resolvents_added", "clauses_in", "clauses_out")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class SimplifyResult:
    """Outcome of one simplification pass."""

    __slots__ = ("ok", "nvars", "clauses", "units", "stack", "eliminated",
                 "stats")

    def __init__(self, ok: bool, nvars: int, clauses: List[List[int]],
                 units: List[int], stack: List[ReconstructionEntry],
                 eliminated: Dict[int, List[ReconstructionEntry]],
                 stats: SimplifyStats) -> None:
        self.ok = ok                  # False: formula is UNSAT
        self.nvars = nvars
        self.clauses = clauses        # simplified clauses (no units)
        self.units = units            # top-level units (DIMACS literals)
        self.stack = stack            # reconstruction entries, in order
        self.eliminated = eliminated  # var -> its reconstruction entries
        self.stats = stats


def _sig(clause: Sequence[int]) -> int:
    """64-bit subsumption signature: a clause can only subsume another if
    its signature bits are a subset of the other's."""
    s = 0
    for lit in clause:
        s |= 1 << (lit & 63)
    return s


def reconstruct_model(values: List[bool],
                      stack: Sequence[ReconstructionEntry]) -> List[bool]:
    """Extend a model of the simplified formula over eliminated variables.

    ``values`` is indexed by variable (index 0 unused).  Entries are
    replayed in reverse: whenever a recorded clause is unsatisfied, the
    witness literal's variable is flipped to satisfy it.
    """
    out = list(values)
    for entry in reversed(stack):
        lit, clause, active = entry
        if not active:
            continue
        for q in clause:
            if out[abs(q)] == (q > 0):
                break
        else:
            out[abs(lit)] = lit > 0
    return out


class Simplifier:
    """One simplification pass over a CNF (see module docstring).

    All work is budgeted so a pass stays roughly linear in the formula
    size; the budgets are counted in literal visits.
    """

    def __init__(
        self,
        nvars: int,
        clauses: Iterable[Sequence[int]],
        frozen: Iterable[int] = (),
        stats: Optional[SimplifyStats] = None,
        occ_limit: int = 16,
        resolvent_limit: int = 24,
        subsume_budget: int = 1_500_000,
        probe_budget: int = 200_000,
        probe_candidates: int = 128,
        max_rounds: int = 3,
        probing: bool = True,
    ) -> None:
        self.nvars = nvars
        self.frozen: Set[int] = set(frozen)
        self.stats = stats if stats is not None else SimplifyStats()
        self.occ_limit = occ_limit
        self.resolvent_limit = resolvent_limit
        self.subsume_budget = subsume_budget
        self.probe_budget = probe_budget
        self.probe_candidates = probe_candidates
        self.max_rounds = max_rounds
        self.probing = probing

        self.ok = True
        self.assign: Dict[int, bool] = {}        # top-level assignments
        self.clauses: List[Optional[List[int]]] = []
        self.sigs: List[int] = []
        self.occ: Dict[int, List[int]] = {}      # literal -> clause indices
        self.stack: List[ReconstructionEntry] = []
        self.eliminated: Dict[int, List[ReconstructionEntry]] = {}
        for clause in clauses:
            self.stats.clauses_in += 1
            if not self._add_input(clause):
                break

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_input(self, lits: Sequence[int]) -> bool:
        seen: Dict[int, bool] = {}
        clause: List[int] = []
        for lit in lits:
            var = abs(lit)
            if var == 0 or var > self.nvars:
                raise FormalError(
                    f"literal {lit} references an unknown variable")
            sign = lit > 0
            prev = seen.get(var)
            if prev is not None:
                if prev != sign:
                    return True  # tautology
                continue
            seen[var] = sign
            fixed = self.assign.get(var)
            if fixed is not None:
                if fixed == sign:
                    return True  # satisfied at top level
                continue          # falsified literal, drop
            clause.append(lit)
        if not clause:
            self.ok = False
            return False
        if len(clause) == 1:
            if not self._assign_unit(clause[0]):
                self.ok = False
                return False
            return True
        self._store(clause)
        return True

    def _store(self, clause: List[int]) -> int:
        ci = len(self.clauses)
        self.clauses.append(clause)
        self.sigs.append(_sig(clause))
        for lit in clause:
            self.occ.setdefault(lit, []).append(ci)
        return ci

    # ------------------------------------------------------------------
    # Top-level unit propagation
    # ------------------------------------------------------------------
    def _assign_unit(self, lit: int) -> bool:
        """Fix a literal at the top level; returns False on conflict."""
        todo = [lit]
        clauses = self.clauses
        while todo:
            l = todo.pop()
            var = abs(l)
            sign = l > 0
            prev = self.assign.get(var)
            if prev is not None:
                if prev != sign:
                    return False
                continue
            self.assign[var] = sign
            self.stats.units_fixed += 1
            for ci in self.occ.get(l, ()):      # satisfied clauses
                clauses[ci] = None
            for ci in self.occ.get(-l, ()):     # falsified literal
                clause = clauses[ci]
                if clause is None:
                    continue
                try:
                    clause.remove(-l)
                except ValueError:
                    continue  # stale occurrence
                self.sigs[ci] = _sig(clause)
                if not clause:
                    return False
                if len(clause) == 1:
                    todo.append(clause[0])
        return True

    # ------------------------------------------------------------------
    # Subsumption and self-subsuming resolution
    # ------------------------------------------------------------------
    def _subsume_round(self) -> bool:
        changed = False
        order = sorted(
            (ci for ci, c in enumerate(self.clauses) if c is not None),
            key=lambda ci: len(self.clauses[ci]),  # type: ignore[arg-type]
        )
        for ci in order:
            if self.subsume_budget <= 0 or not self.ok:
                break
            if self.clauses[ci] is None:
                continue
            if self._backward(ci):
                changed = True
        return changed

    def _backward(self, ci: int) -> bool:
        """Remove clauses subsumed by ``ci``; strengthen near-subsumed
        ones by self-subsuming resolution."""
        clauses = self.clauses
        sigs = self.sigs
        clause = clauses[ci]
        assert clause is not None
        changed = False
        # Backward subsumption via the least-occurring literal.
        best = min(clause, key=lambda l: len(self.occ.get(l, ())))
        for di in self.occ.get(best, ()):
            if di == ci:
                continue
            other = clauses[di]
            if other is None or len(other) < len(clause):
                continue
            if sigs[ci] & ~sigs[di]:
                continue
            self.subsume_budget -= len(other)
            other_set = set(other)
            if best not in other_set:
                continue  # stale occurrence
            if all(l in other_set for l in clause):
                clauses[di] = None
                self.stats.clauses_subsumed += 1
                changed = True
        # Self-subsuming resolution: clause = (l | A) strengthens any
        # (~l | A | B) to (A | B).
        for l in list(clause):
            if clauses[ci] is not clause:
                break
            need = sigs[ci] & ~(1 << (l & 63))
            for di in self.occ.get(-l, ()):
                if di == ci:
                    continue
                other = clauses[di]
                if other is None or len(other) < len(clause):
                    continue
                if need & ~sigs[di]:
                    continue
                self.subsume_budget -= len(other)
                other_set = set(other)
                if -l not in other_set:
                    continue  # stale occurrence
                if all(q in other_set for q in clause if q != l):
                    other.remove(-l)
                    sigs[di] = _sig(other)
                    self.stats.literals_strengthened += 1
                    changed = True
                    if len(other) == 1:
                        unit = other[0]
                        clauses[di] = None
                        if not self._assign_unit(unit):
                            self.ok = False
                            return changed
            if self.subsume_budget <= 0:
                break
        return changed

    # ------------------------------------------------------------------
    # Failed-literal probing
    # ------------------------------------------------------------------
    def _probe_round(self) -> bool:
        bin_count: Dict[int, int] = {}
        for clause in self.clauses:
            if clause is not None and len(clause) == 2:
                for l in clause:
                    # Probing -l propagates through this clause.
                    bin_count[-l] = bin_count.get(-l, 0) + 1
        candidates = sorted(bin_count, key=lambda l: -bin_count[l])
        changed = False
        visits = self.probe_budget
        for lit in candidates[: self.probe_candidates]:
            if visits <= 0 or not self.ok:
                break
            var = abs(lit)
            if var in self.assign or var in self.eliminated:
                continue
            self.stats.probes += 1
            conflict, visits = self._probe(lit, visits)
            if conflict:
                self.stats.failed_literals += 1
                changed = True
                if not self._assign_unit(-lit):
                    self.ok = False
                    break
        return changed

    def _probe(self, lit: int, visits: int) -> Tuple[bool, int]:
        """Propagate ``lit`` hypothetically; True iff it fails."""
        val: Dict[int, bool] = {abs(lit): lit > 0}
        queue = [lit]
        clauses = self.clauses
        while queue:
            p = queue.pop()
            for ci in self.occ.get(-p, ()):
                clause = clauses[ci]
                if clause is None:
                    continue
                visits -= len(clause)
                if visits <= 0:
                    return False, 0
                unassigned = 0
                last = 0
                satisfied = False
                for q in clause:
                    w = val.get(abs(q))
                    if w is None:
                        unassigned += 1
                        last = q
                    elif w == (q > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if unassigned == 0:
                    return True, visits
                if unassigned == 1 and abs(last) not in val:
                    val[abs(last)] = last > 0
                    queue.append(last)
        return False, visits

    # ------------------------------------------------------------------
    # Bounded variable elimination
    # ------------------------------------------------------------------
    def _occurrences(self, lit: int) -> List[int]:
        """Clause indices currently containing ``lit`` (cleans the list)."""
        alive = []
        for ci in self.occ.get(lit, ()):
            clause = self.clauses[ci]
            if clause is not None and lit in clause:
                alive.append(ci)
        if lit in self.occ:
            self.occ[lit] = alive
        return alive

    @staticmethod
    def _resolve(c1: Sequence[int], c2: Sequence[int],
                 var: int) -> Optional[List[int]]:
        result = [l for l in c1 if abs(l) != var]
        seen = set(result)
        for l in c2:
            if abs(l) == var:
                continue
            if -l in seen:
                return None  # tautology
            if l not in seen:
                seen.add(l)
                result.append(l)
        return result

    def _try_eliminate(self, var: int) -> bool:
        if var in self.frozen or var in self.assign or var in self.eliminated:
            return False
        pos = self._occurrences(var)
        neg = self._occurrences(-var)
        if not pos and not neg:
            return False
        clauses = self.clauses
        resolvents: List[List[int]] = []
        if pos and neg:
            if min(len(pos), len(neg)) > self.occ_limit:
                return False
            if len(pos) * len(neg) > 4 * self.occ_limit * self.occ_limit:
                return False
            limit = len(pos) + len(neg)
            dedup: Set[Tuple[int, ...]] = set()
            for ci in pos:
                for cj in neg:
                    r = self._resolve(clauses[ci], clauses[cj], var)
                    if r is None:
                        continue
                    if len(r) > self.resolvent_limit:
                        return False
                    key = tuple(sorted(r))
                    if key in dedup:
                        continue
                    dedup.add(key)
                    resolvents.append(r)
                    if len(resolvents) > limit:
                        return False
        else:
            self.stats.pure_literals += 1
        # Commit: record removed clauses for model reconstruction.
        entries: List[ReconstructionEntry] = []
        for sign, indices in ((var, pos), (-var, neg)):
            for ci in indices:
                clause = clauses[ci]
                assert clause is not None
                entries.append([sign, tuple(clause), True])
                clauses[ci] = None
        self.stack.extend(entries)
        self.eliminated[var] = entries
        self.stats.vars_eliminated += 1
        self.stats.resolvents_added += len(resolvents)
        for r in resolvents:
            if len(r) == 1:
                if not self._assign_unit(r[0]):
                    self.ok = False
                    return True
            else:
                self._store(r)
        return True

    def _eliminate_round(self) -> bool:
        def weight(v: int) -> int:
            return (len(self.occ.get(v, ())) + len(self.occ.get(-v, ())))

        order = sorted(
            (v for v in range(1, self.nvars + 1)
             if v not in self.assign and v not in self.eliminated
             and v not in self.frozen),
            key=weight,
        )
        changed = False
        for v in order:
            if not self.ok:
                break
            if self._try_eliminate(v):
                changed = True
        return changed

    # ------------------------------------------------------------------
    def run(self) -> SimplifyResult:
        for round_no in range(self.max_rounds):
            if not self.ok:
                break
            self.stats.rounds += 1
            changed = self._subsume_round()
            if round_no == 0 and self.probing and self.ok:
                if self._probe_round():
                    changed = True
            if self.ok and self._eliminate_round():
                changed = True
            if not changed:
                break
        alive = [c for c in self.clauses if c is not None] if self.ok else []
        self.stats.clauses_out += len(alive)
        units = [v if sign else -v for v, sign in self.assign.items()] \
            if self.ok else []
        return SimplifyResult(
            ok=self.ok, nvars=self.nvars, clauses=alive, units=units,
            stack=self.stack, eliminated=self.eliminated, stats=self.stats,
        )


def simplify_clauses(nvars: int, clauses: Iterable[Sequence[int]],
                     frozen: Iterable[int] = (), **kwargs) -> SimplifyResult:
    """Run one simplification pass over a CNF (convenience wrapper)."""
    return Simplifier(nvars, clauses, frozen=frozen, **kwargs).run()


class SimplifyingSolver:
    """A :class:`CdclSolver` facade with pre- and inprocessing.

    Added clauses are buffered; the first :meth:`solve` simplifies the
    whole formula before searching, and later solves re-simplify once the
    incremental flow has grown the database past ``min_pending`` clauses or
    ``pending_frac`` of its size (inprocessing rebuilds start the CDCL
    search fresh, trading learnt clauses for a smaller formula).  SAT
    models are reconstructed over the original variables, so
    :meth:`model_value` behaves exactly like the plain solver's.
    """

    def __init__(
        self,
        min_pending: int = 2000,
        pending_frac: float = 1.0,
        probing: bool = True,
        occ_limit: int = 16,
        resolvent_limit: int = 24,
        max_rounds: int = 2,
    ) -> None:
        self.nvars = 0
        self.min_pending = min_pending
        self.pending_frac = pending_frac
        self.probing = probing
        self.occ_limit = occ_limit
        self.resolvent_limit = resolvent_limit
        self.max_rounds = max_rounds
        self.simplify_stats = SimplifyStats()
        self._inner = CdclSolver()
        self._db: List[List[int]] = []       # simplified database
        self._pending: List[List[int]] = []  # not yet given to the search
        self._stack: List[ReconstructionEntry] = []
        self._eliminated: Dict[int, List[ReconstructionEntry]] = {}
        self._frozen: Set[int] = set()
        self._ok = True
        self._did_initial = False
        self._model: Optional[List[bool]] = None
        self.stop_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # CdclSolver-compatible construction API
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self._inner.stats

    def new_var(self) -> int:
        self.nvars += 1
        return self.nvars

    def _check_lit(self, lit: int) -> None:
        if lit == 0 or abs(lit) > self.nvars:
            raise FormalError(f"literal {lit} references an unknown variable")

    def add_clause(self, lits: Iterable[int]) -> bool:
        if not self._ok:
            return False
        seen: Dict[int, bool] = {}
        clause: List[int] = []
        for lit in lits:
            self._check_lit(lit)
            var = abs(lit)
            sign = lit > 0
            prev = seen.get(var)
            if prev is not None:
                if prev != sign:
                    return True  # tautology
                continue
            seen[var] = sign
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        for var in seen:
            if var in self._eliminated:
                self._resurrect(var)
        self._pending.append(clause)
        self._model = None
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok and self._ok

    def freeze_var(self, var: int) -> None:
        """Protect a variable from elimination (MiniSat's ``setFrozen``).

        Witness-relevant variables should be frozen so counterexample
        models read their values straight from the search instead of from
        don't-care reconstruction choices."""
        if var == 0 or var > self.nvars:
            raise FormalError(f"unknown variable {var}")
        if var in self._eliminated:
            self._resurrect(var)
        self._frozen.add(var)

    # ------------------------------------------------------------------
    # Variable resurrection
    # ------------------------------------------------------------------
    def _resurrect(self, var: int) -> None:
        """Re-add the clauses removed when ``var`` was eliminated (sound:
        they are implied by the resolvents that replaced them)."""
        work = [var]
        while work:
            v = work.pop()
            entries = self._eliminated.pop(v, None)
            if entries is None:
                continue
            self._frozen.add(v)
            for entry in entries:
                entry[2] = False
                clause = list(entry[1])
                self._pending.append(clause)
                for lit in clause:
                    if abs(lit) in self._eliminated:
                        work.append(abs(lit))

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _sync_vars(self) -> None:
        while self._inner.nvars < self.nvars:
            self._inner.new_var()

    def _rebuild(self) -> bool:
        """Simplify the whole database and restart the search on it."""
        db = self._db + self._pending
        self._pending = []
        self.simplify_stats.simplifications += 1
        simp = Simplifier(
            self.nvars, db, frozen=self._frozen, stats=self.simplify_stats,
            occ_limit=self.occ_limit, resolvent_limit=self.resolvent_limit,
            max_rounds=self.max_rounds, probing=self.probing,
        )
        result = simp.run()
        if not result.ok:
            self._ok = False
            return False
        self._stack.extend(result.stack)
        self._eliminated.update(result.eliminated)
        old_stats = self._inner.stats
        self._inner = CdclSolver()
        for name in old_stats.__slots__:
            setattr(self._inner.stats, name, getattr(old_stats, name))
        self._sync_vars()
        self._db = [[u] for u in result.units]
        self._db.extend(result.clauses)
        for clause in self._db:
            if not self._inner.add_clause(clause):
                self._ok = False
                return False
        return True

    def _flush(self) -> bool:
        self._sync_vars()
        for clause in self._pending:
            self._db.append(clause)
            if not self._inner.add_clause(clause):
                self._ok = False
        self._pending = []
        return self._ok

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        cancel_check=None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        self.stop_reason: Optional[str] = None
        if not self._ok:
            return False
        self._model = None
        for a in assumptions:
            self._check_lit(a)
            var = abs(a)
            if var in self._eliminated:
                self._resurrect(var)
            self._frozen.add(var)
        pend = len(self._pending)
        if pend and (
            not self._did_initial
            or pend > max(self.min_pending,
                          int(self.pending_frac * len(self._db)))
        ):
            self._did_initial = True
            if not self._rebuild():
                return False
        elif pend:
            if not self._flush():
                return False
        else:
            self._sync_vars()
        outcome = self._inner.solve(
            assumptions=assumptions, conflict_limit=conflict_limit,
            cancel_check=cancel_check, deadline=deadline,
        )
        self.stop_reason = self._inner.stop_reason
        if outcome is True:
            base = [False] * (self.nvars + 1)
            inner = self._inner
            for v in range(1, inner.nvars + 1):
                base[v] = inner.model_value(v)
            self._model = reconstruct_model(base, self._stack)
        return outcome

    # ------------------------------------------------------------------
    # Warm-start export
    # ------------------------------------------------------------------
    def export_simplified(self):
        """Snapshot the post-simplification clause database for reuse.

        Returns ``{"nvars", "clauses", "stack"}`` — the simplified
        clauses (units included) plus the active model-reconstruction
        entries — or None when there is nothing sound to export (the
        formula was never rebuilt, turned inconsistent, or has pending
        clauses the snapshot would miss).  A fresh
        :class:`~repro.formal.solver.CdclSolver` loaded with the
        snapshot searches exactly as this solver's inner search does,
        so warm-started verdicts are bit-identical to cold ones.
        """
        if not self._ok or not self._did_initial or self._pending:
            return None
        return {
            "nvars": self.nvars,
            "clauses": [list(clause) for clause in self._db],
            "stack": [[entry[0], list(entry[1])]
                      for entry in self._stack if entry[2]],
        }

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, lit: int) -> bool:
        if self._model is None:
            raise FormalError("no model available (last solve was not SAT)")
        var = abs(lit)
        if var == 0 or var > self.nvars:
            raise FormalError(f"unknown variable {var}")
        value = self._model[var]
        return value if lit > 0 else not value

    def model(self) -> List[bool]:
        return [False] + [self.model_value(v)
                          for v in range(1, self.nvars + 1)]
