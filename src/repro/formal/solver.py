"""A CDCL SAT solver.

This is the proof engine underneath UPEC's interval property checking.  The
design follows MiniSat: two-watched-literal propagation, first-UIP conflict
analysis with clause learning, VSIDS-style activity-based decision heuristics
with phase saving, Luby restarts and activity-based learnt-clause deletion.

Literals use the DIMACS convention at the API boundary (positive/negative
non-zero ints); internally literal ``2*v`` is the positive and ``2*v + 1``
the negative phase of variable ``v``.  Clauses are plain Python lists; watch
lists and reasons reference clause objects directly (cheap identity-based
bookkeeping keeps the Python interpreter overhead down — this solver spends
its life in ``_propagate``).
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import FormalError

_UNASSIGNED = -1

#: How many conflicts pass between two ``cancel_check`` polls.  The
#: callback crosses a thread boundary (a worker's receiver thread sets
#: the flag it reads), so it must be cheap but need not be instant —
#: a few hundred conflicts of latency is well under a second.
CANCEL_CHECK_EVERY = 256


def luby_sequence(n: int) -> List[int]:
    """First ``n`` elements of the Luby restart sequence (testing helper)."""
    seq: List[int] = []
    u, v = 1, 1
    for _ in range(n):
        seq.append(v)
        if (u & -u) == v:
            u += 1
            v = 1
        else:
            v *= 2
    return seq


class Stats:
    """Solver statistics, exposed for benchmarking."""

    __slots__ = ("conflicts", "decisions", "propagations", "restarts",
                 "learnt_deleted", "glue_learnts", "trail_reuses")

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learnt_deleted = 0
        self.glue_learnts = 0
        self.trail_reuses = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class CdclSolver:
    """Conflict-driven clause-learning SAT solver."""

    def __init__(self) -> None:
        self.nvars = 0
        self._clauses: List[List[int]] = []      # problem clauses
        self._learnts: List[List[int]] = []
        self._learnt_act: Dict[int, float] = {}  # id(clause) -> activity
        self._learnt_lbd: Dict[int, int] = {}    # id(clause) -> glue level
        self._learnt_set: Dict[int, List[int]] = {}
        self._watches: List[List[List[int]]] = [[], []]  # lit -> clauses
        self._assign: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._polarity: List[bool] = [False]
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order: List[tuple] = []  # max-heap via negated activities
        self._ok = True
        self._model: List[int] = []
        self.stats = Stats()
        #: why the last :meth:`solve` returned None ("conflicts",
        #: "cancelled" or "deadline"); None after a definite answer.
        self.stop_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) DIMACS index."""
        self.nvars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._polarity.append(False)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._order, (0.0, self.nvars))
        return self.nvars

    def _to_internal(self, lit: int) -> int:
        var = abs(lit)
        if var == 0 or var > self.nvars:
            raise FormalError(f"literal {lit} references an unknown variable")
        return 2 * var + (1 if lit < 0 else 0)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a problem clause (DIMACS literals).

        Returns False if the formula is already trivially unsatisfiable.
        """
        if not self._ok:
            return False
        # Incremental use: clauses may arrive between solve() calls while
        # the trail still holds a model.  Unit clauses must be asserted at
        # level 0 (they are not stored), so drop back first.
        self._backtrack(0)
        seen: Dict[int, int] = {}
        clause: List[int] = []
        assign = self._assign
        level = self._level
        for lit in lits:
            internal = self._to_internal(lit)
            var = internal >> 1
            phase = internal & 1
            if var in seen:
                if seen[var] != phase:
                    return True  # tautology: x | ~x
                continue
            seen[var] = phase
            value = assign[var]
            if value != _UNASSIGNED and level[var] == 0:
                if value == (phase ^ 1):
                    return True  # already satisfied at top level
                continue  # already falsified at top level
            clause.append(internal)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        self._clauses.append(clause)
        self._watches[clause[0] ^ 1].append(clause)
        self._watches[clause[1] ^ 1].append(clause)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok and self._ok

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned."""
        value = self._assign[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        var = lit >> 1
        value = self._assign[var]
        if value != _UNASSIGNED:
            return value == ((lit & 1) ^ 1)
        self._assign[var] = (lit & 1) ^ 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        trail = self._trail
        watches = self._watches
        assign = self._assign
        level = self._level
        reason = self._reason
        trail_lim_len = len  # local binding
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            watch_list = watches[lit]
            watches[lit] = keep = []
            false_lit = lit ^ 1
            i = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                fvar = first >> 1
                fval = assign[fvar]
                if fval != _UNASSIGNED and (fval ^ (first & 1)) == 1:
                    keep.append(clause)
                    continue
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    value = assign[other >> 1]
                    if value == _UNASSIGNED or (value ^ (other & 1)) == 1:
                        clause[1] = other
                        clause[k] = false_lit
                        watches[other ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                keep.append(clause)
                if fval == _UNASSIGNED:
                    assign[fvar] = (first & 1) ^ 1
                    level[fvar] = len(self._trail_lim)
                    reason[fvar] = clause
                    trail.append(first)
                else:
                    # Conflict: restore the remaining watches and report.
                    keep.extend(watch_list[i:])
                    self._qhead = len(trail)
                    return clause
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            for v in range(1, self.nvars + 1):
                activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._order, (-activity[var], var))

    def _bump_clause(self, clause: List[int]) -> None:
        key = id(clause)
        if key not in self._learnt_act:
            return
        self._learnt_act[key] += self._cla_inc
        if self._learnt_act[key] > 1e20:
            for k in self._learnt_act:
                self._learnt_act[k] *= 1e-20
            self._cla_inc *= 1e-20
        # Glucose-style dynamic LBD: a clause participating in conflict
        # analysis has all literals assigned, so its glue can be refreshed
        # (it only ever improves, protecting it from deletion).
        old = self._learnt_lbd.get(key, 0)
        if old > 2:
            levels = self._level
            lbd = len({levels[q >> 1] for q in clause})
            if lbd < old:
                self._learnt_lbd[key] = lbd

    def _analyze(self, conflict: List[int]) -> tuple:
        """First-UIP learning; returns (learnt clause, backtrack level)."""
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = bytearray(self.nvars + 1)
        counter = 0
        lit = -1
        clause: Optional[List[int]] = conflict
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        levels = self._level
        while True:
            assert clause is not None, "reason missing during conflict analysis"
            self._bump_clause(clause)
            for q in (clause if lit == -1 else clause[1:]):
                var = q >> 1
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            clause = self._reason[var]
        learnt[0] = lit ^ 1
        # Conflict-clause minimization: drop literals implied by the rest.
        if len(learnt) > 1:
            marked = set(q >> 1 for q in learnt[1:])
            kept = [learnt[0]]
            for q in learnt[1:]:
                reason = self._reason[q >> 1]
                if reason is None:
                    kept.append(q)
                    continue
                if all(
                    (r >> 1) in marked or levels[r >> 1] == 0
                    for r in reason
                    if (r >> 1) != (q >> 1)
                ):
                    continue  # redundant
                kept.append(q)
            learnt = kept
        if len(learnt) == 1:
            return learnt, 0
        # Backtrack level = second highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if levels[learnt[i] >> 1] > levels[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, levels[learnt[1] >> 1]

    def _backtrack(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        bound = self._trail_lim[target_level]
        assign = self._assign
        polarity = self._polarity
        reason = self._reason
        push = heapq.heappush
        order = self._order
        activity = self._activity
        for lit in reversed(self._trail[bound:]):
            var = lit >> 1
            polarity[var] = bool(assign[var])
            assign[var] = _UNASSIGNED
            reason[var] = None
            push(order, (-activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[target_level:]
        self._qhead = len(self._trail)

    def _record_learnt(self, clause: List[int], lbd: int = 0) -> None:
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            return
        self._learnts.append(clause)
        self._learnt_act[id(clause)] = self._cla_inc
        self._learnt_lbd[id(clause)] = lbd
        self._learnt_set[id(clause)] = clause
        if lbd and lbd <= 2:
            self.stats.glue_learnts += 1
        self._watches[clause[0] ^ 1].append(clause)
        self._watches[clause[1] ^ 1].append(clause)
        self._enqueue(clause[0], clause)

    def _reduce_db(self) -> None:
        """Drop half the learnt clauses, worst glue (LBD) first.

        Glue clauses (LBD <= 2) and binaries are always kept — they are the
        learnts that keep paying for themselves (Audemard & Simon 2009)."""
        if not self._learnts:
            return
        locked = set()
        for var in range(1, self.nvars + 1):
            reason = self._reason[var]
            if reason is not None and id(reason) in self._learnt_act:
                locked.add(id(reason))
        lbd = self._learnt_lbd
        act = self._learnt_act
        order = sorted(
            self._learnts,
            key=lambda c: (-lbd.get(id(c), 0), act[id(c)]),
        )
        drop = set()
        for clause in order[: len(order) // 2]:
            key = id(clause)
            if key in locked or len(clause) <= 2:
                continue
            if lbd.get(key, 3) <= 2:
                continue
            drop.add(key)
        if not drop:
            return
        self._learnts = [c for c in self._learnts if id(c) not in drop]
        for key in drop:
            del self._learnt_act[key]
            del self._learnt_lbd[key]
            del self._learnt_set[key]
        self.stats.learnt_deleted += len(drop)
        for lit in range(2, 2 * self.nvars + 2):
            self._watches[lit] = [
                c for c in self._watches[lit] if id(c) not in drop
            ]

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> Optional[int]:
        order = self._order
        assign = self._assign
        activity = self._activity
        while order:
            neg_act, var = heapq.heappop(order)
            if assign[var] == _UNASSIGNED and -neg_act == activity[var]:
                return 2 * var + (0 if self._polarity[var] else 1)
        for var in range(1, self.nvars + 1):
            if assign[var] == _UNASSIGNED:
                return 2 * var + (0 if self._polarity[var] else 1)
        return None

    def _restart_level(self, base: int) -> int:
        """Restart target with trail reuse (van der Tak et al. 2011).

        Decision levels whose decision variable out-scores the best
        unassigned variable would be re-made verbatim after a full
        restart, so the trail prefix up to the first out-scored decision
        is kept instead of being rebuilt by propagation."""
        order = self._order
        assign = self._assign
        activity = self._activity
        while order:
            neg_act, var = order[0]
            if assign[var] == _UNASSIGNED and -neg_act == activity[var]:
                break
            heapq.heappop(order)
        if not order:
            return base
        best = -order[0][0]
        trail = self._trail
        lim = self._trail_lim
        level = base
        while level < len(lim):
            pos = lim[level]
            if pos >= len(trail):
                break
            if activity[trail[pos] >> 1] < best:
                break
            level += 1
        return level

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        cancel_check: Optional[Callable[[], bool]] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        """Solve the formula.

        Returns True (SAT), False (UNSAT), or None if ``conflict_limit``
        was exhausted.  On SAT, :meth:`model_value` reads the model.

        ``cancel_check`` is polled every :data:`CANCEL_CHECK_EVERY`
        conflicts; returning True abandons the search with None, exactly
        like an exhausted conflict budget — cooperative preemption for
        solves whose answer nobody wants anymore (a cancelled distributed
        batch).  A definite sat/unsat answer is never affected: the check
        only ever converts *remaining* search into an early exit.

        ``deadline`` (a ``time.monotonic()`` instant) is the wall-clock
        budget, polled at the same cadence; expiring abandons the search
        with None.  After any None return, :attr:`stop_reason` says why
        ("conflicts", "cancelled" or "deadline") so callers can report a
        distinguishable *timeout* instead of a generic unknown.
        """
        self.stop_reason: Optional[str] = None
        if not self._ok:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return False
        internal_assumptions = [self._to_internal(a) for a in assumptions]
        restart_idx = 0
        luby = luby_sequence(64)
        conflicts_until_restart = 100 * luby[0]
        conflicts_at_start = self.stats.conflicts
        max_learnts = max(2000, len(self._clauses) // 2)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if len(self._trail_lim) == 0:
                    self._ok = False
                    return False
                if (
                    conflict_limit is not None
                    and self.stats.conflicts - conflicts_at_start
                    >= conflict_limit
                ):
                    self.stop_reason = "conflicts"
                    self._backtrack(0)
                    return None
                if (
                    (cancel_check is not None or deadline is not None)
                    and (self.stats.conflicts - conflicts_at_start)
                    % CANCEL_CHECK_EVERY == 0
                ):
                    if cancel_check is not None and cancel_check():
                        self.stop_reason = "cancelled"
                        self._backtrack(0)
                        return None
                    if deadline is not None \
                            and time.monotonic() >= deadline:
                        self.stop_reason = "deadline"
                        self._backtrack(0)
                        return None
                learnt, back_level = self._analyze(conflict)
                # LBD (glue) of the learnt clause: number of distinct
                # decision levels, computed while everything is assigned.
                levels = self._level
                lbd = len({levels[q >> 1] for q in learnt})
                # Backtracking may undo assumption pseudo-decisions; the
                # main loop re-places them (and detects assumptions that
                # have become falsified by learnt units).
                self._backtrack(back_level)
                self._record_learnt(learnt, lbd)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                conflicts_until_restart -= 1
                if len(self._learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue
            if conflicts_until_restart <= 0 and len(self._trail_lim) > len(
                internal_assumptions
            ):
                self.stats.restarts += 1
                restart_idx += 1
                if restart_idx >= len(luby):
                    luby = luby_sequence(2 * len(luby))
                conflicts_until_restart = 100 * luby[restart_idx]
                base = min(len(internal_assumptions), len(self._trail_lim))
                target = self._restart_level(base)
                if target > base:
                    self.stats.trail_reuses += 1
                self._backtrack(target)
                continue
            # Place assumptions as pseudo-decisions.
            placed_all = True
            for i, lit in enumerate(internal_assumptions):
                if len(self._trail_lim) > i:
                    continue
                value = self._lit_value(lit)
                if value == 0:
                    return False  # assumption falsified by the formula
                self._trail_lim.append(len(self._trail))
                if value == _UNASSIGNED:
                    self._enqueue(lit, None)
                placed_all = False
                break
            if not placed_all:
                continue
            decision = self._decide()
            if decision is None:
                self._model = list(self._assign)
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, lit: int) -> bool:
        """Value of a DIMACS literal in the last model."""
        if not self._model:
            raise FormalError("no model available (last solve was not SAT)")
        var = abs(lit)
        if var > self.nvars:
            raise FormalError(f"unknown variable {var}")
        value = self._model[var]
        if value == _UNASSIGNED:
            value = 0  # don't-care variables default to false
        return bool(value) if lit > 0 else not bool(value)

    def model(self) -> List[bool]:
        """The last model as a list indexed by variable (index 0 unused)."""
        return [False] + [self.model_value(v) for v in range(1, self.nvars + 1)]
