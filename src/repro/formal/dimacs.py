"""DIMACS CNF reading and writing (interchange / debugging aid)."""

from __future__ import annotations

from typing import List, TextIO, Tuple

from repro.errors import FormalError


def write_dimacs(stream: TextIO, nvars: int, clauses: List[List[int]]) -> None:
    """Write a CNF in DIMACS format.

    Literals are validated against ``nvars`` so the writer can never emit
    a file that :func:`read_dimacs` rejects (the parser enforces the
    declared variable count).
    """
    if nvars < 0:
        raise FormalError(f"negative variable count {nvars}")
    for clause in clauses:
        for lit in clause:
            if lit == 0:
                raise FormalError(
                    "literal 0 is reserved for clause termination")
            if abs(lit) > nvars:
                raise FormalError(
                    f"literal {lit} exceeds declared variable count {nvars}")
    stream.write(f"p cnf {nvars} {len(clauses)}\n")
    for clause in clauses:
        stream.write(" ".join(str(lit) for lit in clause) + " 0\n")


def read_dimacs(stream: TextIO) -> Tuple[int, List[List[int]]]:
    """Parse a DIMACS CNF file; returns (nvars, clauses)."""
    nvars = 0
    nclauses = None
    clauses: List[List[int]] = []
    current: List[int] = []
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise FormalError(f"malformed problem line: {line!r}")
            nvars = int(parts[2])
            nclauses = int(parts[3])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                if abs(lit) > nvars:
                    raise FormalError(
                        f"literal {lit} exceeds declared variable count {nvars}"
                    )
                current.append(lit)
    if current:
        raise FormalError("trailing clause without terminating 0")
    if nclauses is not None and len(clauses) != nclauses:
        raise FormalError(
            f"clause count mismatch: header says {nclauses}, found {len(clauses)}"
        )
    return nvars, clauses
