"""Sequential unrolling of circuits into an AIG.

The unroller creates one combinational *frame* per clock cycle.  Register
values at frame 0 come from an :class:`InitialState` policy:

* ``symbolic`` — fresh AIG inputs (the any-state / IPC setting of the paper),
* ``reset`` — the declared reset values (classic BMC from reset),
* explicit literal vectors — used by the UPEC miter to share variables
  between the two SoC instances (equal initial microarchitectural state).

Inputs get fresh variables per frame unless an ``input_provider`` shares
them (the UPEC model drives both instances with identical inputs).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import FormalError
from repro.formal.aig import Aig
from repro.formal.bitblast import BitBlaster, Bits, const_bits
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Expr, Input, Reg

InputProvider = Callable[[str, int, int], Bits]  # (name, width, frame) -> bits


class Unroller:
    """Unroll one circuit instance over time."""

    def __init__(
        self,
        circuit: Circuit,
        aig: Aig,
        init: str = "symbolic",
        init_bits: Optional[Dict[Reg, Bits]] = None,
        input_provider: Optional[InputProvider] = None,
    ) -> None:
        if not circuit.finalized:
            circuit.finalize()
        if init not in ("symbolic", "reset"):
            raise FormalError(f"unknown init policy {init!r}")
        self.circuit = circuit
        self.aig = aig
        self.init = init
        self.init_bits = dict(init_bits or {})
        self.input_provider = input_provider
        self._reg_bits: List[Dict[Reg, Bits]] = []
        self._memos: List[Dict[int, Bits]] = []
        self._blasters: List[BitBlaster] = []
        self._build_frame0()

    # ------------------------------------------------------------------
    def _initial_bits(self, reg: Reg) -> Bits:
        explicit = self.init_bits.get(reg)
        if explicit is not None:
            if len(explicit) != reg.width:
                raise FormalError(
                    f"initial bits for {reg.name!r} have wrong width"
                )
            return list(explicit)
        if self.init == "reset" and reg.init is not None:
            return const_bits(self.aig, reg.init, reg.width)
        if self.init == "reset" and reg.init is None:
            return self.aig.new_inputs(reg.width)
        return self.aig.new_inputs(reg.width)

    def _input_bits(self, node: Input, frame: int) -> Bits:
        if self.input_provider is not None:
            bits = self.input_provider(node.name, node.width, frame)
            if len(bits) != node.width:
                raise FormalError(f"input provider width mismatch for {node.name!r}")
            return bits
        return self.aig.new_inputs(node.width)

    def _build_frame0(self) -> None:
        frame0 = {reg: self._initial_bits(reg) for reg in self.circuit.regs.values()}
        self._reg_bits.append(frame0)
        self._push_frame_memo(0)

    def _push_frame_memo(self, frame: int) -> None:
        memo: Dict[int, tuple] = {}
        reg_bits = self._reg_bits[frame]

        def leaf(node: Expr) -> Bits:
            if isinstance(node, Reg):
                return reg_bits[node]
            if isinstance(node, Input):
                key = id(node)
                if key not in memo:
                    memo[key] = (node, self._input_bits(node, frame))
                return memo[key][1]
            raise FormalError(f"unexpected leaf {node!r}")  # pragma: no cover

        self._memos.append(memo)
        self._blasters.append(BitBlaster(self.aig, leaf, memo))

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of frames built so far (state known for cycles 0..depth-1)."""
        return len(self._reg_bits)

    def extend_to(self, frame: int) -> None:
        """Ensure register bits exist for cycles 0..frame."""
        while self.depth <= frame:
            t = self.depth - 1
            blaster = self._blasters[t]
            next_bits: Dict[Reg, Bits] = {}
            for reg in self.circuit.regs.values():
                assert reg.next is not None
                next_bits[reg] = blaster.blast(reg.next)
            self._reg_bits.append(next_bits)
            self._push_frame_memo(self.depth - 1)

    def reg_bits(self, reg: Reg, frame: int) -> Bits:
        """Literal vector of a register at a cycle."""
        self.extend_to(frame)
        return self._reg_bits[frame][reg]

    def expr_bits(self, expr: Expr, frame: int) -> Bits:
        """Literal vector of a combinational expression evaluated at a cycle."""
        self.extend_to(frame)
        return self._blasters[frame].blast(expr)

    def expr_lit(self, expr: Expr, frame: int) -> int:
        """Single-literal convenience for 1-bit expressions."""
        bits = self.expr_bits(expr, frame)
        if len(bits) != 1:
            raise FormalError("expr_lit expects a 1-bit expression")
        return bits[0]
