"""k-induction for single-circuit safety properties.

Complements the bounded engine: ``prove_by_induction`` establishes a
property for *unbounded* time by checking

* **base case** — the property holds for ``k`` cycles from reset, and
* **step case** — any ``k+1``-cycle window of states satisfying the
  property (and the assumptions) ends in a state satisfying it too,
  starting from a fully symbolic (any-state) window.

This is the classical strengthening-free k-induction; the UPEC-specific
diff-closure proofs in :mod:`repro.core.closure` are its two-instance
sibling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import FormalError
from repro.formal.bmc import BmcEngine, BmcResult, SatContext, Witness
from repro.formal.unroll import Unroller
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Expr


@dataclass
class InductionResult:
    """Outcome of a k-induction proof attempt."""

    proved: bool
    k: int
    failed_case: Optional[str] = None      # "base" | "step" | None
    base: Optional[BmcResult] = None
    step_witness: Optional[Witness] = None
    runtime_s: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        if self.proved:
            return f"property proved by {self.k}-induction ({self.runtime_s:.2f}s)"
        return (
            f"{self.k}-induction failed in the {self.failed_case} case "
            f"({self.runtime_s:.2f}s)"
        )


def prove_by_induction(
    circuit: Circuit,
    prop: Expr,
    k: int = 1,
    assumptions: Sequence[Expr] = (),
    conflict_limit: Optional[int] = None,
    simplify: bool = True,
    engine=None,
    slice: Optional[bool] = None,
    split: Optional[bool] = None,
) -> InductionResult:
    """Attempt to prove ``AG prop`` (under per-cycle assumptions) by
    k-induction.

    With ``engine`` set (a :class:`repro.engine.ProofEngine`), the base
    case's frame checks and the step case are dispatched as proof
    obligations (parallel frame checks, persistent result cache).
    """
    if prop.width != 1:
        raise FormalError("property must be a 1-bit expression")
    from repro.engine.pool import INLINE, resolve_engine

    engine = resolve_engine(engine)
    start = time.perf_counter()

    # Base case: BMC from reset for k cycles.  The resolved engine is
    # passed down verbatim — a resolved legacy path becomes INLINE so
    # the BMC engine does not re-consult the environment defaults.
    base_engine = BmcEngine(circuit, init="reset", simplify=simplify,
                            engine=engine if engine is not None else INLINE,
                            slice=slice, split=split)
    base = base_engine.check_always(
        prop, k=k, assumptions=assumptions, conflict_limit=conflict_limit
    )
    if not base.holds:
        return InductionResult(
            proved=False, k=k, failed_case="base", base=base,
            runtime_s=time.perf_counter() - start, stats=base.stats,
        )

    # Step case: symbolic window of k+1 states; prop and assumptions hold
    # for the first k states, must hold for state k+1... i.e. frames 0..k-1
    # satisfy prop, prove prop at frame k.
    ctx = SatContext(simplify=simplify)
    unroller = Unroller(circuit, ctx.aig, init="symbolic")
    for t in range(k):
        ctx.assert_lit(unroller.expr_lit(prop, t))
        for assume in assumptions:
            ctx.assert_lit(unroller.expr_lit(assume, t))
    for assume in assumptions:
        ctx.assert_lit(unroller.expr_lit(assume, k))
    bad = unroller.expr_lit(prop, k) ^ 1
    if engine is not None:
        step_ob = ctx.export_obligation(
            name=f"induction[{circuit.name}]@step{k}",
            assumptions=[bad], conflict_limit=conflict_limit,
            meta={"kind": "induction-step", "circuit": circuit.name, "k": k},
            slice=slice,
        )
        verdict = engine.solve(step_ob)
        if verdict.sat:
            ctx.adopt_verdict(step_ob, verdict)
        outcome = True if verdict.sat else (False if verdict.unsat else None)
    else:
        outcome = ctx.solve(assumptions=[bad], conflict_limit=conflict_limit)
    if outcome is None:
        raise FormalError("conflict limit exhausted in the induction step")
    if outcome:
        frames = []
        for t in range(k + 1):
            frames.append({
                reg.name: ctx.word_value(unroller.reg_bits(reg, t))
                for reg in circuit.regs.values()
            })
        witness = Witness(frames=frames, failed_frame=k)
        return InductionResult(
            proved=False, k=k, failed_case="step", base=base,
            step_witness=witness,
            runtime_s=time.perf_counter() - start, stats=ctx.stats(),
        )
    return InductionResult(
        proved=True, k=k, base=base,
        runtime_s=time.perf_counter() - start, stats=ctx.stats(),
    )
