"""Static RTL information-flow tracking (IFT) — the baseline of Sec. II.

A conservative, purely structural taint analysis in the spirit of
RTLIFT/GLIFT: a register is tainted at cycle ``t+1`` if any tainted
register appears in the combinational cone of its next-state function at
cycle ``t``.  This over-approximates real information flow — it ignores
all gating conditions — which is exactly the baseline's weakness the paper
discusses: it cannot distinguish the secure design (where the secret
reaches internal buffers but can never influence architectural state) from
the vulnerable ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.hdl.analysis import sequential_fanin_map
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Reg


@dataclass
class TaintReport:
    """Result of a k-step taint propagation."""

    per_cycle: List[Set[Reg]]
    reached_arch: Dict[str, int] = field(default_factory=dict)

    @property
    def k(self) -> int:
        return len(self.per_cycle) - 1

    def tainted_at(self, cycle: int) -> Set[Reg]:
        return self.per_cycle[min(cycle, self.k)]

    def first_arch_cycle(self) -> Optional[int]:
        """Earliest cycle at which any architectural register is tainted."""
        cycles = sorted(self.reached_arch.values())
        return cycles[0] if cycles else None

    def flags_leak(self) -> bool:
        return bool(self.reached_arch)


def propagate_taint(
    circuit: Circuit,
    sources: Iterable[Reg],
    k: int,
    barrier: Iterable[Reg] = (),
) -> TaintReport:
    """Propagate taint for ``k`` cycles from ``sources``.

    ``barrier`` registers never become tainted (used to model sanitization
    or to restrict the analysis to a path, as taint-property approaches
    require).
    """
    fanin = sequential_fanin_map(circuit)
    blocked = set(barrier)
    tainted: Set[Reg] = {r for r in sources if r not in blocked}
    per_cycle: List[Set[Reg]] = [set(tainted)]
    reached_arch: Dict[str, int] = {
        r.name: 0 for r in tainted if r.arch
    }
    for cycle in range(1, k + 1):
        new_tainted: Set[Reg] = set(tainted)
        for reg, deps in fanin.items():
            if reg in blocked or reg in new_tainted:
                continue
            if any(dep in tainted for dep in deps):
                new_tainted.add(reg)
        for reg in new_tainted - tainted:
            if reg.arch and reg.name not in reached_arch:
                reached_arch[reg.name] = cycle
        tainted = new_tainted
        per_cycle.append(set(tainted))
        if len(tainted) == len(per_cycle[-2]) and tainted == per_cycle[-2]:
            # Fixpoint: extend the report without recomputation.
            for _ in range(cycle + 1, k + 1):
                per_cycle.append(set(tainted))
            break
    return TaintReport(per_cycle=per_cycle, reached_arch=reached_arch)


def taint_fixpoint(
    circuit: Circuit, sources: Iterable[Reg], barrier: Iterable[Reg] = ()
) -> TaintReport:
    """Propagate until the taint set stops growing."""
    return propagate_taint(circuit, sources, k=len(circuit.regs) + 1,
                           barrier=barrier)
