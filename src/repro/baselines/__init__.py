"""Baseline analyses the paper compares against (Sec. II)."""

from repro.baselines.ift import TaintReport, propagate_taint, taint_fixpoint
from repro.baselines.taintprop import TaintPropertyResult, check_taint_property

__all__ = [
    "TaintPropertyResult",
    "TaintReport",
    "check_taint_property",
    "propagate_taint",
    "taint_fixpoint",
]
