"""Path-restricted taint properties — the formal-security baseline of
Sec. II ([24], [25] in the paper).

A *taint property* asks: can information flow from a source register to a
destination register along a user-specified path within ``k`` cycles?
Unlike UPEC it requires the verifier to anticipate the leakage path
("clever thinking along the lines of a possible attacker"); a path that
omits the actual channel makes the check pass vacuously, which is how
non-obvious channels such as Orc escape this class of techniques.

The checker runs the structural taint propagation restricted to the path
set (everything off the path is a barrier).  The paper notes that every
counterexample to a taint property is also a UPEC counterexample; the
benchmark compares verdicts across all design variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.baselines.ift import TaintReport, propagate_taint
from repro.hdl.circuit import Circuit
from repro.hdl.expr import Reg


@dataclass
class TaintPropertyResult:
    """Outcome of one taint-property check."""

    src_names: List[str]
    dst_name: str
    k: int
    path_restricted: bool
    reaches: bool
    first_cycle: Optional[int]

    def describe(self) -> str:
        scope = "path-restricted" if self.path_restricted else "unrestricted"
        verdict = (
            f"taint reaches {self.dst_name} at cycle {self.first_cycle}"
            if self.reaches else f"taint does NOT reach {self.dst_name}"
        )
        return f"[{scope}, k={self.k}] {verdict}"


def check_taint_property(
    circuit: Circuit,
    sources: Iterable[Reg],
    destination: Reg,
    k: int,
    path: Optional[Iterable[Reg]] = None,
) -> TaintPropertyResult:
    """Check whether taint can flow ``sources -> destination`` in ``k``
    cycles; ``path`` (when given) restricts propagation to those registers
    (plus sources and destination)."""
    sources = list(sources)
    path_restricted = path is not None
    if path_restricted:
        allowed: Set[Reg] = set(path) | set(sources) | {destination}
        barrier = [r for r in circuit.regs.values() if r not in allowed]
    else:
        barrier = []
    report = propagate_taint(circuit, sources, k, barrier=barrier)
    first: Optional[int] = None
    for cycle, tainted in enumerate(report.per_cycle):
        if destination in tainted:
            first = cycle
            break
    return TaintPropertyResult(
        src_names=[r.name for r in sources],
        dst_name=destination.name,
        k=k,
        path_restricted=path_restricted,
        reaches=first is not None,
        first_cycle=first,
    )
