"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``         print design-variant statistics
``check``        run one UPEC property check
``methodology``  run the full Fig.-5 iterative flow
``attack``       run the Orc or Meltdown-style attack on the simulator

The formal commands (``check``, ``methodology``) accept
``--no-preprocess`` to disable the SatELite-style CNF pre-/inprocessor
(variable elimination, subsumption, probing; on by default) and
``--stats`` to print solver and simplifier counters after the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import UpecChecker, UpecMethodology, UpecModel, UpecScenario
from repro.core.report import format_kv_block, format_table
from repro.hdl import circuit_stats
from repro.soc import SocConfig, build_soc
from repro.soc.config import FORMAL_CONFIG_KWARGS, SIM_CONFIG_KWARGS

VARIANTS = ("secure", "orc", "meltdown", "pmp_bug")


def _build(variant: str, geometry: str):
    kwargs = FORMAL_CONFIG_KWARGS if geometry == "formal" else SIM_CONFIG_KWARGS
    return build_soc(getattr(SocConfig, variant)(**kwargs))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("variant", choices=VARIANTS)
    parser.add_argument(
        "--geometry", choices=("formal", "sim"), default="formal",
        help="SoC geometry (default: formal — the small UPEC geometry)",
    )


def cmd_info(args) -> int:
    soc = _build(args.variant, args.geometry)
    stats = circuit_stats(soc.circuit)
    data = {
        "variant": soc.config.name,
        "secret location": f"dmem[{soc.secret_eff_addr}]",
        "secret cache line": soc.secret_line_index,
        **stats,
        "bypass (Orc opt.)": soc.config.mem_forward_bypass,
        "refill cancel on flush": soc.config.refill_cancel_on_flush,
        "flush waits for mem": soc.config.flush_waits_for_mem,
        "PMP TOR lock rule": soc.config.pmp_tor_lock,
    }
    print(format_kv_block(f"SoC {soc.config.name!r}", data))
    return 0


def cmd_check(args) -> int:
    soc = _build(args.variant, "formal")
    scenario = UpecScenario(secret_in_cache=not args.uncached)
    model = UpecModel(soc, scenario, simplify=not args.no_preprocess)
    result = UpecChecker(model).check(
        k=args.k, conflict_limit=args.conflict_limit
    )
    print(f"scenario: {scenario.describe()}")
    print(result.describe())
    if args.stats:
        print(format_kv_block("solver", result.stats))
    if result.alert is not None:
        print(result.alert.render_witness())
        return 2 if result.alert.is_l_alert else 1
    return 0


def cmd_methodology(args) -> int:
    soc = _build(args.variant, "formal")
    scenario = UpecScenario(secret_in_cache=not args.uncached)
    result = UpecMethodology(
        soc, scenario, simplify=not args.no_preprocess
    ).run(k=args.k)
    print(result.describe())
    if args.stats:
        print(format_kv_block("solver", result.stats))
    return 0 if result.verdict == "secure_bounded" else 2


def cmd_attack(args) -> int:
    soc = _build(args.variant, "sim")
    secret = int(args.secret, 0)
    if args.kind == "orc":
        from repro.attacks import run_orc_attack

        result = run_orc_attack(soc, secret)
        print(result.series.render())
        recovered = result.recovered_index
        true = result.true_index
    else:
        from repro.attacks import run_meltdown_attack

        result = run_meltdown_attack(soc, secret)
        rows = [[g, t] for g, t in zip(result.series.guesses,
                                       result.series.cycles)]
        print(format_table(["probe", "cycles"], rows))
        recovered = result.recovered_value
        true = result.true_value
    if recovered is None:
        print("no leak observable (flat timing)")
        return 0
    print(f"recovered: {recovered} (true: {true})")
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UPEC: unique program execution checking (DATE 2019 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="design-variant statistics")
    _add_common(p_info)
    p_info.set_defaults(func=cmd_info)

    p_check = sub.add_parser("check", help="one UPEC property check")
    _add_common(p_check)
    p_check.add_argument("--k", type=int, default=2)
    p_check.add_argument("--uncached", action="store_true",
                         help="scenario: D not in cache")
    p_check.add_argument("--conflict-limit", type=int, default=None)
    p_check.add_argument("--no-preprocess", action="store_true",
                         help="solve the raw Tseitin CNF (no simplification)")
    p_check.add_argument("--stats", action="store_true",
                         help="print solver/simplifier statistics")
    p_check.set_defaults(func=cmd_check)

    p_meth = sub.add_parser("methodology", help="full Fig.-5 flow")
    _add_common(p_meth)
    p_meth.add_argument("--k", type=int, default=2)
    p_meth.add_argument("--uncached", action="store_true")
    p_meth.add_argument("--no-preprocess", action="store_true",
                        help="solve the raw Tseitin CNF (no simplification)")
    p_meth.add_argument("--stats", action="store_true",
                        help="print solver/simplifier statistics")
    p_meth.set_defaults(func=cmd_methodology)

    p_att = sub.add_parser("attack", help="simulator-level attack")
    p_att.add_argument("kind", choices=("orc", "meltdown"))
    _add_common(p_att)
    p_att.add_argument("--secret", default="0x6B")
    p_att.set_defaults(func=cmd_attack)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
