"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``         print design-variant statistics
``check``        run one UPEC property check
``methodology``  run the full Fig.-5 iterative flow
``sweep``        run a Tab.-I grid of methodology cells across workers
``attack``       run the Orc or Meltdown-style attack on the simulator

The solver-backed commands (``check``, ``methodology``, ``sweep``)
uniformly accept:

``--no-preprocess``   disable the SatELite-style CNF pre-/inprocessor
``--no-slice``        export whole-context proof obligations instead of
                      cone-of-influence slices
``--stats``           print solver / simplifier / engine counters
                      (including slice reduction ratios)
``--json``            machine-readable result on stdout
``--jobs N``          solve proof obligations on N worker processes
``--cache-dir DIR``   persistent proof cache (re-runs skip proved
                      obligations)
``--conflict-limit``  per-query conflict budget

``attack`` takes ``--stats`` (timing-series counters) and ``--json``
as well; it has no SAT solver, so the solver flags do not apply.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import UpecChecker, UpecMethodology, UpecModel, UpecScenario
from repro.core.report import format_kv_block, format_table
from repro.hdl import circuit_stats
from repro.soc import SocConfig, build_soc
from repro.soc.config import (
    FORMAL_CONFIG_KWARGS,
    SIM_CONFIG_KWARGS,
    VARIANTS,
)


def _build(variant: str, geometry: str):
    kwargs = FORMAL_CONFIG_KWARGS if geometry == "formal" else SIM_CONFIG_KWARGS
    return build_soc(getattr(SocConfig, variant)(**kwargs))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("variant", choices=VARIANTS)
    parser.add_argument(
        "--geometry", choices=("formal", "sim"), default="formal",
        help="SoC geometry (default: formal — the small UPEC geometry)",
    )


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stats", action="store_true",
                        help="print solver/simplifier/engine statistics")
    parser.add_argument("--json", action="store_true",
                        help="print the result as JSON (suppresses the "
                             "human-readable report)")


def _add_solver_flags(parser: argparse.ArgumentParser) -> None:
    """The uniform solver/engine flag set of every SAT-backed command."""
    parser.add_argument("--no-preprocess", action="store_true",
                        help="solve the raw Tseitin CNF (no simplification)")
    parser.add_argument("--no-slice", action="store_true",
                        help="export whole-context proof obligations "
                             "instead of cone-of-influence slices")
    parser.add_argument("--conflict-limit", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for proof obligations "
                             "(default: $REPRO_ENGINE_JOBS or in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent proof-result cache directory")
    _add_output_flags(parser)


def _engine_from_args(args):
    """An explicit ProofEngine when --jobs/--cache-dir ask for one, else
    None (the library then falls back to the environment defaults)."""
    if args.jobs is None and args.cache_dir is None:
        return None
    from repro.engine import ProofEngine

    return ProofEngine(jobs=args.jobs, cache_dir=args.cache_dir)


def _slice_from_args(args):
    """False for --no-slice, else None (the REPRO_ENGINE_SLICE default,
    which is on)."""
    return False if args.no_slice else None


def _emit(args, payload: dict, human: str) -> None:
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(human)


def cmd_info(args) -> int:
    soc = _build(args.variant, args.geometry)
    stats = circuit_stats(soc.circuit)
    data = {
        "variant": soc.config.name,
        "secret location": f"dmem[{soc.secret_eff_addr}]",
        "secret cache line": soc.secret_line_index,
        **stats,
        "bypass (Orc opt.)": soc.config.mem_forward_bypass,
        "refill cancel on flush": soc.config.refill_cancel_on_flush,
        "flush waits for mem": soc.config.flush_waits_for_mem,
        "PMP TOR lock rule": soc.config.pmp_tor_lock,
    }
    print(format_kv_block(f"SoC {soc.config.name!r}", data))
    return 0


def cmd_check(args) -> int:
    soc = _build(args.variant, "formal")
    scenario = UpecScenario(secret_in_cache=not args.uncached)
    model = UpecModel(soc, scenario, simplify=not args.no_preprocess)
    engine = _engine_from_args(args)
    result = UpecChecker(model, engine=engine,
                         slice=_slice_from_args(args)).check(
        k=args.k, conflict_limit=args.conflict_limit
    )
    human = f"scenario: {scenario.describe()}\n{result.describe()}"
    if args.stats and not args.json:
        human += "\n" + format_kv_block("solver", result.stats)
    if result.alert is not None and not args.json:
        human += "\n" + result.alert.render_witness()
    _emit(args, {"scenario": scenario.describe(), **result.to_dict()}, human)
    if result.alert is not None:
        return 2 if result.alert.is_l_alert else 1
    return 0


def cmd_methodology(args) -> int:
    soc = _build(args.variant, "formal")
    scenario = UpecScenario(secret_in_cache=not args.uncached)
    result = UpecMethodology(
        soc, scenario,
        conflict_limit=args.conflict_limit,
        simplify=not args.no_preprocess,
        engine=_engine_from_args(args),
        slice=_slice_from_args(args),
    ).run(k=args.k)
    human = result.describe()
    if args.stats and not args.json:
        human += "\n" + format_kv_block("solver", result.stats)
    _emit(args, result.to_dict(), human)
    return 0 if result.verdict == "secure_bounded" else 2


def cmd_sweep(args) -> int:
    import os

    from repro.engine import CACHE_ENV, ScenarioSweep
    from repro.engine.pool import env_jobs

    variants = [v.strip() for v in args.variants.split(",") if v.strip()]
    for variant in variants:
        if variant not in VARIANTS:
            print(f"unknown variant {variant!r} (choose from "
                  f"{', '.join(VARIANTS)})", file=sys.stderr)
            return 64
    # The sweep parallelizes over cells rather than frames, but the same
    # environment defaults apply when the flags are absent.
    jobs = args.jobs if args.jobs is not None else env_jobs()
    cache_dir = args.cache_dir or os.environ.get(CACHE_ENV) or None
    sweep = ScenarioSweep.table1_grid(
        variants=variants,
        k=args.k,
        cached=args.scenarios in ("cached", "both"),
        uncached=args.scenarios in ("uncached", "both"),
        simplify=not args.no_preprocess,
        conflict_limit=args.conflict_limit,
        cache_dir=cache_dir,
        slice=_slice_from_args(args),
    )
    result = sweep.run(jobs=jobs)
    human = format_table(
        ["cell", "verdict", "iterations", "P-alerts", "runtime"],
        result.rows(),
    )
    human += (f"\n{len(result.outcomes)} cells in {result.runtime_s:.2f}s "
              f"(jobs={result.jobs})")
    if args.stats and not args.json:
        for out in result.outcomes:
            human += "\n" + format_kv_block(out.cell.label,
                                            out.result["stats"])
    _emit(args, result.to_dict(), human)
    return 2 if result.any_insecure() else 0


def cmd_attack(args) -> int:
    soc = _build(args.variant, "sim")
    secret = int(args.secret, 0)
    if args.kind == "orc":
        from repro.attacks import run_orc_attack

        result = run_orc_attack(soc, secret)
        human = result.series.render()
        recovered = result.recovered_index
        true = result.true_index
    else:
        from repro.attacks import run_meltdown_attack

        result = run_meltdown_attack(soc, secret)
        rows = [[g, t] for g, t in zip(result.series.guesses,
                                       result.series.cycles)]
        human = format_table(["probe", "cycles"], rows)
        recovered = result.recovered_value
        true = result.true_value
    cycles = list(result.series.cycles)
    stats = {
        "probes": len(result.series.guesses),
        "min_cycles": min(cycles) if cycles else 0,
        "max_cycles": max(cycles) if cycles else 0,
    }
    leaked = recovered is not None
    if leaked:
        human += f"\nrecovered: {recovered} (true: {true})"
    else:
        human += "\nno leak observable (flat timing)"
    if args.stats and not args.json:
        human += "\n" + format_kv_block("attack", stats)
    payload = {
        "kind": args.kind,
        "variant": args.variant,
        "recovered": recovered,
        "true": true,
        "leaked": leaked,
        "guesses": list(result.series.guesses),
        "cycles": cycles,
        "stats": stats,
    }
    _emit(args, payload, human)
    return 2 if leaked else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UPEC: unique program execution checking (DATE 2019 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="design-variant statistics")
    _add_common(p_info)
    p_info.set_defaults(func=cmd_info)

    p_check = sub.add_parser("check", help="one UPEC property check")
    _add_common(p_check)
    p_check.add_argument("--k", type=int, default=2)
    p_check.add_argument("--uncached", action="store_true",
                         help="scenario: D not in cache")
    _add_solver_flags(p_check)
    p_check.set_defaults(func=cmd_check)

    p_meth = sub.add_parser("methodology", help="full Fig.-5 flow")
    _add_common(p_meth)
    p_meth.add_argument("--k", type=int, default=2)
    p_meth.add_argument("--uncached", action="store_true")
    _add_solver_flags(p_meth)
    p_meth.set_defaults(func=cmd_methodology)

    p_sweep = sub.add_parser(
        "sweep", help="Tab.-I grid: variants x scenarios across workers"
    )
    p_sweep.add_argument("--variants", default=",".join(VARIANTS),
                         help="comma-separated design variants "
                              f"(default: {','.join(VARIANTS)})")
    p_sweep.add_argument("--k", type=int, default=2)
    p_sweep.add_argument("--scenarios",
                         choices=("cached", "uncached", "both"),
                         default="both",
                         help="which Tab.-I columns to run (default: both)")
    _add_solver_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_att = sub.add_parser("attack", help="simulator-level attack")
    p_att.add_argument("kind", choices=("orc", "meltdown"))
    _add_common(p_att)
    p_att.add_argument("--secret", default="0x6B")
    _add_output_flags(p_att)
    p_att.set_defaults(func=cmd_attack)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
