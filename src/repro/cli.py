"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``         print design-variant statistics
``check``        run one UPEC property check
``methodology``  run the full Fig.-5 iterative flow
``sweep``        run a Tab.-I grid of methodology cells across workers
``attack``       run the Orc or Meltdown-style attack on the simulator
``serve``        run a distributed proof-service broker
``worker``       run a proof-service worker against a broker
``chaos-proxy``  run a seeded fault-injecting TCP proxy in front of a
                 broker (resilience testing; see ``repro.dist.chaos``)

The solver-backed commands (``check``, ``methodology``, ``sweep``)
uniformly accept:

``--no-preprocess``   disable the SatELite-style CNF pre-/inprocessor
``--no-slice``        export whole-context proof obligations instead of
                      cone-of-influence slices
``--split``           split each frame's commitment check into
                      per-register(-group) proof obligations so deep
                      frames saturate the worker pool
                      (``--no-split`` overrides ``REPRO_ENGINE_SPLIT``)
``--stats``           print solver / simplifier / engine counters
                      (including slice reduction ratios)
``--json``            machine-readable result on stdout
``--jobs N``          solve proof obligations on N worker processes
``--cache-dir DIR``   persistent proof cache (re-runs skip proved
                      obligations)
``--conflict-limit``  per-query conflict budget
``--wall-budget S``   per-obligation wall-clock budget in seconds
                      (exhaustion yields a distinguishable "timeout"
                      outcome instead of an open-ended solve)
``--connect H:P``     shard proof obligations over a running broker
                      (``repro serve``) and its workers instead of a
                      local pool

``attack`` takes ``--stats`` (timing-series counters) and ``--json``
as well; it has no SAT solver, so the solver flags do not apply.

Usage errors exit with code 64: ``--jobs 0`` or negative anywhere, a
malformed broker address, and ``--connect`` combined with ``--jobs`` on
``check``/``methodology`` (on ``sweep`` the two compose — ``--jobs``
fans cells out locally while each cell's obligations shard over the
broker).  An unreachable broker exits 69.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import UpecChecker, UpecMethodology, UpecModel, UpecScenario
from repro.core.report import format_kv_block, format_table
from repro.errors import DistError, UsageError
from repro.hdl import circuit_stats
from repro.soc import SocConfig, build_soc
from repro.soc.config import (
    FORMAL_CONFIG_KWARGS,
    SIM_CONFIG_KWARGS,
    VARIANTS,
)


def _build(variant: str, geometry: str):
    kwargs = FORMAL_CONFIG_KWARGS if geometry == "formal" else SIM_CONFIG_KWARGS
    return build_soc(getattr(SocConfig, variant)(**kwargs))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("variant", choices=VARIANTS)
    parser.add_argument(
        "--geometry", choices=("formal", "sim"), default="formal",
        help="SoC geometry (default: formal — the small UPEC geometry)",
    )


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stats", action="store_true",
                        help="print solver/simplifier/engine statistics")
    parser.add_argument("--json", action="store_true",
                        help="print the result as JSON (suppresses the "
                             "human-readable report)")


def _add_solver_flags(parser: argparse.ArgumentParser) -> None:
    """The uniform solver/engine flag set of every SAT-backed command."""
    parser.add_argument("--no-preprocess", action="store_true",
                        help="solve the raw Tseitin CNF (no simplification)")
    parser.add_argument("--no-slice", action="store_true",
                        help="export whole-context proof obligations "
                             "instead of cone-of-influence slices")
    split_group = parser.add_mutually_exclusive_group()
    split_group.add_argument("--split", dest="split", action="store_true",
                             default=None,
                             help="split each frame's commitment check "
                                  "into per-register(-group) obligations "
                                  "(default: $REPRO_ENGINE_SPLIT, off)")
    split_group.add_argument("--no-split", dest="split",
                             action="store_false",
                             help="force unsplit frame obligations even "
                                  "when REPRO_ENGINE_SPLIT=1")
    parser.add_argument("--conflict-limit", type=int, default=None)
    parser.add_argument("--wall-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="per-obligation wall-clock budget; an "
                             "exhausted budget reports 'timeout' instead "
                             "of solving open-endedly")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for proof obligations "
                             "(default: $REPRO_ENGINE_JOBS or in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent proof-result cache directory")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="shard proof obligations over a distributed "
                             "proof-service broker (see 'repro serve'; "
                             "default: $REPRO_ENGINE_CONNECT)")
    _add_output_flags(parser)


def _validate_jobs(jobs) -> None:
    """The worker count must be a positive integer — ``--jobs 0`` has no
    sensible meaning and must not silently fall through to a one-process
    pool (or to ``multiprocessing`` with a clamped count)."""
    if jobs is not None and jobs < 1:
        raise UsageError(f"--jobs must be a positive integer, got {jobs}")


def _validate_address(spec: str) -> None:
    """A malformed HOST:PORT is a usage error (exit 64), not a
    connection failure."""
    from repro.dist.protocol import parse_address

    try:
        parse_address(spec)
    except DistError as exc:
        raise UsageError(str(exc)) from None


def _connect_from_args(args) -> str:
    """The effective broker address (flag, else environment), or None."""
    if args.connect:
        return args.connect
    from repro.dist.remote import env_connect

    return env_connect()


def _engine_from_args(args):
    """An explicit engine when --connect/--jobs/--cache-dir ask for one,
    else None (the library then falls back to the environment
    defaults)."""
    _validate_jobs(args.jobs)
    if args.connect and args.jobs is not None:
        raise UsageError("--jobs does not combine with --connect: the "
                         "broker's worker fleet sets the parallelism")
    # An explicit --jobs wins over the REPRO_ENGINE_CONNECT environment
    # default (flags beat environment, as with the other engine knobs;
    # --jobs plus explicit --connect already errored above).
    connect = None if args.jobs is not None else _connect_from_args(args)
    if connect is not None:
        _validate_address(connect)
        from repro.dist.remote import RemoteEngine

        return RemoteEngine(connect, cache_dir=args.cache_dir)
    # A bare --split still needs the obligation path (the incremental
    # in-context solver has nothing to split), so it forces an engine at
    # the environment-default jobs setting.
    if args.jobs is None and args.cache_dir is None and not args.split:
        return None
    from repro.engine import ProofEngine

    return ProofEngine(jobs=args.jobs, cache_dir=args.cache_dir)


def _slice_from_args(args):
    """False for --no-slice, else None (the REPRO_ENGINE_SLICE default,
    which is on)."""
    return False if args.no_slice else None


def _split_from_args(args):
    """True for --split, False for --no-split, else None (the
    REPRO_ENGINE_SPLIT default, which is off)."""
    return args.split


def _emit(args, payload: dict, human: str) -> None:
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(human)


def cmd_info(args) -> int:
    soc = _build(args.variant, args.geometry)
    stats = circuit_stats(soc.circuit)
    data = {
        "variant": soc.config.name,
        "secret location": f"dmem[{soc.secret_eff_addr}]",
        "secret cache line": soc.secret_line_index,
        **stats,
        "bypass (Orc opt.)": soc.config.mem_forward_bypass,
        "refill cancel on flush": soc.config.refill_cancel_on_flush,
        "flush waits for mem": soc.config.flush_waits_for_mem,
        "PMP TOR lock rule": soc.config.pmp_tor_lock,
    }
    print(format_kv_block(f"SoC {soc.config.name!r}", data))
    return 0


def cmd_check(args) -> int:
    soc = _build(args.variant, "formal")
    scenario = UpecScenario(secret_in_cache=not args.uncached)
    model = UpecModel(soc, scenario, simplify=not args.no_preprocess)
    engine = _engine_from_args(args)
    result = UpecChecker(model, engine=engine,
                         slice=_slice_from_args(args),
                         split=_split_from_args(args)).check(
        k=args.k, conflict_limit=args.conflict_limit,
        wall_budget=args.wall_budget,
    )
    human = f"scenario: {scenario.describe()}\n{result.describe()}"
    if args.stats and not args.json:
        human += "\n" + format_kv_block("solver", result.stats)
    if result.alert is not None and not args.json:
        human += "\n" + result.alert.render_witness()
    _emit(args, {"scenario": scenario.describe(), **result.to_dict()}, human)
    if result.alert is not None:
        return 2 if result.alert.is_l_alert else 1
    return 0


def cmd_methodology(args) -> int:
    soc = _build(args.variant, "formal")
    scenario = UpecScenario(secret_in_cache=not args.uncached)
    result = UpecMethodology(
        soc, scenario,
        conflict_limit=args.conflict_limit,
        simplify=not args.no_preprocess,
        engine=_engine_from_args(args),
        slice=_slice_from_args(args),
        split=_split_from_args(args),
        wall_budget=args.wall_budget,
    ).run(k=args.k)
    human = result.describe()
    if args.stats and not args.json:
        human += "\n" + format_kv_block("solver", result.stats)
    _emit(args, result.to_dict(), human)
    return 0 if result.verdict == "secure_bounded" else 2


def cmd_sweep(args) -> int:
    import os

    from repro.engine import CACHE_ENV, ScenarioSweep
    from repro.engine.pool import env_jobs

    _validate_jobs(args.jobs)
    connect = _connect_from_args(args)
    if connect is not None:
        # Unlike check/methodology, --jobs composes with --connect here:
        # it fans cells out locally while each cell's obligations shard
        # over the broker.
        _validate_address(connect)
    variants = [v.strip() for v in args.variants.split(",") if v.strip()]
    for variant in variants:
        if variant not in VARIANTS:
            print(f"unknown variant {variant!r} (choose from "
                  f"{', '.join(VARIANTS)})", file=sys.stderr)
            return 64
    # The sweep parallelizes over cells rather than frames, but the same
    # environment defaults apply when the flags are absent.
    jobs = args.jobs if args.jobs is not None else env_jobs()
    cache_dir = args.cache_dir or os.environ.get(CACHE_ENV) or None
    sweep = ScenarioSweep.table1_grid(
        variants=variants,
        k=args.k,
        cached=args.scenarios in ("cached", "both"),
        uncached=args.scenarios in ("uncached", "both"),
        simplify=not args.no_preprocess,
        conflict_limit=args.conflict_limit,
        cache_dir=cache_dir,
        slice=_slice_from_args(args),
        connect=connect,
        split=_split_from_args(args),
        wall_budget=args.wall_budget,
    )
    result = sweep.run(jobs=jobs)
    human = format_table(
        ["cell", "verdict", "iterations", "P-alerts", "runtime"],
        result.rows(),
    )
    human += (f"\n{len(result.outcomes)} cells in {result.runtime_s:.2f}s "
              f"(jobs={result.jobs})")
    if args.stats and not args.json:
        for out in result.outcomes:
            human += "\n" + format_kv_block(out.cell.label,
                                            out.result["stats"])
    _emit(args, result.to_dict(), human)
    return 2 if result.any_insecure() else 0


def cmd_attack(args) -> int:
    soc = _build(args.variant, "sim")
    secret = int(args.secret, 0)
    if args.kind == "orc":
        from repro.attacks import run_orc_attack

        result = run_orc_attack(soc, secret)
        human = result.series.render()
        recovered = result.recovered_index
        true = result.true_index
    else:
        from repro.attacks import run_meltdown_attack

        result = run_meltdown_attack(soc, secret)
        rows = [[g, t] for g, t in zip(result.series.guesses,
                                       result.series.cycles)]
        human = format_table(["probe", "cycles"], rows)
        recovered = result.recovered_value
        true = result.true_value
    cycles = list(result.series.cycles)
    stats = {
        "probes": len(result.series.guesses),
        "min_cycles": min(cycles) if cycles else 0,
        "max_cycles": max(cycles) if cycles else 0,
    }
    leaked = recovered is not None
    if leaked:
        human += f"\nrecovered: {recovered} (true: {true})"
    else:
        human += "\nno leak observable (flat timing)"
    if args.stats and not args.json:
        human += "\n" + format_kv_block("attack", stats)
    payload = {
        "kind": args.kind,
        "variant": args.variant,
        "recovered": recovered,
        "true": true,
        "leaked": leaked,
        "guesses": list(result.series.guesses),
        "cycles": cycles,
        "stats": stats,
    }
    _emit(args, payload, human)
    return 2 if leaked else 0


def cmd_serve(args) -> int:
    import time

    from repro.dist.broker import Broker

    if args.heartbeat_timeout < 2.0:
        # Workers heartbeat every 1 s while solving; a tighter timeout
        # evicts healthy busy workers and flaps every batch.
        raise UsageError("--heartbeat-timeout must be at least 2 seconds "
                         f"(got {args.heartbeat_timeout}); workers "
                         "heartbeat once per second")
    if args.durable and not args.cache_dir:
        raise UsageError("--durable requires --cache-dir: the queue "
                         "journals and verdict store live there")
    if args.max_queued is not None and args.max_queued < 1:
        raise UsageError("--max-queued must be a positive integer "
                         f"(got {args.max_queued})")
    broker = Broker(
        host=args.host, port=args.port,
        heartbeat_timeout=args.heartbeat_timeout,
        http_port=args.http_port,
        cache_dir=args.cache_dir if args.durable else None,
        max_queued=args.max_queued,
    )
    try:
        broker.start()
    except OSError as exc:
        raise DistError(
            f"cannot listen on {args.host}:{args.port}: {exc}") from exc
    print(f"proof-service broker listening on {broker.address} "
          f"(heartbeat timeout {broker.heartbeat_timeout:.0f}s)"
          + (f", job API on http://{broker.host}:{broker.http_port}"
             if broker.http_port is not None else "")
          + (f", durable state in {args.cache_dir}"
             if args.durable else ""),
          flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        broker.stop()
    return 0


def cmd_worker(args) -> int:
    _validate_address(args.connect)
    from repro.dist.worker import Worker

    worker = Worker(
        args.connect,
        cache_dir=args.cache_dir,
        name=args.name,
        max_retries=args.max_retries,
    )
    print(f"worker {worker.name} pulling from {args.connect}"
          + (f" (cache: {args.cache_dir})" if args.cache_dir else ""),
          flush=True)
    try:
        solved = worker.run()
    except KeyboardInterrupt:
        solved = worker.solved
    print(f"worker {worker.name} exiting after {solved} obligations",
          flush=True)
    return 0


def _http_json(url: str, payload=None, timeout: float = 10.0):
    """One request against a broker's job API (stdlib only)."""
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as exc:
        # 4xx/5xx replies still carry a JSON body worth showing.
        try:
            return exc.code, json.loads(exc.read().decode())
        except ValueError:
            return exc.code, {"error": str(exc)}
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise DistError(f"cannot reach job API at {url}: {exc}") from exc


def cmd_submit(args) -> int:
    import time

    _validate_address(args.api)
    base = f"http://{args.api}"
    spec = {
        "kind": args.kind,
        "variant": args.variant,
        "scenario": "uncached" if args.uncached else "cached",
        "k": args.k,
        "priority": args.priority,
    }
    if args.conflict_limit is not None:
        spec["conflict_limit"] = args.conflict_limit
    if args.wall_budget is not None:
        spec["wall_budget"] = args.wall_budget
    status, reply = _http_json(base + "/jobs", payload=spec)
    if status != 202:
        raise DistError(f"broker rejected the job (HTTP {status}): "
                        f"{reply.get('error', reply)}")
    job_id = reply["id"]
    if not args.wait:
        print(json.dumps(reply, indent=2))
        return 0
    # Progress goes to stderr so `repro submit --wait > result.json`
    # pipes clean JSON.
    print(f"submitted {job_id}; polling...", file=sys.stderr, flush=True)
    deadline = (time.monotonic() + args.wait_timeout
                if args.wait_timeout is not None else None)
    while True:
        status, state = _http_json(f"{base}/jobs/{job_id}")
        if status == 200 and state.get("status") in ("done", "failed"):
            break
        if deadline is not None and time.monotonic() >= deadline:
            # A hung broker (or a job stuck behind a dead fleet) must
            # not pin this client forever: give up loudly, leaving the
            # job id so the caller can re-poll with `repro status`.
            raise DistError(
                f"job {job_id} did not finish within "
                f"--wait-timeout {args.wait_timeout:.0f}s (last status: "
                f"{state.get('status', 'unknown')!r}); it may still "
                f"complete — check with: repro status --api {args.api} "
                f"--job {job_id}")
        time.sleep(args.poll_interval)
    status, result = _http_json(f"{base}/jobs/{job_id}/result")
    print(json.dumps(result, indent=2))
    return 0 if status == 200 else 69


def cmd_chaos_proxy(args) -> int:
    _validate_address(args.listen)
    _validate_address(args.upstream)
    from repro.dist.chaos import ChaosPlan, ChaosProxy
    from repro.dist.protocol import parse_address

    plan = ChaosPlan.from_env(seed=args.seed)
    for name, value in (("reset", args.reset), ("stall", args.stall),
                        ("truncate", args.truncate),
                        ("duplicate", args.duplicate),
                        ("bitflip", args.bitflip)):
        if value is not None:
            setattr(plan, f"{name}_rate", value)
    if args.stall_max is not None:
        plan.stall_max_s = args.stall_max
    proxy = ChaosProxy(parse_address(args.listen),
                       parse_address(args.upstream), plan=plan)
    try:
        proxy.start()
    except OSError as exc:
        raise DistError(
            f"cannot listen on {args.listen}: {exc}") from exc
    print(f"chaos proxy {proxy.address} -> "
          f"{args.upstream} (plan: {json.dumps(plan.describe())})",
          flush=True)
    import time
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.stop()
        print(json.dumps(proxy.stats(), indent=2), file=sys.stderr)
    return 0


def cmd_status(args) -> int:
    _validate_address(args.api)
    base = f"http://{args.api}"
    if args.job:
        status, state = _http_json(f"{base}/jobs/{args.job}")
        print(json.dumps(state, indent=2))
        return 0 if status == 200 else 69
    status, health = _http_json(base + "/healthz")
    print(json.dumps(health, indent=2))
    return 0 if status == 200 else 69


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UPEC: unique program execution checking (DATE 2019 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="design-variant statistics")
    _add_common(p_info)
    p_info.set_defaults(func=cmd_info)

    p_check = sub.add_parser("check", help="one UPEC property check")
    _add_common(p_check)
    p_check.add_argument("--k", type=int, default=2)
    p_check.add_argument("--uncached", action="store_true",
                         help="scenario: D not in cache")
    _add_solver_flags(p_check)
    p_check.set_defaults(func=cmd_check)

    p_meth = sub.add_parser("methodology", help="full Fig.-5 flow")
    _add_common(p_meth)
    p_meth.add_argument("--k", type=int, default=2)
    p_meth.add_argument("--uncached", action="store_true")
    _add_solver_flags(p_meth)
    p_meth.set_defaults(func=cmd_methodology)

    p_sweep = sub.add_parser(
        "sweep", help="Tab.-I grid: variants x scenarios across workers"
    )
    p_sweep.add_argument("--variants", default=",".join(VARIANTS),
                         help="comma-separated design variants "
                              f"(default: {','.join(VARIANTS)})")
    p_sweep.add_argument("--k", type=int, default=2)
    p_sweep.add_argument("--scenarios",
                         choices=("cached", "uncached", "both"),
                         default="both",
                         help="which Tab.-I columns to run (default: both)")
    _add_solver_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_att = sub.add_parser("attack", help="simulator-level attack")
    p_att.add_argument("kind", choices=("orc", "meltdown"))
    _add_common(p_att)
    p_att.add_argument("--secret", default="0x6B")
    _add_output_flags(p_att)
    p_att.set_defaults(func=cmd_attack)

    p_serve = sub.add_parser(
        "serve", help="run a distributed proof-service broker"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7769,
                         help="listen port (0 picks an ephemeral port)")
    p_serve.add_argument("--http-port", type=int, default=None,
                         metavar="PORT",
                         help="also serve the HTTP/JSON job API on this "
                              "port (see 'repro submit'/'repro status')")
    p_serve.add_argument("--cache-dir", default=None,
                         help="verdict store + durable queue/job state "
                              "(required by --durable)")
    p_serve.add_argument("--durable", action="store_true",
                         help="persist queue, memo and job state under "
                              "--cache-dir so a restarted broker resumes "
                              "where it died")
    p_serve.add_argument("--heartbeat-timeout", type=float, default=10.0,
                         help="seconds of silence before a worker is "
                              "declared dead and its work requeued")
    p_serve.add_argument("--max-queued", type=int, default=None,
                         metavar="N",
                         help="bound the live obligation queue: past N "
                              "queued, submits get a retry-after refusal "
                              "(clients back off) and POST /jobs returns "
                              "503 (default: unbounded)")
    p_serve.set_defaults(func=cmd_serve)

    p_worker = sub.add_parser(
        "worker", help="run a proof-service worker against a broker"
    )
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="broker address (see 'repro serve')")
    p_worker.add_argument("--cache-dir", default=None,
                          help="local proof cache: verdict hits skip the "
                               "solve, warm-start entries skip "
                               "preprocessing, broker gossip is written "
                               "through")
    p_worker.add_argument("--name", default="",
                          help="worker name shown in broker status")
    p_worker.add_argument("--max-retries", type=int, default=10,
                          help="reconnect attempts before giving up on "
                               "an unreachable broker")
    p_worker.set_defaults(func=cmd_worker)

    p_submit = sub.add_parser(
        "submit", help="submit a verification job to a broker's job API"
    )
    p_submit.add_argument("variant", choices=VARIANTS)
    p_submit.add_argument("--api", required=True, metavar="HOST:PORT",
                          help="broker job-API address "
                               "(see 'repro serve --http-port')")
    p_submit.add_argument("--kind", choices=("methodology", "check"),
                          default="methodology")
    p_submit.add_argument("--k", type=int, default=2)
    p_submit.add_argument("--uncached", action="store_true",
                          help="secret-not-in-cache scenario")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="scheduling priority (higher dispatches "
                               "first; FIFO within a level)")
    p_submit.add_argument("--conflict-limit", type=int, default=None)
    p_submit.add_argument("--wall-budget", type=float, default=None,
                          metavar="SECONDS",
                          help="per-obligation wall-clock budget for the "
                               "job (exhaustion yields 'timeout')")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes and print "
                               "its result")
    p_submit.add_argument("--poll-interval", type=float, default=1.0,
                          help="seconds between --wait polls")
    p_submit.add_argument("--wait-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="give up on --wait after this long (exit "
                               "69; the job keeps running broker-side "
                               "and stays queryable via 'repro status')")
    p_submit.set_defaults(func=cmd_submit)

    p_chaos = sub.add_parser(
        "chaos-proxy",
        help="seeded fault-injecting TCP proxy in front of a broker",
        description="Run a frame-aware chaos proxy: point workers and "
                    "clients at --listen instead of the broker and the "
                    "proxy injects a reproducible, seed-determined "
                    "schedule of resets, stalls, truncated/duplicated "
                    "frames and payload bit-flips.  Rates default to "
                    "the REPRO_CHAOS_* environment knobs; flags win.",
    )
    p_chaos.add_argument("--listen", required=True, metavar="HOST:PORT",
                         help="address to accept client/worker dials on")
    p_chaos.add_argument("--upstream", required=True, metavar="HOST:PORT",
                         help="the real broker address")
    p_chaos.add_argument("--seed", type=int, default=None,
                         help="fault-schedule seed "
                              "(default: $REPRO_CHAOS_SEED or 0)")
    p_chaos.add_argument("--reset", type=float, default=None,
                         metavar="P", help="per-frame reset probability")
    p_chaos.add_argument("--stall", type=float, default=None,
                         metavar="P", help="per-frame stall probability")
    p_chaos.add_argument("--stall-max", type=float, default=None,
                         metavar="S", help="longest injected stall")
    p_chaos.add_argument("--truncate", type=float, default=None,
                         metavar="P",
                         help="per-frame truncation probability")
    p_chaos.add_argument("--duplicate", type=float, default=None,
                         metavar="P",
                         help="per-frame duplication probability")
    p_chaos.add_argument("--bitflip", type=float, default=None,
                         metavar="P",
                         help="per-frame payload bit-flip probability")
    p_chaos.set_defaults(func=cmd_chaos_proxy)

    p_status = sub.add_parser(
        "status", help="query a broker's job API (/healthz or one job)"
    )
    p_status.add_argument("--api", required=True, metavar="HOST:PORT",
                          help="broker job-API address")
    p_status.add_argument("--job", default=None, metavar="ID",
                          help="show one job instead of service health")
    p_status.set_defaults(func=cmd_status)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except UsageError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 64
    except DistError as exc:
        print(f"distributed proof service error: {exc}", file=sys.stderr)
        return 69


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
