"""Scenario sweeps: whole Tab.-I/II grids as one batch job.

A sweep cell is (design variant x scenario x window length).  Two cell
types exist: ``methodology`` cells run the full Fig.-5 loop (Tab. I,
:meth:`ScenarioSweep.table1_grid`), and ``find_first_alert_window``
cells grow the UPEC window until the first counterexample appears — the
window-length-for-alert measurements of Tab. II
(:meth:`ScenarioSweep.table2_grid`).  Cells are completely independent,
so the sweep schedules them across worker processes — this is the
coarse-grained sibling of the per-frame obligation parallelism in
:mod:`repro.engine.pool`, and the two compose with the persistent proof
cache (workers share one cache directory; re-runs of a grid skip every
already-proved obligation).  With ``connect`` set to a broker address
each cell additionally shards its obligations over the distributed
proof service (:mod:`repro.dist`).

Workers rebuild the SoC from the variant name, so only plain data
crosses the process boundary (no circuit pickling); each worker process
memoizes the build per variant, so a grid's repeated rows pay it once.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.soc.config import VARIANTS


#: Cell types: the full Fig.-5 methodology loop (Tab. I) or the
#: grow-the-window-until-alert measurement (Tab. II).
CELL_METHODOLOGY = "methodology"
CELL_ALERT_WINDOW = "find_first_alert_window"


@dataclass
class SweepCell:
    """One (variant, scenario, k) grid point.

    For ``find_first_alert_window`` cells ``k`` is the *maximum* window
    length: the check walks frames 1..k and reports the first alerting
    frame (or proves the whole window)."""

    variant: str
    scenario_kwargs: Dict[str, Any]
    k: int
    label: str = ""
    cell_type: str = CELL_METHODOLOGY

    def __post_init__(self) -> None:
        if not self.label:
            cached = self.scenario_kwargs.get("secret_in_cache", True)
            scen = "cached" if cached else "uncached"
            if self.cell_type == CELL_ALERT_WINDOW:
                self.label = f"{self.variant}/{scen}/window<={self.k}"
            else:
                self.label = f"{self.variant}/{scen}/k={self.k}"


@dataclass
class SweepOutcome:
    """A cell plus its (JSON-serializable) methodology result."""

    cell: SweepCell
    result: Dict[str, Any]
    runtime_s: float = 0.0

    @property
    def verdict(self) -> str:
        return self.result["verdict"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.cell.label,
            "variant": self.cell.variant,
            "scenario": dict(self.cell.scenario_kwargs),
            "k": self.cell.k,
            "cell_type": self.cell.cell_type,
            "runtime_s": self.runtime_s,
            "result": self.result,
        }


@dataclass
class SweepResult:
    """All outcomes of one grid run, in cell order."""

    outcomes: List[SweepOutcome] = field(default_factory=list)
    runtime_s: float = 0.0
    jobs: int = 1

    def verdicts(self) -> Dict[str, str]:
        return {out.cell.label: out.verdict for out in self.outcomes}

    def any_insecure(self) -> bool:
        return any(out.verdict == "insecure" for out in self.outcomes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "cells": [out.to_dict() for out in self.outcomes],
        }

    def rows(self) -> List[List[Any]]:
        """Rows for a Tab.-I/II style report table.

        Methodology cells report iteration/P-alert counts; alert-window
        cells have neither and show the first alerting frame instead."""
        rows = []
        for out in self.outcomes:
            result = out.result
            if out.cell.cell_type == CELL_ALERT_WINDOW:
                frame = result.get("alert_frame")
                detail = f"frame {frame}" if frame is not None \
                    else f"none<={out.cell.k}"
                rows.append([
                    out.cell.label,
                    result["verdict"],
                    detail,
                    1 if result.get("alert") else 0,
                    f"{out.runtime_s:.2f}s",
                ])
            else:
                rows.append([
                    out.cell.label,
                    result["verdict"],
                    result["iterations"],
                    len(result["p_alerts"]),
                    f"{out.runtime_s:.2f}s",
                ])
        return rows


#: Per-worker-process SoC memo: grid rows repeat the same few variants,
#: and the circuit build dominates short cells (see ``bench_model_build``).
#: Sharing one Soc across cells is safe — the Soc/Circuit is immutable
#: after ``finalize`` and every cell builds its own UpecModel/SatContext.
_SOC_CACHE: Dict[str, Any] = {}


def _soc_for(variant: str):
    soc = _SOC_CACHE.get(variant)
    if soc is None:
        from repro.soc import SocConfig, build_soc
        from repro.soc.config import FORMAL_CONFIG_KWARGS

        config = getattr(SocConfig, variant)(**FORMAL_CONFIG_KWARGS)
        soc = _SOC_CACHE[variant] = build_soc(config)
    return soc


def _run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker body: build (or reuse) the SoC, run the cell, return dicts.

    Imports stay inside the function so the engine package has no
    import-time dependency on :mod:`repro.core` (which itself imports the
    engine's obligation layer).
    """
    from repro.core.methodology import UpecMethodology
    from repro.core.model import UpecModel, UpecScenario
    from repro.core.upec import UpecChecker
    from repro.engine.pool import INLINE, ProofEngine

    start = time.perf_counter()
    soc = _soc_for(payload["variant"])
    scenario = UpecScenario(**payload["scenario"])
    # With a broker address the cell shards its obligations over the
    # distributed proof service; with a cache directory it takes the
    # local obligation path (jobs=1, in-process) so verdicts persist;
    # otherwise the incremental in-context solver is used.  Never the
    # environment defaults: pools must not nest inside sweep workers.
    if payload.get("connect"):
        from repro.dist.remote import RemoteEngine

        engine = RemoteEngine(payload["connect"],
                              cache_dir=payload["cache_dir"])
    elif payload["cache_dir"] or payload.get("split"):
        # Splitting needs the obligation path — the incremental
        # in-context solver has nothing to split.
        engine = ProofEngine(jobs=1, cache_dir=payload["cache_dir"])
    else:
        engine = INLINE
    try:
        if payload.get("cell_type") == CELL_ALERT_WINDOW:
            model = UpecModel(soc, scenario, simplify=payload["simplify"])
            checker = UpecChecker(model, engine=engine,
                                  slice=payload.get("slice"),
                                  split=payload.get("split"))
            check = checker.find_first_alert_window(
                max_k=payload["k"],
                conflict_limit=payload["conflict_limit"],
            )
            alerted = check.status == "alert"
            result = {
                "verdict": check.status,
                "k": check.k,
                "alert_frame": check.k if alerted else None,
                "alert": check.alert.to_dict() if check.alert is not None
                else None,
                "checked_frames": check.checked_frames,
                "stats": dict(check.stats),
            }
        else:
            methodology = UpecMethodology(
                soc, scenario,
                conflict_limit=payload["conflict_limit"],
                simplify=payload["simplify"],
                engine=engine,
                slice=payload.get("slice"),
                split=payload.get("split"),
                wall_budget=payload.get("wall_budget"),
            )
            result = methodology.run(
                k=payload["k"],
                max_iterations=payload["max_iterations"],
            ).to_dict()
    finally:
        if engine is not INLINE:
            engine.close()
    return {
        "result": result,
        "runtime_s": time.perf_counter() - start,
    }


class ScenarioSweep:
    """Run a grid of methodology cells across worker processes."""

    def __init__(
        self,
        cells: Sequence[SweepCell],
        simplify: bool = True,
        conflict_limit: Optional[int] = None,
        cache_dir: Optional[str] = None,
        max_iterations: int = 64,
        slice: Optional[bool] = None,
        connect: Optional[str] = None,
        split: Optional[bool] = None,
        wall_budget: Optional[float] = None,
    ) -> None:
        self.cells = list(cells)
        self.simplify = simplify
        self.conflict_limit = conflict_limit
        self.cache_dir = cache_dir
        self.max_iterations = max_iterations
        self.slice = slice
        self.connect = connect
        self.split = split
        self.wall_budget = wall_budget

    # ------------------------------------------------------------------
    @classmethod
    def table1_grid(
        cls,
        variants: Sequence[str] = VARIANTS,
        k: int = 2,
        cached: bool = True,
        uncached: bool = True,
        **kwargs,
    ) -> "ScenarioSweep":
        """The Tab.-I grid: every variant in the 'D in cache' and
        'D not in cache' scenarios."""
        from repro.core.model import UpecScenario

        cells = []
        for variant in variants:
            scenarios = []
            if cached:
                scenarios.append(UpecScenario(secret_in_cache=True))
            if uncached:
                scenarios.append(UpecScenario(secret_in_cache=False))
            for scenario in scenarios:
                cells.append(SweepCell(
                    variant=variant,
                    scenario_kwargs=asdict(scenario),
                    k=k,
                ))
        return cls(cells, **kwargs)

    @classmethod
    def table2_grid(
        cls,
        variants: Sequence[str] = VARIANTS,
        max_k: int = 4,
        cached: bool = True,
        uncached: bool = False,
        **kwargs,
    ) -> "ScenarioSweep":
        """The Tab.-II grid: for every variant, grow the UPEC window up
        to ``max_k`` frames and report the window length at which the
        first alert appears (vulnerable designs) or that the whole
        window proves (fixed designs)."""
        from repro.core.model import UpecScenario

        cells = []
        for variant in variants:
            scenarios = []
            if cached:
                scenarios.append(UpecScenario(secret_in_cache=True))
            if uncached:
                scenarios.append(UpecScenario(secret_in_cache=False))
            for scenario in scenarios:
                cells.append(SweepCell(
                    variant=variant,
                    scenario_kwargs=asdict(scenario),
                    k=max_k,
                    cell_type=CELL_ALERT_WINDOW,
                ))
        return cls(cells, **kwargs)

    # ------------------------------------------------------------------
    def _payload(self, cell: SweepCell) -> Dict[str, Any]:
        return {
            "variant": cell.variant,
            "scenario": dict(cell.scenario_kwargs),
            "k": cell.k,
            "cell_type": cell.cell_type,
            "simplify": self.simplify,
            "conflict_limit": self.conflict_limit,
            "wall_budget": self.wall_budget,
            "cache_dir": self.cache_dir,
            "max_iterations": self.max_iterations,
            "slice": self.slice,
            "connect": self.connect,
            "split": self.split,
        }

    def run(self, jobs: int = 1) -> SweepResult:
        """Execute every cell; in-process at ``jobs=1``."""
        start = time.perf_counter()
        jobs = max(1, int(jobs))
        payloads = [self._payload(cell) for cell in self.cells]
        if jobs == 1 or len(payloads) <= 1:
            raw = [_run_cell(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=jobs) as executor:
                raw = list(executor.map(_run_cell, payloads))
        outcomes = [
            SweepOutcome(cell=cell, result=data["result"],
                         runtime_s=data["runtime_s"])
            for cell, data in zip(self.cells, raw)
        ]
        return SweepResult(
            outcomes=outcomes,
            runtime_s=time.perf_counter() - start,
            jobs=jobs,
        )
