"""Scenario sweeps: whole Tab.-I/II grids as one batch job.

A sweep cell is (design variant x scenario x window length); each cell
runs the full Fig.-5 methodology.  Cells are completely independent, so
the sweep schedules them across worker processes — this is the
coarse-grained sibling of the per-frame obligation parallelism in
:mod:`repro.engine.pool`, and the two compose with the persistent proof
cache (workers share one cache directory; re-runs of a grid skip every
already-proved obligation).

Workers rebuild the SoC from the variant name, so only plain data
crosses the process boundary (no circuit pickling).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.soc.config import VARIANTS


@dataclass
class SweepCell:
    """One (variant, scenario, k) grid point."""

    variant: str
    scenario_kwargs: Dict[str, Any]
    k: int
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            cached = self.scenario_kwargs.get("secret_in_cache", True)
            self.label = (f"{self.variant}/"
                          f"{'cached' if cached else 'uncached'}/k={self.k}")


@dataclass
class SweepOutcome:
    """A cell plus its (JSON-serializable) methodology result."""

    cell: SweepCell
    result: Dict[str, Any]
    runtime_s: float = 0.0

    @property
    def verdict(self) -> str:
        return self.result["verdict"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.cell.label,
            "variant": self.cell.variant,
            "scenario": dict(self.cell.scenario_kwargs),
            "k": self.cell.k,
            "runtime_s": self.runtime_s,
            "result": self.result,
        }


@dataclass
class SweepResult:
    """All outcomes of one grid run, in cell order."""

    outcomes: List[SweepOutcome] = field(default_factory=list)
    runtime_s: float = 0.0
    jobs: int = 1

    def verdicts(self) -> Dict[str, str]:
        return {out.cell.label: out.verdict for out in self.outcomes}

    def any_insecure(self) -> bool:
        return any(out.verdict == "insecure" for out in self.outcomes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "runtime_s": self.runtime_s,
            "cells": [out.to_dict() for out in self.outcomes],
        }

    def rows(self) -> List[List[Any]]:
        """Rows for a Tab.-I style report table."""
        rows = []
        for out in self.outcomes:
            result = out.result
            rows.append([
                out.cell.label,
                result["verdict"],
                result["iterations"],
                len(result["p_alerts"]),
                f"{out.runtime_s:.2f}s",
            ])
        return rows


def _run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker body: rebuild the SoC, run the methodology, return dicts.

    Imports stay inside the function so the engine package has no
    import-time dependency on :mod:`repro.core` (which itself imports the
    engine's obligation layer).
    """
    from repro.core.methodology import UpecMethodology
    from repro.core.model import UpecScenario
    from repro.engine.pool import INLINE, ProofEngine
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    start = time.perf_counter()
    config = getattr(SocConfig, payload["variant"])(**FORMAL_CONFIG_KWARGS)
    soc = build_soc(config)
    scenario = UpecScenario(**payload["scenario"])
    # With a cache directory the cell takes the obligation path (jobs=1,
    # in-process) so verdicts persist; otherwise the incremental
    # in-context solver is used.  Never the environment defaults: pools
    # must not nest inside sweep workers.
    engine = ProofEngine(jobs=1, cache_dir=payload["cache_dir"]) \
        if payload["cache_dir"] else INLINE
    methodology = UpecMethodology(
        soc, scenario,
        conflict_limit=payload["conflict_limit"],
        simplify=payload["simplify"],
        engine=engine,
        slice=payload.get("slice"),
    )
    try:
        result = methodology.run(k=payload["k"],
                                 max_iterations=payload["max_iterations"])
    finally:
        if engine is not INLINE:
            engine.close()
    return {
        "result": result.to_dict(),
        "runtime_s": time.perf_counter() - start,
    }


class ScenarioSweep:
    """Run a grid of methodology cells across worker processes."""

    def __init__(
        self,
        cells: Sequence[SweepCell],
        simplify: bool = True,
        conflict_limit: Optional[int] = None,
        cache_dir: Optional[str] = None,
        max_iterations: int = 64,
        slice: Optional[bool] = None,
    ) -> None:
        self.cells = list(cells)
        self.simplify = simplify
        self.conflict_limit = conflict_limit
        self.cache_dir = cache_dir
        self.max_iterations = max_iterations
        self.slice = slice

    # ------------------------------------------------------------------
    @classmethod
    def table1_grid(
        cls,
        variants: Sequence[str] = VARIANTS,
        k: int = 2,
        cached: bool = True,
        uncached: bool = True,
        **kwargs,
    ) -> "ScenarioSweep":
        """The Tab.-I grid: every variant in the 'D in cache' and
        'D not in cache' scenarios."""
        from repro.core.model import UpecScenario

        cells = []
        for variant in variants:
            scenarios = []
            if cached:
                scenarios.append(UpecScenario(secret_in_cache=True))
            if uncached:
                scenarios.append(UpecScenario(secret_in_cache=False))
            for scenario in scenarios:
                cells.append(SweepCell(
                    variant=variant,
                    scenario_kwargs=asdict(scenario),
                    k=k,
                ))
        return cls(cells, **kwargs)

    # ------------------------------------------------------------------
    def _payload(self, cell: SweepCell) -> Dict[str, Any]:
        return {
            "variant": cell.variant,
            "scenario": dict(cell.scenario_kwargs),
            "k": cell.k,
            "simplify": self.simplify,
            "conflict_limit": self.conflict_limit,
            "cache_dir": self.cache_dir,
            "max_iterations": self.max_iterations,
            "slice": self.slice,
        }

    def run(self, jobs: int = 1) -> SweepResult:
        """Execute every cell; in-process at ``jobs=1``."""
        start = time.perf_counter()
        jobs = max(1, int(jobs))
        payloads = [self._payload(cell) for cell in self.cells]
        if jobs == 1 or len(payloads) <= 1:
            raw = [_run_cell(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=jobs) as executor:
                raw = list(executor.map(_run_cell, payloads))
        outcomes = [
            SweepOutcome(cell=cell, result=data["result"],
                         runtime_s=data["runtime_s"])
            for cell, data in zip(self.cells, raw)
        ]
        return SweepResult(
            outcomes=outcomes,
            runtime_s=time.perf_counter() - start,
            jobs=jobs,
        )
