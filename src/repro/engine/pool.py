"""Obligation scheduling: in-process or across a worker pool.

:class:`SolverPool` executes :class:`ProofObligation` batches.  At
``jobs=1`` it solves inline (no subprocess, lazy, stops as soon as the
caller's early-stop predicate fires — exactly the sequential work
profile).  At ``jobs>1`` it fans the batch out on a
``ProcessPoolExecutor``; results are still *consumed in submission
order*, so a frame-ordered walk sees the same first alert as a
sequential run, and once the predicate fires the not-yet-started
sibling obligations are cancelled.

:class:`ProofEngine` wraps a pool with the optional persistent
:class:`ResultCache` and aggregates solver statistics across all the
verdicts it hands out.  It is the single object the formal stack
(checker, methodology, closure, BMC, induction) takes as its ``engine``
parameter.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.cache import ResultCache
from repro.engine.obligation import ProofObligation, Verdict, solve_obligation

#: Environment knob: default worker count for engines constructed without
#: an explicit ``jobs`` (lets CI run the whole suite through the parallel
#: path without touching call sites).
JOBS_ENV = "REPRO_ENGINE_JOBS"
#: Environment knob: default cache directory.
CACHE_ENV = "REPRO_ENGINE_CACHE"

#: Per-process cache of pool workers, built once by the executor
#: initializer (pickling the parent's cache per task would ship its
#: whole index every submit).
_POOL_CACHE: Optional[ResultCache] = None


def _pool_worker_init(root: Optional[str],
                      max_bytes: Optional[int]) -> None:
    global _POOL_CACHE
    _POOL_CACHE = ResultCache(root, max_bytes=max_bytes) if root else None


def _pool_solve(obligation: ProofObligation) -> Verdict:
    """Worker-process solve: warm-starts from (and feeds) the shared
    cache directory, exactly like the in-process path."""
    return solve_obligation(obligation, simp_cache=_POOL_CACHE)


class _InlineSentinel:
    """Marker for ``engine=INLINE``: force the legacy in-context solver,
    ignoring the environment defaults (used by sweep workers so pools are
    never nested)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "INLINE"


INLINE = _InlineSentinel()


def resolve_engine(engine):
    """Normalize an ``engine`` argument: None consults the environment
    defaults, :data:`INLINE` forces the legacy path (returns None)."""
    if engine is INLINE:
        return None
    if engine is None:
        return default_engine()
    return engine


def env_jobs() -> int:
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


class SolverPool:
    """Runs obligations, in-process at ``jobs=1`` or on worker processes."""

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _executor_handle(self, cache: Optional[ResultCache] = None) \
            -> ProcessPoolExecutor:
        if self._executor is None:
            # The worker processes open their own handle on the cache
            # directory (multi-process safe by design), so batch solves
            # warm-start and store simplified databases just like the
            # in-process path.  The engine passes one cache for the
            # pool's lifetime; the first batch pins it.
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_pool_worker_init,
                initargs=(getattr(cache, "root", None),
                          getattr(cache, "max_bytes", None)),
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def solve_one(self, obligation: ProofObligation,
                  cache: Optional[ResultCache] = None) -> Verdict:
        return solve_obligation(obligation, simp_cache=cache)

    def solve_ordered(
        self,
        obligations: Sequence[ProofObligation],
        early_stop: Optional[Callable[[Verdict], bool]] = None,
        on_verdict: Optional[Callable[[ProofObligation, Verdict], None]] = None,
        cache: Optional[ResultCache] = None,
    ) -> List[Optional[Verdict]]:
        """Solve a batch, consuming results in submission order.

        Returns one entry per obligation; entries after the first verdict
        for which ``early_stop`` returns True are None (cancelled).
        ``on_verdict`` observes every consumed verdict (cache stores).
        ``cache`` enables warm-started preprocessing on the in-process
        path (worker processes use their own caches).
        """
        results: List[Optional[Verdict]] = [None] * len(obligations)
        if self.jobs == 1 or len(obligations) <= 1:
            for i, obligation in enumerate(obligations):
                verdict = solve_obligation(obligation, simp_cache=cache)
                results[i] = verdict
                if on_verdict is not None:
                    on_verdict(obligation, verdict)
                if early_stop is not None and early_stop(verdict):
                    break
            return results

        executor = self._executor_handle(cache)
        futures = [executor.submit(_pool_solve, ob)
                   for ob in obligations]
        stopped = False
        for i, future in enumerate(futures):
            if stopped:
                # Cancel whatever has not started; harvest results that
                # finished anyway so the cache still benefits from them.
                if not future.cancel() and future.done() \
                        and future.exception() is None:
                    verdict = future.result()
                    if on_verdict is not None:
                        on_verdict(obligations[i], verdict)
                continue
            verdict = future.result()
            results[i] = verdict
            if on_verdict is not None:
                on_verdict(obligations[i], verdict)
            if early_stop is not None and early_stop(verdict):
                stopped = True
        return results


class ProofEngine:
    """Solver pool + persistent result cache + statistics aggregation."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        pool=None,
    ) -> None:
        """``pool`` swaps the scheduler: anything with the
        :class:`SolverPool` interface, e.g. a
        :class:`repro.dist.remote.RemotePool` that ships obligations to
        a broker (``jobs`` is then ignored — parallelism is the
        fleet's)."""
        if cache is None and cache_dir is None:
            cache_dir = os.environ.get(CACHE_ENV) or None
        if pool is None:
            pool = SolverPool(env_jobs() if jobs is None else jobs)
        self.pool = pool
        self.cache = cache if cache is not None else (
            ResultCache(cache_dir) if cache_dir else None
        )
        self.cache_hits = 0
        self.cache_misses = 0
        self.solved = 0
        self._solver_totals: Dict[str, int] = {}

    @property
    def jobs(self) -> int:
        return self.pool.jobs

    def close(self) -> None:
        self.pool.close()
        if self.cache is not None:
            # Persist batched index updates — including the recency ticks
            # of a fully-warm run that never stored anything.
            self.cache.flush()

    def __enter__(self) -> "ProofEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _account(self, verdict: Verdict) -> None:
        self.solved += 1
        for key, value in verdict.stats.items():
            self._solver_totals[key] = \
                self._solver_totals.get(key, 0) + value

    def solve(self, obligation: ProofObligation) -> Verdict:
        """Solve one obligation (cache-aware, always in-process)."""
        if self.cache is not None:
            hit = self.cache.lookup(obligation)
            if hit is not None:
                self.cache_hits += 1
                return hit
            self.cache_misses += 1
        verdict = self.pool.solve_one(obligation, cache=self.cache)
        self._account(verdict)
        if self.cache is not None:
            self.cache.store(obligation, verdict)
        return verdict

    def solve_ordered(
        self,
        obligations: Sequence[ProofObligation],
        early_stop: Optional[Callable[[Verdict], bool]] = None,
    ) -> List[Optional[Verdict]]:
        """Cache-aware ordered batch solve with sibling cancellation."""
        results: List[Optional[Verdict]] = [None] * len(obligations)
        misses: List[int] = []
        for i, obligation in enumerate(obligations):
            hit = self.cache.lookup(obligation) if self.cache is not None \
                else None
            if hit is not None:
                self.cache_hits += 1
                results[i] = hit
                if early_stop is not None and early_stop(hit):
                    # Obligations after a cached stopping verdict are
                    # unreachable in order semantics; don't submit them.
                    break
            else:
                misses.append(i)

        if misses:
            def on_verdict(ob: ProofObligation, verdict: Verdict) -> None:
                # Misses are counted when actually solved, so obligations
                # cancelled by an earlier alert don't inflate the count.
                if self.cache is not None:
                    self.cache_misses += 1
                self._account(verdict)
                if self.cache is not None:
                    self.cache.store(ob, verdict)

            # Walk the full index range in order, draining cached entries
            # and solved misses alike so early_stop sees every verdict in
            # obligation order.
            pending = [obligations[i] for i in misses]
            solved = self.pool.solve_ordered(
                pending,
                early_stop=early_stop,
                on_verdict=on_verdict,
                cache=self.cache,
            )
            for slot, verdict in zip(misses, solved):
                results[slot] = verdict

        if early_stop is not None:
            # Enforce order semantics over the merged (cached + solved)
            # sequence: everything after the first stopping verdict is
            # dropped, exactly as a sequential run would never reach it.
            for i, verdict in enumerate(results):
                if verdict is not None and early_stop(verdict):
                    for j in range(i + 1, len(results)):
                        results[j] = None
                    break
        return results

    # ------------------------------------------------------------------
    def stats(self, since: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Engine counters — cumulative, or relative to an earlier
        :meth:`stats` snapshot so shared/singleton engines can report
        per-run numbers."""
        data = dict(self._solver_totals)
        data["engine_jobs"] = self.jobs
        data["engine_obligations_solved"] = self.solved
        if self.cache is not None:
            data["engine_cache_hits"] = self.cache_hits
            data["engine_cache_misses"] = self.cache_misses
        if since is not None:
            for key in data:
                if key != "engine_jobs":
                    data[key] -= since.get(key, 0)
        return data


_shared_engine: Optional[ProofEngine] = None
_shared_key: Optional[tuple] = None


def default_engine() -> Optional[ProofEngine]:
    """The environment-configured engine shared by call sites that were
    not handed an explicit one.

    Returns None (legacy in-context solving) unless ``REPRO_ENGINE_JOBS``,
    ``REPRO_ENGINE_CACHE`` or ``REPRO_ENGINE_SPLIT`` asks for the
    obligation path.  The engine is a singleton so one worker pool
    serves the whole process.
    """
    global _shared_engine, _shared_key
    from repro.engine.split import env_split

    key = (env_jobs(), os.environ.get(CACHE_ENV) or None)
    if key == (1, None) and not env_split():
        # REPRO_ENGINE_SPLIT needs the obligation path even without a
        # pool or cache — the incremental solver has nothing to split.
        return None
    if _shared_engine is None or _shared_key != key:
        if _shared_engine is not None:
            # Don't leak the previous configuration's worker pool.  A
            # holder of the old engine stays usable: its pool re-spawns
            # lazily on the next batch.
            _shared_engine.close()
        _shared_engine = ProofEngine(jobs=key[0], cache_dir=key[1])
        _shared_key = key
    return _shared_engine
