"""Obligation-based verification engine.

Decouples *what must be proved* from *where it is solved*, in three
layers:

* **obligation** (:mod:`repro.engine.obligation`) — serializable
  :class:`ProofObligation` values (self-contained CNF slice +
  assumptions + metadata) with :class:`Verdict` results; exported by
  :meth:`repro.formal.bmc.SatContext.export_obligation` and
  :meth:`repro.core.model.UpecModel.frame_obligation` instead of being
  solved inline.  By default exports are cut to the query's cone of
  influence (:mod:`repro.engine.slice`), canonically renumbered so the
  same logical query is bit-identical — and cache-key identical — no
  matter how the shared context grew (``REPRO_ENGINE_SLICE=0``
  restores whole-context snapshots).  :mod:`repro.engine.split`
  additionally splits a UPEC frame's commitment check into independent
  per-register(-group) obligations (``split=`` /
  ``REPRO_ENGINE_SPLIT=1``) so one deep frame can saturate the fleet.
* **scheduler** (:mod:`repro.engine.pool`) — :class:`SolverPool` runs
  obligation batches on a ``multiprocessing`` worker pool (in-process at
  ``jobs=1``), consuming results in submission order with early-cancel
  of sibling obligations; :class:`ScenarioSweep`
  (:mod:`repro.engine.sweep`) is the coarse-grained variant that grids
  whole Tab.-I/II methodology runs over workers.
* **cache** (:mod:`repro.engine.cache`) — :class:`ResultCache`, a
  persistent on-disk verdict store keyed by the obligation's content
  fingerprint, so methodology re-runs skip already-proved obligations.

:class:`ProofEngine` ties the three together and is what the formal
stack (``UpecChecker``, ``UpecMethodology``, ``InductiveDiffProof``,
``BmcEngine``, ``prove_by_induction``) accepts as its ``engine``
parameter.  ``REPRO_ENGINE_JOBS`` / ``REPRO_ENGINE_CACHE`` configure a
process-wide default engine for call sites that were not handed one.

The scheduler seam is pluggable: :mod:`repro.dist` provides
:class:`~repro.dist.remote.RemotePool`, a SolverPool-compatible
scheduler that ships obligations to a network broker
(``ProofEngine(pool=...)`` / :class:`~repro.dist.remote.RemoteEngine`),
sharding the same workloads across machines with bit-identical
verdicts.
"""

from repro.engine.cache import CACHE_MAX_ENV, ResultCache
from repro.engine.obligation import (
    SAT,
    UNKNOWN,
    UNSAT,
    ProofObligation,
    Verdict,
    pack_model,
    solve_obligation,
    unpack_model,
)
from repro.engine.pool import (
    CACHE_ENV,
    INLINE,
    JOBS_ENV,
    ProofEngine,
    SolverPool,
    default_engine,
    resolve_engine,
)
from repro.engine.slice import SLICE_ENV, SliceResult, env_slice, slice_cnf
from repro.engine.split import SPLIT_ENV, FrameSplit, env_split
from repro.engine.sweep import (
    CELL_ALERT_WINDOW,
    CELL_METHODOLOGY,
    ScenarioSweep,
    SweepCell,
    SweepOutcome,
    SweepResult,
)

__all__ = [
    "CACHE_ENV",
    "CACHE_MAX_ENV",
    "CELL_ALERT_WINDOW",
    "CELL_METHODOLOGY",
    "FrameSplit",
    "INLINE",
    "JOBS_ENV",
    "SLICE_ENV",
    "SPLIT_ENV",
    "ProofEngine",
    "ProofObligation",
    "ResultCache",
    "SAT",
    "ScenarioSweep",
    "SliceResult",
    "SolverPool",
    "SweepCell",
    "SweepOutcome",
    "SweepResult",
    "UNKNOWN",
    "UNSAT",
    "Verdict",
    "default_engine",
    "env_slice",
    "env_split",
    "pack_model",
    "resolve_engine",
    "slice_cnf",
    "solve_obligation",
    "unpack_model",
]
