"""Persistent proof-result store.

Verdicts are keyed by the obligation's content fingerprint (circuit
slice + scenario assumptions + commitment target are all part of the
exported CNF, so the key identifies the proof up to bit-level identity;
with cone-of-influence slicing the encoding is canonical, so the same
logical query hashes identically across windows and runs).  Each verdict
lives in its own JSON file, written atomically, so many worker processes
can share one cache directory without locking.

Only definite verdicts (sat/unsat) are stored: an ``unknown`` outcome
depends on the conflict limit of the run that produced it.

Besides verdicts the store keeps *warm-start* entries — the post-BVE
simplified clause database of an obligation, under the sibling key
``<fingerprint>.simp`` — so a repeat solve whose verdict is missing
(evicted, or the first run hit its conflict limit) at least skips the
preprocessing pass (:meth:`store_simplified` /
:meth:`lookup_simplified`; see ``solve_obligation``).

The store is size-capped: a small index file (``_index.json``) tracks
per-entry sizes and a logical LRU clock; when ``max_bytes`` (or the
``REPRO_ENGINE_CACHE_MAX_BYTES`` environment knob) is exceeded, the
least-recently-used verdicts are pruned.  The index is advisory — if it
is missing, stale or corrupted it is rebuilt from the directory listing,
and stale ``*.tmp`` files from interrupted writers are removed on init.
Index writes are batched (every few stores, after an eviction, and on
:meth:`ResultCache.flush` — which ``ProofEngine.close`` calls so warm
all-hit runs still persist their recency), and each save merges with
the on-disk index so sibling processes' entries survive.  With the
directory shared between processes the byte cap and LRU order are
best-effort per process, not a global invariant.

Every entry carries a CRC32 of its canonical payload serialization; an
entry whose checksum (or JSON structure) does not survive the round
trip — a truncated write, a flipped bit on disk — is *quarantined*:
moved aside into ``_quarantine/`` and treated as a miss, never a crash
and never served.  Entries written before checksumming landed are
accepted as-is (missing checksum = legacy entry).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from typing import Any, Dict, Optional, Tuple

from repro.engine.obligation import DEFINITE, ProofObligation, Verdict

#: Environment knob: byte budget for every cache directory opened
#: without an explicit ``max_bytes``.
CACHE_MAX_ENV = "REPRO_ENGINE_CACHE_MAX_BYTES"

_INDEX_NAME = "_index.json"

#: Subdirectory corrupt entries are moved into (quarantine-and-miss):
#: kept for post-mortem instead of deleted, out of the lookup path.
_QUARANTINE_DIR = "_quarantine"

#: Key suffix of warm-start entries: the simplified clause database of
#: an obligation lives beside its verdict as ``<fingerprint>.simp.json``
#: and shares the index/LRU machinery.
_SIMP_SUFFIX = ".simp"

#: A ``*.tmp`` file this old cannot be an in-flight write of a live
#: concurrent worker; younger ones are left alone so opening a shared
#: cache directory never races a sibling's store.
_ORPHAN_TTL_S = 3600.0

#: Persist the index after this many unsaved mutations (stores/touches)
#: rather than on every store — the index is advisory and rebuilt from
#: the listing, so batching costs nothing but staleness.
_SAVE_EVERY = 16


def _payload_crc(payload: Dict[str, Any]) -> int:
    """CRC32 over the canonical serialization of an entry's payload
    (the ``crc32`` field itself excluded)."""
    body = {key: value for key, value in payload.items() if key != "crc32"}
    encoded = json.dumps(body, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return zlib.crc32(encoded)


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get(CACHE_MAX_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class ResultCache:
    """On-disk obligation-verdict store (one JSON file per fingerprint)."""

    def __init__(self, root: str,
                 max_bytes: Optional[int] = None) -> None:
        self.root = root
        self.max_bytes = max_bytes if max_bytes is not None \
            else _env_max_bytes()
        os.makedirs(root, exist_ok=True)
        self._clean_orphans()
        self._tick, self._entries = self._load_index()
        self._dirty = 0
        #: Corrupt entries moved to ``_quarantine/`` by this process.
        self.quarantined = 0

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()

    def __del__(self) -> None:
        # A worker that dies mid-sweep (or any holder that never reaches
        # ProofEngine.close) must not lose its batched index updates —
        # recency ticks feed LRU eviction, and an index that never sees
        # new entries keeps adopting them at tick 0, eviction-first.
        try:
            self.flush()
        except Exception:   # interpreter teardown: best-effort only
            pass

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _index_path(self) -> str:
        return os.path.join(self.root, _INDEX_NAME)

    def _clean_orphans(self) -> None:
        """Remove stale ``*.tmp`` leftovers of writers that died
        mid-store.  Recent temp files are spared: a worker sharing the
        directory may be between ``mkstemp`` and ``os.replace`` right
        now, and unlinking its file would silently drop that verdict."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        cutoff = time.time() - _ORPHAN_TTL_S
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.root, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
            except OSError:
                pass

    def _load_index(self) -> Tuple[int, Dict[str, Dict[str, int]]]:
        """Read the index and reconcile it against the directory: entries
        without a backing file are dropped, files the index never saw are
        adopted with the oldest possible recency (tick 0)."""
        tick = 0
        entries: Dict[str, Dict[str, int]] = {}
        try:
            with open(self._index_path(), "r", encoding="utf-8") as handle:
                data = json.load(handle)
            tick = int(data["tick"])
            for key, entry in data["entries"].items():
                entries[str(key)] = {
                    "size": int(entry["size"]),
                    "tick": int(entry["tick"]),
                }
        except (OSError, ValueError, KeyError, TypeError):
            tick, entries = 0, {}
        try:
            names = os.listdir(self.root)
        except OSError:
            names = []
        on_disk = set()
        for name in names:
            if not name.endswith(".json") or name == _INDEX_NAME:
                continue
            fingerprint = name[:-len(".json")]
            on_disk.add(fingerprint)
            if fingerprint not in entries:
                try:
                    size = os.path.getsize(os.path.join(self.root, name))
                except OSError:
                    continue
                entries[fingerprint] = {"size": size, "tick": 0}
        for fingerprint in list(entries):
            if fingerprint not in on_disk:
                del entries[fingerprint]
        return tick, entries

    def _save_index(self) -> None:
        """Persist the index, merging entries sibling processes wrote to
        the shared directory since we loaded it (their files exist but
        our in-memory view never saw them; last-writer-wins would drop
        them to tick 0 and make them eviction-first)."""
        try:
            with open(self._index_path(), "r", encoding="utf-8") as handle:
                disk = json.load(handle)
            self._tick = max(self._tick, int(disk["tick"]))
            for key, entry in disk["entries"].items():
                key = str(key)
                if key in self._entries:
                    continue
                if os.path.exists(self._path(key)):
                    self._entries[key] = {
                        "size": int(entry["size"]),
                        "tick": int(entry["tick"]),
                    }
        except (OSError, ValueError, KeyError, TypeError):
            pass
        payload = {"tick": self._tick, "entries": self._entries}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self._index_path())
            self._dirty = 0
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def flush(self) -> None:
        """Persist any unsaved recency/entry updates (called by
        ``ProofEngine.close``; cheap no-op when nothing changed)."""
        if self._dirty:
            self._save_index()

    def _touch(self, fingerprint: str, size: Optional[int] = None) -> None:
        self._tick += 1
        self._dirty += 1
        entry = self._entries.get(fingerprint)
        if entry is None:
            if size is None:
                try:
                    size = os.path.getsize(self._path(fingerprint))
                except OSError:
                    return
            entry = self._entries[fingerprint] = {"size": size}
        elif size is not None:
            entry["size"] = size
        entry["tick"] = self._tick

    def _prune(self) -> bool:
        """Evict least-recently-used verdicts until under the byte cap;
        returns whether anything was evicted."""
        if self.max_bytes is None:
            return False
        total = sum(entry["size"] for entry in self._entries.values())
        if total <= self.max_bytes:
            return False
        # Oldest tick first; fingerprint breaks ties deterministically.
        order = sorted(self._entries.items(),
                       key=lambda item: (item[1]["tick"], item[0]))
        evicted = False
        for fingerprint, entry in order:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(self._path(fingerprint))
            except OSError:
                pass
            total -= entry["size"]
            del self._entries[fingerprint]
            evicted = True
        return evicted

    # ------------------------------------------------------------------
    # Store / lookup
    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.json")

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry out of the lookup path (kept under
        ``_quarantine/`` for post-mortem) and forget it ever existed —
        the caller reports a miss, the next store rewrites it clean."""
        target_dir = os.path.join(self.root, _QUARANTINE_DIR)
        path = self._path(key)
        try:
            os.makedirs(target_dir, exist_ok=True)
            os.replace(path, os.path.join(target_dir, f"{key}.json"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._entries.pop(key, None)
        self._dirty += 1
        self.quarantined += 1

    def _read_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """Read and integrity-check one entry; corrupt files (bad JSON,
        non-dict payload, or a present-but-mismatched checksum) are
        quarantined and reported as a miss.  Entries without a
        ``crc32`` field predate checksumming and are accepted."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("payload is not a mapping")
        except (ValueError, UnicodeDecodeError):
            self._quarantine(key)
            return None
        crc = payload.get("crc32")
        if crc is not None:
            try:
                ok = int(crc) == _payload_crc(payload)
            except (TypeError, ValueError):
                ok = False
            if not ok:
                self._quarantine(key)
                return None
        return payload

    def has(self, fingerprint: str) -> bool:
        """Whether a verdict for this fingerprint is on disk (no read,
        no recency touch — used to skip redundant gossip writes)."""
        return os.path.exists(self._path(fingerprint))

    def lookup(self, obligation: ProofObligation) -> Optional[Verdict]:
        """Return the stored verdict for an obligation, or None."""
        return self.lookup_verdict(obligation.fingerprint())

    def lookup_verdict(self, fingerprint: str) -> Optional[Verdict]:
        """Return the stored verdict for a bare fingerprint, or None —
        the durable-broker path: the memo is keyed by fingerprint, not
        by a live obligation."""
        data = self._read_entry(fingerprint)
        if data is None:
            return None
        try:
            verdict = Verdict.from_dict(data["verdict"])
        except (KeyError, TypeError, ValueError):
            # Structurally broken in a way the checksum could not see
            # (a legacy entry, or a clean write of garbage): same
            # treatment — out of the lookup path, report a miss.
            self._quarantine(fingerprint)
            return None
        verdict.cached = True
        # Recency is tracked in memory and persisted on the next store:
        # a read-only hit must not pay a write.
        self._touch(fingerprint)
        return verdict

    def store(self, obligation: ProofObligation, verdict: Verdict) -> None:
        """Persist a definite verdict (atomic write; unknowns are skipped)."""
        self.store_verdict(verdict, meta=obligation.meta,
                           size=obligation.size())

    def store_verdict(self, verdict: Verdict,
                      meta: Optional[Dict[str, Any]] = None,
                      size: Optional[Dict[str, int]] = None) -> None:
        """Persist a verdict known only by its fingerprint — the gossip
        path: a broker-relayed verdict arrives without its obligation."""
        if verdict.status not in DEFINITE or verdict.cached:
            return
        payload: Dict[str, Any] = {
            "verdict": verdict.to_dict(),
            "meta": meta if meta is not None else {},
            "size": size if size is not None else {},
        }
        self._write_entry(verdict.fingerprint, payload)

    def _write_entry(self, key: str, payload: Dict[str, Any]) -> None:
        payload = dict(payload)
        payload["crc32"] = _payload_crc(payload)
        encoded = json.dumps(payload)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._touch(key, size=len(encoded))
        if self._prune() or self._dirty >= _SAVE_EVERY:
            self._save_index()

    # ------------------------------------------------------------------
    # Warm-start entries (post-BVE simplified clause databases)
    # ------------------------------------------------------------------
    def store_simplified(self, fingerprint: str,
                         payload: Dict[str, Any]) -> None:
        """Persist an obligation's simplified clause database (see
        ``SimplifyingSolver.export_simplified``) under a sibling key of
        its verdict entry; subject to the same LRU byte cap."""
        self._write_entry(fingerprint + _SIMP_SUFFIX,
                          {"simplified": payload})

    def lookup_simplified(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        key = fingerprint + _SIMP_SUFFIX
        data = self._read_entry(key)
        if data is None:
            return None
        payload = data.get("simplified")
        if not isinstance(payload, dict):
            self._quarantine(key)
            return None
        self._touch(key)
        return payload

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json") and name != _INDEX_NAME
                   and not name.endswith(_SIMP_SUFFIX + ".json"))
