"""Persistent proof-result store.

Verdicts are keyed by the obligation's content fingerprint (circuit
slice + scenario assumptions + commitment target are all part of the
exported CNF, so the key identifies the proof up to bit-level identity).
Each verdict lives in its own JSON file, written atomically, so many
worker processes can share one cache directory without locking.

Only definite verdicts (sat/unsat) are stored: an ``unknown`` outcome
depends on the conflict limit of the run that produced it.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.engine.obligation import UNKNOWN, ProofObligation, Verdict


class ResultCache:
    """On-disk obligation-verdict store (one JSON file per fingerprint)."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.json")

    def lookup(self, obligation: ProofObligation) -> Optional[Verdict]:
        """Return the stored verdict for an obligation, or None."""
        path = self._path(obligation.fingerprint())
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            verdict = Verdict.from_dict(data["verdict"])
        except (KeyError, TypeError, ValueError):
            return None
        verdict.cached = True
        return verdict

    def store(self, obligation: ProofObligation, verdict: Verdict) -> None:
        """Persist a definite verdict (atomic write; unknowns are skipped)."""
        if verdict.status == UNKNOWN or verdict.cached:
            return
        payload: Dict[str, Any] = {
            "verdict": verdict.to_dict(),
            "meta": obligation.meta,
            "size": obligation.size(),
        }
        path = self._path(verdict.fingerprint)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))
