"""Cone-of-influence slicing of recorded CNF into history-independent
proof obligations.

:meth:`repro.formal.bmc.SatContext.export_obligation` snapshots the
formula a :class:`~repro.formal.bmc.ClauseLog` recorded.  Without
slicing, that snapshot is the *entire* unrolling history: every frame,
register and commitment the shared context ever touched rides along in
every obligation, which inflates worker pickling cost and makes cache
fingerprints fragile — any unrelated context growth changes the bytes.

The slicer cuts the snapshot down to the clauses that can actually
influence the query.  Raw CNF has no direction (a clause mentioning a
variable could define it or consume it), so the :class:`ClauseLog`
records two extra facts at emission time:

* **definitions** — the Tseitin clauses that *define* a gate variable
  (marked by :class:`repro.formal.aig.CnfMapper` as it emits each AND
  node's triple), giving the traversal its fan-in direction;
* **root clauses** — everything else (asserted units), optionally
  tagged with the unrolling frame they belong to.

The cone is then the least set containing the assumption variables and
the selected root clauses, closed under "a reached variable pulls in its
defining clauses (and their fan-in variables)".  Clauses defining gates
*outside* the cone are dropped: they constrain only fresh variables the
query never reads, so the slice is equisatisfiable with the full
formula under the same assumptions, and any model of the slice extends
to a model of the full formula by evaluating the dropped gates.

Finally the surviving variables are renumbered 1..m in increasing
original order and a remap table (new -> old) is kept on the
obligation, so a worker's model maps back onto the exporting context
via ``SatContext.adopt_verdict`` (which also re-evaluates the dropped
gates so witness reads stay consistent with the circuit).  The
renumbering is canonical relative to the order in which the query's own
cone was emitted: once a query has been mapped, any amount of unrelated
growth — deeper frames, other registers' diff cones, other commitments
— leaves its re-exports bit-identical, and two contexts that walk the
same frames in the same order (the UPEC methodology's frame-ordered
walk, at any worker count) produce bit-identical obligations and hence
identical cache fingerprints across windows, jobs settings and runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

#: Environment knob: set to ``0`` to disable obligation slicing wherever
#: the caller did not pass an explicit ``slice=`` argument.
SLICE_ENV = "REPRO_ENGINE_SLICE"


def env_slice() -> bool:
    """The environment-default slicing setting (on unless disabled)."""
    return os.environ.get(SLICE_ENV, "1").strip().lower() not in (
        "0", "false", "no", "off"
    )


@dataclass
class SliceResult:
    """A sliced, canonically renumbered CNF plus its remap table."""

    nvars: int                    # variable count after renumbering
    clauses: List[List[int]]      # renumbered clauses, original order
    assumptions: List[int]        # renumbered assumption literals
    frozen: List[int]             # renumbered frozen variables (sorted)
    remap: Optional[List[int]]    # new var -> original var; None = identity
    vars_in: int                  # context variable count before slicing
    clauses_in: int               # recorded clause count before slicing

    def stats(self) -> Dict[str, int]:
        return {
            "slice_vars_in": self.vars_in,
            "slice_vars_out": self.nvars,
            "slice_clauses_in": self.clauses_in,
            "slice_clauses_out": len(self.clauses),
        }


def slice_cnf(
    clauses: Sequence[List[int]],
    nvars: int,
    definitions: Dict[int, List[int]],
    roots: Sequence[int],
    tags: Sequence[Optional[int]],
    assumptions: Sequence[int],
    frozen: Set[int],
    unit_cutoff: Optional[int] = None,
) -> SliceResult:
    """Compute the cone-of-influence slice of a recorded CNF.

    ``definitions`` maps a gate variable to the indices of the clauses
    that define it; ``roots`` lists the indices of all non-definitional
    clauses (asserted units), each optionally frame-tagged in ``tags``.
    With ``unit_cutoff`` set, root clauses tagged with a *later* frame
    are excluded — the UPEC model tags its per-frame window assumptions
    so a frame-``t`` obligation depends only on frames ``0..t``.

    ``frozen`` variables are *not* cone seeds (freezing other frames for
    witness extraction must not change this obligation); the frozen set
    is intersected with the cone instead.
    """
    reached: Set[int] = set()
    stack: List[int] = []

    def reach(var: int) -> None:
        if var not in reached:
            reached.add(var)
            stack.append(var)

    keep: List[int] = []
    for lit in assumptions:
        reach(abs(lit))
    for ci in roots:
        tag = tags[ci]
        if unit_cutoff is not None and tag is not None and tag > unit_cutoff:
            continue
        keep.append(ci)
        for lit in clauses[ci]:
            reach(abs(lit))
    while stack:
        var = stack.pop()
        for ci in definitions.get(var, ()):
            keep.append(ci)
            for lit in clauses[ci]:
                reach(abs(lit))

    keep.sort()
    if len(reached) == nvars:
        # Every variable survived: the (monotone) renumbering would be
        # the identity, so skip it — and drop the remap, which would
        # otherwise bloat every pickled obligation for nothing.
        return SliceResult(
            nvars=nvars,
            clauses=[clauses[ci] for ci in keep],
            assumptions=list(assumptions),
            frozen=sorted(frozen),
            remap=None,
            vars_in=nvars,
            clauses_in=len(clauses),
        )
    ordered = sorted(reached)
    new_of: Dict[int, int] = {old: i for i, old in enumerate(ordered, 1)}
    remap = [0] + ordered
    sliced = [
        [lit // abs(lit) * new_of[abs(lit)] for lit in clauses[ci]]
        for ci in keep
    ]
    return SliceResult(
        nvars=len(ordered),
        clauses=sliced,
        assumptions=[lit // abs(lit) * new_of[abs(lit)]
                     for lit in assumptions],
        frozen=sorted(new_of[v] for v in frozen if v in new_of),
        remap=remap,
        vars_in=nvars,
        clauses_in=len(clauses),
    )
