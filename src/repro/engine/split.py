"""Intra-frame obligation splitting: per-register commitment checks.

A UPEC frame check asks "can *any* commitment register pair differ at
frame ``t``?" — one obligation whose target ORs every per-register diff
literal.  That single obligation serializes the deepest (most
expensive) frame of every window: a 4-worker pool or a distributed
fleet idles while one solver grinds it.

Splitting rests on a one-line identity: ``SAT(F ∧ (d1 ∨ … ∨ dn))`` iff
``SAT(F ∧ di)`` for some ``i``.  So the frame is UNSAT iff *every*
per-register obligation is UNSAT, and any SAT register yields the
frame's alert.  The checker solves the per-register obligations in the
commitment's canonical order through the ordered scheduler
(:meth:`repro.engine.pool.ProofEngine.solve_ordered`), so the first
non-UNSAT verdict — and with it the alert frame and register set — is
schedule-independent at any ``jobs`` setting, locally and over the
distributed service, exactly as sibling frames already are.

Two refinements keep split runs bit-identical to unsplit ones and the
per-obligation overhead bounded:

* **Emission parity** — the model exports the canonical *unsplit* frame
  obligation first (emitting the full commitment-OR cone into the
  shared CNF exactly as an unsplit run would), then derives the split
  obligations without growing the context at all: each group's mapped
  diff literals become one appended disjunctive root clause
  (``export_obligation(disjunction=True)``), no new Tseitin gates.
  Every other obligation's canonical slice — and cache fingerprint —
  is therefore unaffected by the ``split=`` setting, and when a split
  group turns up SAT the checker takes the alert and witness from that
  pre-exported unsplit obligation, whose bytes (hence solved model) are
  identical to what an unsplit run solves.
* **Cone-overlap grouping** — registers whose sliced cones are nearly
  identical (Jaccard overlap >= :data:`GROUP_OVERLAP` over the
  recorded Tseitin definitions) are batched into one obligation, so
  near-duplicate cones are not refuted once per register.

Caveat: under a ``conflict_limit`` a split run may return INCONCLUSIVE
where an unsplit run alerts (or vice versa) — different searches hit
the budget differently.  Without limits the verdicts, alerts and
witness traces are bit-identical by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

#: Environment knob: set to ``1`` to split frame commitment checks into
#: per-register(-group) obligations wherever the caller did not pass an
#: explicit ``split=`` argument.  Off by default.
SPLIT_ENV = "REPRO_ENGINE_SPLIT"

#: Jaccard overlap above which two registers' cones are considered
#: near-identical and their diff literals share one obligation.
GROUP_OVERLAP = 0.9


def env_split() -> bool:
    """The environment-default split setting (off unless enabled)."""
    return os.environ.get(SPLIT_ENV, "0").strip().lower() in (
        "1", "true", "yes", "on"
    )


@dataclass
class FrameSplit:
    """One frame's commitment check, split into independent obligations.

    ``obligations`` are solved in list order (the canonical aggregation
    order: commitment order of each group's first register); frame
    ``t`` is UNSAT iff all of them are.  ``full_obligation`` is the
    canonical *unsplit* export of the same frame — byte-identical to
    what an unsplit run solves — from which the checker takes the alert
    model when any group is SAT.  ``full`` marks the degenerate case
    (constant-true target, or fewer than two distinct diff literals)
    where splitting buys nothing and ``obligations`` is just
    ``[full_obligation]``.
    """

    obligations: List = field(default_factory=list)
    groups: List[List[str]] = field(default_factory=list)
    full_obligation: object = None
    full: bool = False


def cone_vars(var: int, definitions: Dict[int, List[int]],
              clauses: Sequence[List[int]]) -> Set[int]:
    """Transitive fan-in of a CNF variable over recorded Tseitin
    definitions (the same direction the obligation slicer walks)."""
    reached = {var}
    stack = [var]
    while stack:
        v = stack.pop()
        for ci in definitions.get(v, ()):
            for lit in clauses[ci]:
                u = abs(lit)
                if u not in reached:
                    reached.add(u)
                    stack.append(u)
    return reached


def group_cones(cones: Sequence[Set[int]],
                overlap: float = GROUP_OVERLAP) -> List[List[int]]:
    """Greedy deterministic grouping of cone sets by Jaccard overlap.

    Walks the cones in order (the commitment's canonical register
    order) and joins each to the first existing group whose
    *representative* (first member's) cone overlaps by at least
    ``overlap``, else opens a new group.  Groups, and members within a
    group, preserve input order — the aggregation order is therefore a
    pure function of the cones, not of any schedule.
    """
    groups: List[List[int]] = []
    reps: List[Set[int]] = []
    for i, cone in enumerate(cones):
        for rep, members in zip(reps, groups):
            inter = len(rep & cone)
            union = len(rep) + len(cone) - inter
            if union == 0 or inter / union >= overlap:
                members.append(i)
                break
        else:
            reps.append(cone)
            groups.append([i])
    return groups
