"""Serializable proof obligations and their verdicts.

A :class:`ProofObligation` is a self-contained SAT problem: a DIMACS
clause slice snapshotted from a :class:`repro.formal.bmc.SatContext`,
the per-query assumption literals, the witness-frozen variables and a
metadata dict describing what the query proves (design, scenario,
commitment, frame).  Because it carries everything the solver needs, it
can be shipped to a worker process, hashed for a persistent result
cache, or replayed for debugging.

:func:`solve_obligation` is the pure solving function: same obligation
in, same :class:`Verdict` out, regardless of which process runs it —
this is what makes parallel and sequential engine runs bit-identical.
"""

from __future__ import annotations

import hashlib
import time
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import FormalError
from repro.formal.preprocess import SimplifyingSolver, reconstruct_model
from repro.formal.solver import CdclSolver

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"
#: The solve exhausted its wall-clock budget (``wall_budget``) before
#: reaching a definite answer.  Distinguishable from ``unknown`` (a
#: conflict-limit exhaustion or a cooperative cancel) so callers can
#: report "timed out" instead of a generic inconclusive.
TIMEOUT = "timeout"
#: The broker quarantined the obligation after its assignment killed
#: (or crashed the solve on) N distinct workers; ``Verdict.failures``
#: carries the workers' structured failure reports.
POISONED = "poisoned"

#: The statuses that settle a query.  Only these are ever memoized or
#: written to the persistent result cache — timeout/poisoned/unknown
#: are circumstances of one run, not facts about the formula.
DEFINITE = (SAT, UNSAT)

_FINGERPRINT_SALT = b"upec-obligation-v1"


def pack_model(values: Sequence[bool]) -> bytes:
    """Pack a model (list of bools, index 0 unused) into bytes, LSB first."""
    packed = bytearray((len(values) + 7) // 8)
    for i, value in enumerate(values):
        if value:
            packed[i >> 3] |= 1 << (i & 7)
    return bytes(packed)


def unpack_model(data: bytes, nvars: int) -> List[bool]:
    """Inverse of :func:`pack_model`; returns ``nvars + 1`` entries."""
    return [bool(data[i >> 3] >> (i & 7) & 1) if (i >> 3) < len(data)
            else False
            for i in range(nvars + 1)]


@dataclass
class ProofObligation:
    """One independent SAT query, detached from the context that built it.

    A *sliced* obligation (see :mod:`repro.engine.slice`) carries only
    the cone of influence of its assumptions, renumbered canonically;
    ``remap`` (new variable -> original context variable) and
    ``orig_nvars`` let ``SatContext.adopt_verdict`` translate a worker's
    model back into the exporting context's numbering (completing the
    dropped gates by evaluation).  Neither field is part of the
    fingerprint: re-exports of the same logical query hash identically
    no matter how the shared context grew after the query's cone was
    first mapped.
    """

    name: str
    nvars: int
    clauses: List[List[int]]
    assumptions: List[int]
    frozen: List[int] = field(default_factory=list)
    simplify: bool = True
    conflict_limit: Optional[int] = None
    #: Wall-clock budget in seconds for one solve attempt; exhausting it
    #: yields a :data:`TIMEOUT` verdict.  Like ``conflict_limit`` it is
    #: excluded from the fingerprint — a definite verdict is valid under
    #: any budget.
    wall_budget: Optional[float] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    remap: Optional[List[int]] = None   # new var -> original var (0 unused)
    orig_nvars: int = 0

    def fingerprint(self) -> str:
        """Content hash of the formula (clauses + assumptions + frozen set
        + solver configuration).  The conflict limit, the metadata and the
        slice remap are all excluded: a definite sat/unsat verdict is
        valid under any limit, and the remap is context bookkeeping that
        does not change what is being proved."""
        h = hashlib.sha256(_FINGERPRINT_SALT)
        h.update(b"1" if self.simplify else b"0")
        h.update(array("q", [self.nvars]).tobytes())
        for clause in self.clauses:
            h.update(array("q", clause).tobytes())
            h.update(b";")
        h.update(b"|a|")
        h.update(array("q", self.assumptions).tobytes())
        h.update(b"|f|")
        h.update(array("q", sorted(self.frozen)).tobytes())
        return h.hexdigest()

    def size(self) -> Dict[str, int]:
        return {
            "nvars": self.nvars,
            "clauses": len(self.clauses),
            "literals": sum(len(c) for c in self.clauses),
        }


@dataclass
class Verdict:
    """Result of solving one obligation."""

    status: str                  # sat | unsat | unknown | timeout | poisoned
    obligation: str                   # name of the obligation
    fingerprint: str
    model: Optional[bytes] = None     # packed model bits on SAT
    nvars: int = 0
    runtime_s: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)
    cached: bool = False
    #: Structured worker failure reports on a ``poisoned`` verdict:
    #: ``[{"worker", "exc_type", "message", "traceback"}, ...]``.
    failures: Optional[List[Dict[str, Any]]] = None

    @property
    def sat(self) -> bool:
        return self.status == SAT

    @property
    def unsat(self) -> bool:
        return self.status == UNSAT

    def model_list(self) -> List[bool]:
        """The model as a list indexed by DIMACS variable (0 unused)."""
        if self.model is None:
            raise ValueError(f"verdict {self.obligation!r} has no model "
                             f"(status {self.status})")
        return unpack_model(self.model, self.nvars)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "status": self.status,
            "obligation": self.obligation,
            "fingerprint": self.fingerprint,
            "model": self.model.hex() if self.model is not None else None,
            "nvars": self.nvars,
            "runtime_s": self.runtime_s,
            "stats": dict(self.stats),
        }
        if self.failures is not None:
            data["failures"] = [dict(f) for f in self.failures]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Verdict":
        model = data.get("model")
        failures = data.get("failures")
        return cls(
            status=data["status"],
            obligation=data["obligation"],
            fingerprint=data["fingerprint"],
            model=bytes.fromhex(model) if model is not None else None,
            nvars=data.get("nvars", 0),
            runtime_s=data.get("runtime_s", 0.0),
            stats=dict(data.get("stats", {})),
            failures=[dict(f) for f in failures]
            if failures is not None else None,
        )


def _verdict_from_outcome(obligation: ProofObligation, fingerprint: str,
                          outcome: Optional[bool],
                          model: Optional[bytes],
                          stats: Dict[str, int], start: float,
                          stop_reason: Optional[str] = None) -> Verdict:
    if outcome is True:
        status = SAT
    elif outcome is False:
        status = UNSAT
    elif stop_reason == "deadline":
        status = TIMEOUT
    else:
        status = UNKNOWN
    return Verdict(
        status=status,
        obligation=obligation.name,
        fingerprint=fingerprint,
        model=model,
        nvars=obligation.nvars,
        runtime_s=time.perf_counter() - start,
        stats=stats,
    )


def _solve_warm(obligation: ProofObligation, fingerprint: str,
                warm: Dict[str, Any], start: float,
                cancel_check=None,
                deadline: Optional[float] = None) -> Optional[Verdict]:
    """Solve on a cached post-simplification clause database.

    The simplified formula is equisatisfiable with the obligation's CNF
    under its (frozen, hence preserved) assumptions, and the search on
    it is exactly the search the cold path's inner CDCL solver would
    run after re-simplifying from scratch — warm and cold verdicts are
    bit-identical, the preprocessing pass is just skipped.  Returns
    None when the payload does not fit the obligation (the cold path
    then runs as usual).
    """
    try:
        nvars = int(warm["nvars"])
        clauses = [[int(lit) for lit in clause]
                   for clause in warm["clauses"]]
        stack = [(int(entry[0]), [int(lit) for lit in entry[1]], True)
                 for entry in warm["stack"]]
    except (KeyError, TypeError, ValueError, IndexError):
        return None
    if nvars != obligation.nvars:
        return None
    # Reconstruction literals index straight into the model list, so a
    # corrupted stack must be rejected here (clause literals get the
    # same treatment from the solver's own range checks below).
    for lit, clause, _active in stack:
        if not 1 <= abs(lit) <= nvars or \
                any(q == 0 or abs(q) > nvars for q in clause):
            return None
    solver = CdclSolver()
    for _ in range(nvars):
        solver.new_var()
    try:
        solver.add_clauses(clauses)
    except FormalError:
        # A corrupted warm entry (out-of-range literal) degrades to the
        # cold path, exactly like any other cache corruption.
        return None
    outcome = solver.solve(
        assumptions=obligation.assumptions,
        conflict_limit=obligation.conflict_limit,
        cancel_check=cancel_check,
        deadline=deadline,
    )
    stats = solver.stats.as_dict()
    stats["simplify_warm_starts"] = 1
    model: Optional[bytes] = None
    if outcome is True:
        model = pack_model(reconstruct_model(solver.model(), stack))
    return _verdict_from_outcome(obligation, fingerprint, outcome, model,
                                 stats, start,
                                 stop_reason=solver.stop_reason)


def solve_obligation(obligation: ProofObligation,
                     simp_cache=None, cancel_check=None) -> Verdict:
    """Solve one obligation on a fresh solver (pure; picklable for
    worker processes).

    ``simp_cache`` (a :class:`repro.engine.cache.ResultCache`) enables
    warm starts: the post-BVE simplified clause database is looked up —
    and, after a cold solve, stored — under the obligation's own
    fingerprint, so repeat solves of the same obligation skip the
    preprocessing pass entirely.

    ``cancel_check`` is polled inside the CDCL conflict loop (every
    :data:`repro.formal.solver.CANCEL_CHECK_EVERY` conflicts); returning
    True abandons the search and yields an ``unknown`` verdict —
    cooperative preemption for distributed early-cancel.  Definite
    verdicts are unaffected, so purity (same obligation, same sat/unsat
    answer) is preserved.

    An obligation with a ``wall_budget`` arms a wall-clock deadline for
    this attempt; exhausting it yields a :data:`TIMEOUT` verdict —
    distinguishable from the ``unknown`` of a conflict-limit exhaustion
    or a cancel, so callers can report "timed out" instead of hanging
    or guessing.
    """
    start = time.perf_counter()
    deadline = None
    if obligation.wall_budget is not None and obligation.wall_budget > 0:
        deadline = time.monotonic() + obligation.wall_budget
    fingerprint = obligation.fingerprint()
    if simp_cache is not None and obligation.simplify:
        warm = simp_cache.lookup_simplified(fingerprint)
        if warm is not None:
            verdict = _solve_warm(obligation, fingerprint, warm, start,
                                  cancel_check=cancel_check,
                                  deadline=deadline)
            if verdict is not None:
                return verdict
    solver = SimplifyingSolver() if obligation.simplify else CdclSolver()
    for _ in range(obligation.nvars):
        solver.new_var()
    freeze = getattr(solver, "freeze_var", None)
    if freeze is not None:
        for var in obligation.frozen:
            freeze(var)
    solver.add_clauses(obligation.clauses)
    outcome = solver.solve(
        assumptions=obligation.assumptions,
        conflict_limit=obligation.conflict_limit,
        cancel_check=cancel_check,
        deadline=deadline,
    )
    stats = solver.stats.as_dict()
    simp = getattr(solver, "simplify_stats", None)
    if simp is not None:
        for key, value in simp.as_dict().items():
            stats[f"simplify_{key}"] = value
    if simp_cache is not None and obligation.simplify:
        exported = solver.export_simplified()
        if exported is not None:
            simp_cache.store_simplified(fingerprint, exported)
    model: Optional[bytes] = None
    if outcome is True:
        model = pack_model(solver.model())
    return _verdict_from_outcome(obligation, fingerprint, outcome, model,
                                 stats, start,
                                 stop_reason=solver.stop_reason)
