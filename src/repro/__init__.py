"""UPEC — Unique Program Execution Checking.

A from-scratch reproduction of "Processor Hardware Security Vulnerabilities
and their Detection by Unique Program Execution Checking" (Fadiheh et al.,
DATE 2019): a word-level RTL IR, a cycle-accurate simulator, a SAT-based
bounded model checker, an in-order RISC-V-like SoC with injectable covert
channel vulnerabilities, and the UPEC security analysis on top.
"""

__version__ = "0.1.0"
