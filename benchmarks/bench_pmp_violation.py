"""Sec. VII-C — violation of memory protection in the PMP unit.

The PMP_BUG variant reproduces RocketChip's ISA incompliance: a locked TOR
end entry fails to lock the region's start-address register.  Three
reproductions:

* ISA compliance: buggy RTL vs. golden ISS on a locked-write sequence;
* exploit: machine-mode code moves the region start past the secret, user
  code then reads the secret directly (a *main channel*);
* UPEC: the same property that finds covert channels flags this main
  channel as an L-alert — "without targeting any security specification".
"""

import time

import pytest

from conftest import full_runs

from repro.core import UpecMethodology, UpecScenario
from repro.core.report import format_table
from repro.soc import Iss, SocConfig, SocSim
from repro.soc import isa

LOCKED_WRITE_PROGRAM = [i.encode() for i in [
    isa.li(1, isa.PMP_A | isa.PMP_L),
    isa.csrw(isa.CSR_PMPCFG1, 1),
    isa.li(2, 20),
    isa.csrw(isa.CSR_PMPADDR0, 2),
    isa.csrr(3, isa.CSR_PMPADDR0),
    isa.jal(0, 0),
]]

# The unlock exploit, as a fixed program for the formal run: machine-mode
# software rewrites pmpaddr0 (legal on the buggy design despite the lock),
# returns to user mode at the load, and the load reads the secret.
def unlock_exploit_program(config):
    secret = config.secret_addr & 0xFF
    return [i.encode() for i in [
        isa.csrw(isa.CSR_PMPADDR0, 3),   # x3 symbolic: moves the boundary
        isa.csrw(isa.CSR_MEPC, 4),       # x4 symbolic: user entry
        isa.mret(),
        isa.lb(5, 0, 1),                 # x1 symbolic: load target
        isa.nop(), isa.nop(), isa.nop(), isa.nop(),
    ]]


def test_pmp_isa_compliance(formal_socs, capsys):
    rows = []
    values = {}
    for variant in ("secure", "pmp_bug"):
        soc = formal_socs[variant]
        sim = SocSim(soc, LOCKED_WRITE_PROGRAM)
        sim.run_until_halt(5, max_cycles=500)
        spec = Iss(soc.config, LOCKED_WRITE_PROGRAM, tor_lock=True)
        spec.run(500, stop_pc=5)
        values[variant] = (sim.reg(3), spec.regs[3])
        rows.append([variant, sim.reg(3), spec.regs[3],
                     "compliant" if sim.reg(3) == spec.regs[3]
                     else "INCOMPLIANT"])
    with capsys.disabled():
        print("\n[Sec. VII-C] locked pmpaddr0 after a write attempt:")
        print(format_table(["design", "RTL", "ISA spec", "verdict"], rows))
    assert values["secure"][0] == values["secure"][1] == 0
    assert values["pmp_bug"][0] == 20      # the locked register moved
    assert values["pmp_bug"][1] == 0       # the spec forbids it


def test_pmp_bug_upec_l_alert(formal_socs, capsys):
    """UPEC proves the buggy design insecure (main-channel L-alert) and
    the compliant design secure under the same scenario."""
    k = 14
    results = {}
    for variant in ("pmp_bug", "secure"):
        soc = formal_socs[variant]
        # D in cache: the load after the unlock hits directly, keeping the
        # window (and the SAT cones) small; the uncached variant leaks the
        # same way through a refill, a few frames later.
        scenario = UpecScenario(
            secret_in_cache=True,
            fixed_program=unlock_exploit_program(soc.config),
            no_inflight_branches=True,
            pipeline_drained=True,
            pin_pc=0,
        )
        start = time.perf_counter()
        result = UpecMethodology(soc, scenario).run(k=k)
        results[variant] = (result, time.perf_counter() - start)
    rows = [
        [v, r.verdict,
         r.l_alert.frame if r.l_alert else "-",
         f"{t:.1f}s"]
        for v, (r, t) in results.items()
    ]
    with capsys.disabled():
        print("\n[Sec. VII-C] UPEC on the unlock-exploit software model:")
        print(format_table(["design", "verdict", "L-window", "runtime"], rows))
        if results["pmp_bug"][0].l_alert is not None:
            print("L-alert:", results["pmp_bug"][0].l_alert.describe())
    assert results["pmp_bug"][0].verdict == "insecure"
    alert = results["pmp_bug"][0].l_alert
    arch_names = [r.name for r, _, _ in alert.arch_diffs()]
    assert arch_names, "main channel must hit architectural state"
    assert results["secure"][0].verdict == "secure_bounded"


@pytest.mark.benchmark(group="pmp")
def test_pmp_exploit_sim_cost(benchmark, formal_socs):
    def run_exploit():
        soc = formal_socs["pmp_bug"]
        sim = SocSim(soc, LOCKED_WRITE_PROGRAM)
        sim.run_until_halt(5, max_cycles=500)

    benchmark.pedantic(run_exploit, rounds=3, iterations=1)
