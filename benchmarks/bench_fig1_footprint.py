"""Fig. 1 — vulnerable vs. secure design: cache footprint of a squashed
illegal access.

The same program is executed with two different secrets.  On the
Meltdown-style design the squashed dependent load's refill completes and
the cache metadata (valid/tag) afterwards depends on the secret — the
covert-channel prerequisite.  On the secure design (refill cancelled on
exception) the metadata is identical.
"""

import pytest

from repro.attacks import cache_footprint_difference
from repro.core.report import format_table

SECRET_A = 0x0B
SECRET_B = 0x0D


def test_fig1_footprint(sim_socs, capsys):
    rows = []
    diffs = {}
    for variant in ("meltdown", "secure", "orc"):
        diff = cache_footprint_difference(sim_socs[variant], SECRET_A, SECRET_B)
        diffs[variant] = diff
        rows.append([
            variant,
            "changed" if diff else "identical",
            ", ".join(map(str, diff)) or "-",
        ])
    with capsys.disabled():
        print("\n[Fig. 1] cache footprint after identical programs with "
              f"secrets {SECRET_A:#04x} vs {SECRET_B:#04x}:")
        print(format_table(["design", "cache state", "differing lines"], rows))
    assert diffs["meltdown"], "vulnerable design must leave a footprint"
    assert not diffs["secure"], "secure design must cancel the refill"
    # The Orc design's uncancellable transactions complete their refill
    # too (see DESIGN.md): it exhibits the footprint as well.
    assert diffs["orc"]


@pytest.mark.benchmark(group="fig1")
def test_fig1_footprint_run_cost(benchmark, sim_socs):
    benchmark.pedantic(
        cache_footprint_difference,
        args=(sim_socs["meltdown"], SECRET_A, SECRET_B),
        rounds=2, iterations=1,
    )
