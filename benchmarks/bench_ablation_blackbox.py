"""Sec. V-B ablation — black-boxing the cache data fields.

The paper mitigates proof complexity by excluding the cache's data fields
(pure memory-content mirrors) from the model's state space.  In our
bit-level realization the exclusion acts on the *commitment*: with
black-boxing off, the cached copy of the secret itself trips the checker
immediately (a flood of trivial "alerts" on memory mirrors), and the
commitment carries more bits into every SAT query.
"""

import time

import pytest

from repro.core import UpecChecker, UpecModel, UpecScenario
from repro.core.report import format_table


def run_case(soc, blackbox):
    scenario = UpecScenario(secret_in_cache=True, blackbox_cache_data=blackbox)
    model = UpecModel(soc, scenario)
    commitment = model.default_commitment()
    bits = sum(r.width for r in commitment)
    start = time.perf_counter()
    result = UpecChecker(model).check(k=2)
    runtime = time.perf_counter() - start
    return model, commitment, bits, result, runtime


def test_ablation_blackbox(formal_socs, capsys):
    soc = formal_socs["secure"]
    rows = []
    outcomes = {}
    for blackbox in (True, False):
        model, commitment, bits, result, runtime = run_case(soc, blackbox)
        outcomes[blackbox] = result
        first = result.alert.diff_reg_names() if result.alert else []
        rows.append([
            "on" if blackbox else "off",
            len(commitment), bits,
            ", ".join(first) or "-",
            f"{runtime:.2f}s",
        ])
    with capsys.disabled():
        print("\n[Sec. V-B] cache-data black-boxing ablation (secure design, "
              "D cached, k=2):")
        print(format_table(
            ["black-boxing", "commitment regs", "commitment bits",
             "first counterexample regs", "runtime"],
            rows,
        ))
    # With black-boxing, the first alert is the genuine propagation (the
    # response buffer); without it, the memory mirror itself fires.
    assert "resp_buf" in outcomes[True].alert.diff_reg_names()
    assert any(
        name.startswith("dc_data")
        for name in outcomes[False].alert.diff_reg_names()
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_model_build_cost(benchmark, formal_socs):
    """Cost of constructing the two-instance model itself."""
    def build():
        UpecModel(formal_socs["secure"], UpecScenario(secret_in_cache=True))

    benchmark.pedantic(build, rounds=3, iterations=1)
