"""Shared fixtures and reporting helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  Benchmarks
print their paper-style rows to stdout (run pytest with ``-s`` to see
them) and also assert the qualitative *shape* the paper reports, so a
regression in any reproduced phenomenon fails the suite.

Environment knobs:

``UPEC_BENCH_FULL=1``
    Run the full (slow) proof windows used for EXPERIMENTS.md instead of
    the CI-sized ones.
``UPEC_BENCH_JOBS=n``
    Worker-count ceiling for the engine-sweep throughput benchmarks
    (default: the machine's CPU count; the sweep group still always
    measures jobs=1 as the baseline).
"""

import os

import pytest

FULL = os.environ.get("UPEC_BENCH_FULL", "0") == "1"


def full_runs() -> bool:
    return FULL


def bench_jobs_ceiling() -> int:
    """Largest worker count worth benchmarking on this machine."""
    try:
        return max(1, int(os.environ.get("UPEC_BENCH_JOBS",
                                         str(os.cpu_count() or 1))))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def proof_engine():
    """A shared obligation engine (in-process, no cache) so benchmarks
    exercise the same scheduler layer the CLI and methodology use."""
    from repro.engine import ProofEngine

    engine = ProofEngine(jobs=1)
    yield engine
    engine.close()


@pytest.fixture(scope="session")
def formal_socs():
    """The four design variants in the small formal geometry."""
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    return {
        name: build_soc(getattr(SocConfig, name)(**FORMAL_CONFIG_KWARGS))
        for name in ("secure", "orc", "meltdown", "pmp_bug")
    }


@pytest.fixture(scope="session")
def sim_socs():
    """The design variants in the larger simulation geometry."""
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import SIM_CONFIG_KWARGS

    return {
        name: build_soc(getattr(SocConfig, name)(**SIM_CONFIG_KWARGS))
        for name in ("secure", "orc", "meltdown")
    }
