"""Shared fixtures and reporting helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  Benchmarks
print their paper-style rows to stdout (run pytest with ``-s`` to see
them) and also assert the qualitative *shape* the paper reports, so a
regression in any reproduced phenomenon fails the suite.

Environment knobs:

``UPEC_BENCH_FULL=1``
    Run the full (slow) proof windows used for EXPERIMENTS.md instead of
    the CI-sized ones.
"""

import os

import pytest

FULL = os.environ.get("UPEC_BENCH_FULL", "0") == "1"


def full_runs() -> bool:
    return FULL


@pytest.fixture(scope="session")
def formal_socs():
    """The four design variants in the small formal geometry."""
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    return {
        name: build_soc(getattr(SocConfig, name)(**FORMAL_CONFIG_KWARGS))
        for name in ("secure", "orc", "meltdown", "pmp_bug")
    }


@pytest.fixture(scope="session")
def sim_socs():
    """The design variants in the larger simulation geometry."""
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import SIM_CONFIG_KWARGS

    return {
        name: build_soc(getattr(SocConfig, name)(**SIM_CONFIG_KWARGS))
        for name in ("secure", "orc", "meltdown")
    }
