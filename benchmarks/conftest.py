"""Shared fixtures and reporting helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  Benchmarks
print their paper-style rows to stdout (run pytest with ``-s`` to see
them) and also assert the qualitative *shape* the paper reports, so a
regression in any reproduced phenomenon fails the suite.

Environment knobs:

``UPEC_BENCH_FULL=1``
    Run the full (slow) proof windows used for EXPERIMENTS.md instead of
    the CI-sized ones.
``UPEC_BENCH_JOBS=n``
    Worker-count ceiling for the engine-sweep throughput benchmarks
    (default: the machine's CPU count; the sweep group still always
    measures jobs=1 as the baseline).

``--bench-json [PATH]`` additionally writes the run's per-group
wall-clock numbers (and obligations/sec where a benchmark reports its
obligation count) to a JSON file — ``BENCH_engine.json`` by default —
so the perf trajectory is machine-readable across PRs.
"""

import json
import os

import pytest

FULL = os.environ.get("UPEC_BENCH_FULL", "0") == "1"


def full_runs() -> bool:
    return FULL


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", nargs="?", const="BENCH_engine.json", default=None,
        metavar="PATH",
        help="write per-group wall-clock and obligations/sec numbers "
             "to PATH (default: BENCH_engine.json)",
    )


def pytest_sessionfinish(session, exitstatus):
    """Serialize pytest-benchmark's collected stats as stable JSON."""
    path = session.config.getoption("--bench-json", default=None)
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    collected = getattr(bench_session, "benchmarks", None) or []
    groups = {}
    for bench in collected:
        stats = getattr(bench, "stats", None)
        entry = {
            "name": getattr(bench, "name", ""),
            "fullname": getattr(bench, "fullname", ""),
            "wall_clock_s": getattr(stats, "mean", None),
            "min_s": getattr(stats, "min", None),
            "max_s": getattr(stats, "max", None),
            "rounds": getattr(stats, "rounds", None),
            "extra_info": dict(getattr(bench, "extra_info", None) or {}),
        }
        obligations = entry["extra_info"].get("obligations")
        if obligations and entry["wall_clock_s"]:
            entry["obligations_per_s"] = obligations / entry["wall_clock_s"]
        group = getattr(bench, "group", None) or "ungrouped"
        groups.setdefault(group, []).append(entry)
    with open(path, "w") as handle:
        json.dump({"groups": groups}, handle, indent=2, sort_keys=True)
        handle.write("\n")


def bench_jobs_ceiling() -> int:
    """Largest worker count worth benchmarking on this machine."""
    try:
        return max(1, int(os.environ.get("UPEC_BENCH_JOBS",
                                         str(os.cpu_count() or 1))))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def proof_engine():
    """A shared obligation engine (in-process, no cache) so benchmarks
    exercise the same scheduler layer the CLI and methodology use."""
    from repro.engine import ProofEngine

    engine = ProofEngine(jobs=1)
    yield engine
    engine.close()


@pytest.fixture(scope="session")
def formal_socs():
    """The four design variants in the small formal geometry."""
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    return {
        name: build_soc(getattr(SocConfig, name)(**FORMAL_CONFIG_KWARGS))
        for name in ("secure", "orc", "meltdown", "pmp_bug")
    }


@pytest.fixture(scope="session")
def sim_socs():
    """The design variants in the larger simulation geometry."""
    from repro.soc import SocConfig, build_soc
    from repro.soc.config import SIM_CONFIG_KWARGS

    return {
        name: build_soc(getattr(SocConfig, name)(**SIM_CONFIG_KWARGS))
        for name in ("secure", "orc", "meltdown")
    }
