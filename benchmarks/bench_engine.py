"""Engine microbenchmarks: SAT solver, bit-blaster, simulator throughput.

Not a paper table — these quantify the substrate the UPEC runtimes rest
on (our pure-Python CDCL vs. the paper's commercial checker), so the
absolute runtime differences in Tab. I/II are interpretable.

The ``preprocess`` and ``upec-sat`` groups pair each instance family with
a raw-CNF and a simplified run, so the payoff of the SatELite-style
pre-/inprocessor (``repro.formal.preprocess``) is measured directly on
the clause shapes the engine actually emits.  The ``split`` group pairs
split and unsplit deep-frame checks at 1/2/4 workers — the wall-clock
case for intra-frame obligation splitting (``--split``).

Run with ``--bench-json`` to also write the per-group numbers to
``BENCH_engine.json`` (see ``conftest.py``).
"""

import random

import pytest

from repro.formal import Aig, BmcEngine, CdclSolver, SimplifyingSolver
from repro.hdl import Circuit, mux
from repro.sim import Simulator
from repro.soc import SocConfig, build_soc
from repro.soc import isa
from repro.soc.simulator import SocSim


def pigeonhole_cnf(pigeons, holes):
    def var(i, j):
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-var(i1, j), -var(i2, j)])
    return pigeons * holes, clauses


def random_3sat(nvars, nclauses, seed):
    rng = random.Random(seed)
    clauses = []
    for _ in range(nclauses):
        clause_vars = rng.sample(range(1, nvars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in clause_vars])
    return clauses


@pytest.mark.benchmark(group="solver")
def test_solver_pigeonhole_unsat(benchmark):
    """PHP(6,5): a canonical hard-ish UNSAT instance."""
    def run():
        nvars, clauses = pigeonhole_cnf(6, 5)
        solver = CdclSolver()
        for _ in range(nvars):
            solver.new_var()
        solver.add_clauses(clauses)
        assert solver.solve() is False

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="solver")
def test_solver_random_3sat(benchmark):
    """Random 3-SAT near the phase transition (ratio 4.2)."""
    def run():
        nvars = 120
        solver = CdclSolver()
        for _ in range(nvars):
            solver.new_var()
        solver.add_clauses(random_3sat(nvars, int(nvars * 4.2), seed=7))
        assert solver.solve() in (True, False)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="formal")
def test_bmc_counter_proof(benchmark):
    """BMC of a counter property — bit-blast + solve round trip."""
    def run():
        c = Circuit("counter")
        cnt = c.reg("cnt", 16, init=0)
        c.next(cnt, cnt + 1)
        c.finalize()
        engine = BmcEngine(c, init="reset")
        assert engine.check_always(cnt.ne(50), k=20).holds

    benchmark.pedantic(run, rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Preprocessing instance families (raw CDCL vs. simplified)
# ----------------------------------------------------------------------
class _CnfBuilder:
    """Tiny Tseitin emitter for hand-built benchmark circuits."""

    def __init__(self):
        self.nvars = 0
        self.clauses = []

    def var(self):
        self.nvars += 1
        return self.nvars

    def xor(self, a, b):
        v = self.var()
        self.clauses.extend(
            [[-v, a, b], [-v, -a, -b], [v, -a, b], [v, a, -b]])
        return v


def parity_miter_cnf(n):
    """Left-fold vs. balanced-tree parity of the same bits, forced to
    differ: UNSAT, and every gate variable is functionally defined —
    the shape bounded variable elimination collapses."""
    cnf = _CnfBuilder()
    bits = [cnf.var() for _ in range(n)]
    left = bits[0]
    for x in bits[1:]:
        left = cnf.xor(left, x)
    layer = list(bits)
    while len(layer) > 1:
        nxt = [cnf.xor(layer[i], layer[i + 1])
               for i in range(0, len(layer) - 1, 2)]
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    cnf.clauses.append([cnf.xor(left, layer[0])])
    return cnf.nvars, cnf.clauses


def padded_pigeonhole_cnf(pigeons, holes, chain, seed):
    """PHP core where every literal is routed through an equivalence
    chain (buffer gates), as Tseitin encodings of deep netlists do; the
    simplifier strips the padding back to the core."""
    rng = random.Random(seed)
    nvars = pigeons * holes
    clauses = []
    alias = {}
    for v in range(1, nvars + 1):
        chain_vars = [v]
        prev = v
        for _ in range(chain):
            nvars += 1
            clauses.extend([[-nvars, prev], [nvars, -prev]])
            prev = nvars
            chain_vars.append(nvars)
        alias[v] = chain_vars

    def a(lit):
        v = rng.choice(alias[abs(lit)])
        return v if lit > 0 else -v

    def var(i, j):
        return i * holes + j + 1

    base = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                base.append([-var(i1, j), -var(i2, j)])
    clauses.extend([a(l) for l in c] for c in base)
    return nvars, clauses


def _solve_family(solver_cls, nvars, clauses):
    solver = solver_cls()
    for _ in range(nvars):
        solver.new_var()
    solver.add_clauses(clauses)
    assert solver.solve() is False


@pytest.mark.benchmark(group="preprocess")
@pytest.mark.parametrize("solver_cls", [CdclSolver, SimplifyingSolver],
                         ids=["raw", "preprocessed"])
def test_solver_parity_miter(benchmark, solver_cls):
    nvars, clauses = parity_miter_cnf(36)
    benchmark.pedantic(
        lambda: _solve_family(solver_cls, nvars, clauses),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="preprocess")
@pytest.mark.parametrize("solver_cls", [CdclSolver, SimplifyingSolver],
                         ids=["raw", "preprocessed"])
def test_solver_padded_pigeonhole(benchmark, solver_cls):
    nvars, clauses = padded_pigeonhole_cnf(6, 5, chain=6, seed=3)
    benchmark.pedantic(
        lambda: _solve_family(solver_cls, nvars, clauses),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="upec-sat")
@pytest.mark.parametrize("simplify", [False, True],
                         ids=["raw", "preprocessed"])
def test_upec_methodology_sat_cost(benchmark, simplify):
    """The flagship workload: the full Fig.-5 methodology on the secure
    design (Tab. I, D in cache) with and without CNF simplification."""
    from repro.core import UpecMethodology, UpecScenario
    from repro.engine import INLINE
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    soc = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))

    def run():
        result = UpecMethodology(
            soc, UpecScenario(secret_in_cache=True), simplify=simplify,
            engine=INLINE,
        ).run(k=2)
        assert result.verdict == "secure_bounded"

    benchmark.pedantic(run, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Obligation slicing: export cost and shipped bytes, sliced vs. unsliced
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="slice")
@pytest.mark.parametrize("sliced", [False, True],
                         ids=["unsliced", "sliced"])
def test_obligation_export_cost(benchmark, sliced):
    """Export the Tab.-I methodology workload's proof obligations (all
    window frames at the full commitment, then a refinement-style subset
    commitment — the shape the Fig.-5 loop produces) and report the
    wall-clock export cost plus the pickled obligation bytes a worker
    pool or cache would actually ship."""
    import pickle

    from repro.core import UpecModel, UpecScenario
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    soc = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))
    model = UpecModel(soc, UpecScenario(secret_in_cache=True))
    regs = model.default_commitment()
    # Emit every cone once so rounds measure pure snapshot/slice cost,
    # not first-time Tseitin emission.
    for t in (1, 2):
        model.frame_obligation(regs, t, slice=sliced)
    model.frame_obligation(regs[: len(regs) // 2], 2, slice=sliced)

    def run():
        obs = [model.frame_obligation(regs, t, slice=sliced)
               for t in (1, 2)]
        obs.append(model.frame_obligation(regs[: len(regs) // 2], 2,
                                          slice=sliced))
        return sum(len(pickle.dumps(ob)) for ob in obs if ob is not None)

    exported_bytes = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["exported_bytes"] = exported_bytes


# ----------------------------------------------------------------------
# Obligation engine: sweep throughput vs. worker count
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="sweep")
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_table1_sweep_throughput(benchmark, jobs):
    """Tab.-I grid (all four variants, D in cache) through the scenario
    sweep scheduler at 1/2/4 workers.  On multi-core hosts the higher
    worker counts show the wall-clock speedup of obligation-level
    parallelism; the jobs=1 row is the sequential baseline.  Worker
    counts beyond the machine (see ``UPEC_BENCH_JOBS``) are skipped
    rather than reported as misleading oversubscription numbers."""
    from conftest import bench_jobs_ceiling

    from repro.engine import ScenarioSweep

    if jobs > 1 and jobs > bench_jobs_ceiling():
        pytest.skip(f"host has fewer than {jobs} usable cores")
    sweep = ScenarioSweep.table1_grid(k=2, uncached=False)

    def run():
        result = sweep.run(jobs=jobs)
        verdicts = result.verdicts()
        assert verdicts["secure/cached/k=2"] == "secure_bounded"
        assert verdicts["orc/cached/k=2"] == "insecure"
        assert verdicts["meltdown/cached/k=2"] == "insecure"

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="sweep")
def test_frame_obligations_through_engine(benchmark, proof_engine):
    """Per-frame obligation dispatch on one miter (engine jobs=1): the
    scheduling overhead added on top of raw solving."""
    from repro.core import UpecChecker, UpecModel, UpecScenario
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    soc = build_soc(SocConfig.orc(**FORMAL_CONFIG_KWARGS))

    def run():
        model = UpecModel(soc, UpecScenario(secret_in_cache=True))
        result = UpecChecker(model, engine=proof_engine).check(k=2)
        assert result.status == "alert"

    benchmark.pedantic(run, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Intra-frame obligation splitting: deep-frame wall-clock
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="split")
@pytest.mark.parametrize("split", [False, True], ids=["unsplit", "split"])
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_deep_frame_split_wall_clock(benchmark, jobs, split):
    """The workload intra-frame splitting targets: the deepest frame of
    a refined (post-Fig.-5) commitment on the secure design, which is
    UNSAT — every register group must be *proved*, so an unsplit run is
    one monolithic solve while a split run keeps ``jobs`` workers busy
    on the per-register-group obligations of that single frame.  The
    jobs=1 rows measure the splitting overhead itself; the jobs=2/4
    split-vs-unsplit pairs are the wall-clock win (multi-core hosts
    only — undersized machines skip them, see ``UPEC_BENCH_JOBS``)."""
    from conftest import bench_jobs_ceiling, full_runs

    from repro.core import (
        UpecChecker,
        UpecMethodology,
        UpecModel,
        UpecScenario,
    )
    from repro.engine import INLINE, ProofEngine
    from repro.soc.config import FORMAL_CONFIG_KWARGS

    if jobs > 1 and jobs > bench_jobs_ceiling():
        pytest.skip(f"host has fewer than {jobs} usable cores")
    k = 3 if full_runs() else 2
    soc = build_soc(SocConfig.secure(**FORMAL_CONFIG_KWARGS))
    scenario = UpecScenario(secret_in_cache=True)
    refined = UpecMethodology(soc, scenario, engine=INLINE).run(k=k)
    assert refined.verdict == "secure_bounded"
    removed = set(refined.removed_regs)
    model = UpecModel(soc, scenario)
    commitment = [reg for reg in model.default_commitment()
                  if reg.name not in removed]
    engine = ProofEngine(jobs=jobs)

    def run():
        result = UpecChecker(model, engine=engine, split=split).check(
            k=k, commitment=commitment, start_frame=k,
        )
        assert result.proved
        return result

    try:
        result = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        engine.close()
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["split"] = split
    benchmark.extra_info["obligations"] = \
        result.stats.get("split_obligations", 0) or 1


# ----------------------------------------------------------------------
# Distributed proof service: obligations/sec vs. worker count
# ----------------------------------------------------------------------
def _dist_workload(count=12, nvars=110, seed=11):
    """Random 3-SAT instances near the phase transition: enough solver
    work per obligation that scheduling overhead does not dominate, and
    every obligation's content (hence fingerprint) is distinct."""
    from repro.engine import ProofObligation

    obligations = []
    for i in range(count):
        obligations.append(ProofObligation(
            name=f"dist{i}", nvars=nvars,
            clauses=random_3sat(nvars, int(nvars * 4.2), seed=seed + i),
            assumptions=[], simplify=True,
        ))
    return obligations


@pytest.mark.benchmark(group="dist")
@pytest.mark.parametrize("workers", [0, 1, 2, 4],
                         ids=["local", "w1", "w2", "w4"])
def test_dist_obligation_throughput(benchmark, workers):
    """Obligation throughput through the network broker at 1/2/4
    workers against the in-process pool baseline (``local``): the
    dispatch + wire overhead per obligation, and the wall-clock scaling
    the distributed scheduler buys once obligations are shipped to more
    than one solver process."""
    import multiprocessing

    from conftest import bench_jobs_ceiling

    from repro.dist import Broker, RemotePool
    from repro.dist.worker import run_worker
    from repro.engine import ProofEngine

    if workers > 1 and workers > bench_jobs_ceiling():
        pytest.skip(f"host has fewer than {workers} usable cores")
    obligations = _dist_workload()

    if workers == 0:
        engine = ProofEngine(jobs=1)

        def run():
            results = engine.solve_ordered(obligations)
            assert all(v is not None for v in results)

        try:
            benchmark.pedantic(run, rounds=1, iterations=1)
        finally:
            engine.close()
    else:
        context = multiprocessing.get_context("fork")
        broker = Broker(port=0).start()
        procs = [
            context.Process(target=run_worker, args=(broker.address,),
                            kwargs={"poll_interval": 0.005}, daemon=True)
            for _ in range(workers)
        ]
        for process in procs:
            process.start()
        try:
            pool = RemotePool(broker.address)

            def run():
                results = pool.solve_ordered(obligations)
                assert all(v is not None for v in results)

            # A fresh broker per benchmark: the verdict memo must not
            # turn later rounds into cache-hit measurements, so one
            # round only.
            benchmark.pedantic(run, rounds=1, iterations=1)
            pool.close()
        finally:
            for process in procs:
                process.terminate()
            for process in procs:
                process.join(timeout=5)
            broker.stop()
    benchmark.extra_info["obligations"] = len(obligations)


@pytest.mark.benchmark(group="sim")
def test_soc_simulation_throughput(benchmark):
    """Cycles/second of the full SoC RTL under simulation."""
    soc = build_soc(SocConfig.secure())
    program = [i.encode() for i in [
        isa.li(1, 1), isa.li(2, 0),
        isa.add(2, 2, 1),
        isa.bne(2, 0, -1),
        isa.jal(0, 0),
    ]]

    def run():
        sim = SocSim(soc, program)
        sim.step(300)

    result = benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="sim")
def test_plain_simulator_throughput(benchmark):
    """Baseline: simulator stepping cost on a small circuit."""
    c = Circuit("t")
    a = c.reg("a", 32, init=1)
    b = c.reg("b", 32, init=2)
    c.next(a, a + b)
    c.next(b, mux(a[0], a ^ b, b))
    c.finalize()

    def run():
        sim = Simulator(c)
        for _ in range(2000):
            sim.step()

    benchmark.pedantic(run, rounds=3, iterations=1)
