"""Engine microbenchmarks: SAT solver, bit-blaster, simulator throughput.

Not a paper table — these quantify the substrate the UPEC runtimes rest
on (our pure-Python CDCL vs. the paper's commercial checker), so the
absolute runtime differences in Tab. I/II are interpretable.
"""

import random

import pytest

from repro.formal import Aig, BmcEngine, CdclSolver
from repro.hdl import Circuit, mux
from repro.sim import Simulator
from repro.soc import SocConfig, build_soc
from repro.soc import isa
from repro.soc.simulator import SocSim


def pigeonhole_cnf(pigeons, holes):
    def var(i, j):
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-var(i1, j), -var(i2, j)])
    return pigeons * holes, clauses


def random_3sat(nvars, nclauses, seed):
    rng = random.Random(seed)
    clauses = []
    for _ in range(nclauses):
        clause_vars = rng.sample(range(1, nvars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in clause_vars])
    return clauses


@pytest.mark.benchmark(group="solver")
def test_solver_pigeonhole_unsat(benchmark):
    """PHP(6,5): a canonical hard-ish UNSAT instance."""
    def run():
        nvars, clauses = pigeonhole_cnf(6, 5)
        solver = CdclSolver()
        for _ in range(nvars):
            solver.new_var()
        solver.add_clauses(clauses)
        assert solver.solve() is False

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="solver")
def test_solver_random_3sat(benchmark):
    """Random 3-SAT near the phase transition (ratio 4.2)."""
    def run():
        nvars = 120
        solver = CdclSolver()
        for _ in range(nvars):
            solver.new_var()
        solver.add_clauses(random_3sat(nvars, int(nvars * 4.2), seed=7))
        assert solver.solve() in (True, False)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="formal")
def test_bmc_counter_proof(benchmark):
    """BMC of a counter property — bit-blast + solve round trip."""
    def run():
        c = Circuit("counter")
        cnt = c.reg("cnt", 16, init=0)
        c.next(cnt, cnt + 1)
        c.finalize()
        engine = BmcEngine(c, init="reset")
        assert engine.check_always(cnt.ne(50), k=20).holds

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="sim")
def test_soc_simulation_throughput(benchmark):
    """Cycles/second of the full SoC RTL under simulation."""
    soc = build_soc(SocConfig.secure())
    program = [i.encode() for i in [
        isa.li(1, 1), isa.li(2, 0),
        isa.add(2, 2, 1),
        isa.bne(2, 0, -1),
        isa.jal(0, 0),
    ]]

    def run():
        sim = SocSim(soc, program)
        sim.step(300)

    result = benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="sim")
def test_plain_simulator_throughput(benchmark):
    """Baseline: simulator stepping cost on a small circuit."""
    c = Circuit("t")
    a = c.reg("a", 32, init=1)
    b = c.reg("b", 32, init=2)
    c.next(a, a + b)
    c.next(b, mux(a[0], a ^ b, b))
    c.finalize()

    def run():
        sim = Simulator(c)
        for _ in range(2000):
            sim.step()

    benchmark.pedantic(run, rounds=3, iterations=1)
